#include "farm/farm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace la::farm {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Nearest-rank percentile of an already-sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t i = static_cast<std::size_t>(std::ceil(rank));
  if (i > 0) --i;
  if (i >= sorted.size()) i = sorted.size() - 1;
  return sorted[i];
}

}  // namespace

const char* to_string(NodeHealth h) {
  switch (h) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kQuarantined:
      return "quarantined";
    case NodeHealth::kRecovering:
      return "recovering";
  }
  return "?";
}

LiquidFarm::LiquidFarm(FarmConfig cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.cache_capacity), sched_(cfg_.scheduler) {
  if (cfg_.nodes == 0) cfg_.nodes = 1;
  liquid::ServerConfig server_cfg = cfg_.server;
  server_cfg.bridge_cache_metrics = false;  // bridged once, fleet-level
  workers_.reserve(cfg_.nodes);
  for (std::size_t i = 0; i < cfg_.nodes; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    sim::SystemConfig node_cfg = cfg_.node_template;
    node_cfg.node_ip = cfg_.node_template.node_ip + static_cast<u32>(i);
    w->node = std::make_unique<sim::LiquidSystem>(node_cfg);
    w->server = std::make_unique<liquid::ReconfigurationServer>(
        *w->node, cache_, syn_, server_cfg);
    if (cfg_.warm_start) w->server->set_warm_pool(&warm_pool_);
    w->current_key = w->server->current().key();
    const u32 pid = static_cast<u32>(i) + 1;  // process lane: node i
    const std::string node_name = "node " + std::to_string(i);
    if (cfg_.tracing) {
      span_log_.set_process_name(pid, node_name);
      span_log_.set_thread_name(pid, 1, "worker " + std::to_string(i));
    }
    if (cfg_.perf_trace) {
      sim::PerfTracer& pt = w->node->enable_perf_trace();
      pt.set_lane(pid, 1);
      pt.set_names(node_name, "worker " + std::to_string(i));
    }
    workers_.push_back(std::move(w));
  }
  started_ = cfg_.autostart;
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_loop(*worker); });
  }
}

LiquidFarm::~LiquidFarm() { shutdown(); }

void LiquidFarm::start() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (!started_) {
    started_ = true;
    cv_work_.notify_all();
  }
}

Result<u64> LiquidFarm::submit(FarmJob job) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (shutdown_) return FarmError{FarmErrorKind::kShuttingDown, {}};
  if (cfg_.tracing && !job.trace.valid()) {
    // The trace is born where the job enters the system; queue-wait
    // measures from this stamp.
    job.trace = span_log_.mint();
    job.submitted_us = span_log_.now_us();
  }
  Result<u64> admitted = sched_.enqueue(std::move(job));
  if (admitted) cv_work_.notify_all();
  return admitted;
}

std::optional<FarmJobOutcome> LiquidFarm::try_pop_result() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (results_.empty()) return std::nullopt;
  FarmJobOutcome out = std::move(results_.front());
  results_.pop_front();
  return out;
}

std::optional<FarmJobOutcome> LiquidFarm::pop_result() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_results_.wait(lk, [&] {
    return !results_.empty() || shutdown_ || sched_.idle();
  });
  if (results_.empty()) return std::nullopt;
  FarmJobOutcome out = std::move(results_.front());
  results_.pop_front();
  return out;
}

void LiquidFarm::drain() {
  start();  // a paused farm can never drain
  std::unique_lock<std::mutex> lk(mu_);
  cv_results_.wait(lk, [&] { return shutdown_ || sched_.idle(); });
}

void LiquidFarm::shutdown() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      // Idempotent: threads were already told; fall through to join.
    }
    shutdown_ = true;
    cv_work_.notify_all();
    cv_results_.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

double LiquidFarm::pregenerate(const liquid::ConfigSpace& space) {
  return cache_.pregenerate(space, syn_);
}

std::vector<u64> LiquidFarm::plan(std::size_t node) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return sched_.plan(workers_.at(node)->current_key);
}

FarmScheduler::Stats LiquidFarm::scheduler_stats() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return sched_.stats();
}

bool LiquidFarm::fleet_idle_locked() const {
  if (!sched_.idle()) return false;
  if (started_) {
    for (const auto& w : workers_) {
      if (!w->ready) return false;  // still booting: owns its node
      // A benched node is still healing itself (owns its node); idle
      // means every survivor is back in rotation.
      if (w->health != NodeHealth::kHealthy) return false;
    }
  }
  return true;
}

void LiquidFarm::recover_node(Worker& w) {
  // Drive the §4.1 recovery path on the worker's own thread: RESTART the
  // node, let the reset settle, and only rejoin the fleet once the control
  // state machine answers idle again.  A node that stays wedged keeps
  // being probed (with run() between probes so simulated time — and any
  // until-cycle fault — can pass) until it heals or the farm shuts down.
  for (;;) {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (shutdown_) return;
    }
    ctrl::LiquidClient probe(*w.node, cfg_.server.client);
    if (probe.restart()) {
      w.node->run(300);  // reset boot back to the polling loop
      const auto st = probe.status();
      if (st && st->state == net::LeonState::kIdle) {
        // Soak before rejoining: run the node a while and re-probe, so a
        // fault that survives RESTART (or re-arms shortly after) is caught
        // here instead of by the next job.  The soak also keeps a freshly
        // benched node out of the pick race for a moment, letting healthy
        // nodes drain its requeued work (migration over re-poisoning).
        w.node->run(100'000);
        const auto again = probe.status();
        if (again && again->state == net::LeonState::kIdle) break;
      }
    }
    w.node->run(5'000);  // breathing room before the next probe
  }
  const std::lock_guard<std::mutex> lk(mu_);
  w.health = NodeHealth::kHealthy;
  w.current_key = w.server->current().key();
  cv_work_.notify_all();
  cv_results_.notify_all();  // report()/drain() may be waiting on health
}

void LiquidFarm::worker_loop(Worker& w) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_work_.wait(lk, [&] { return started_ || shutdown_; });
    if (shutdown_) return;
  }
  // Boot the node to the ROM's mailbox-polling loop before taking work.
  w.node->run(100);
  {
    const std::lock_guard<std::mutex> lk(mu_);
    w.ready = true;
    cv_results_.notify_all();
  }
  for (;;) {
    FarmJob job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        if (shutdown_) return;
        if (w.health == NodeHealth::kQuarantined) {
          w.health = NodeHealth::kRecovering;
          break;
        }
        // Retry avoidance needs to know if any *other* healthy node could
        // take a job this one just failed; if so, leave that job for them.
        bool others_healthy = false;
        for (const auto& other : workers_) {
          if (other->index != w.index && other->ready &&
              other->health == NodeHealth::kHealthy) {
            others_healthy = true;
            break;
          }
        }
        auto picked = sched_.pick(w.current_key, w.index, others_healthy);
        if (picked.has_value()) {
          job = std::move(*picked);
          // A retried job landing on a different node than its last
          // attempt is a migration — the drain-on-fault path working.
          if (!job.node_history.empty() && job.node_history.back() != w.index) {
            ++migrations_;
          }
          break;
        }
        cv_work_.wait(lk);
      }
    }
    if (w.health == NodeHealth::kRecovering) {
      recover_node(w);
      continue;
    }

    // The job's span-emission handle: node lane = index + 1, worker tid 1.
    trace::JobTrace jt;
    if (job.trace.valid()) {
      jt.log = &span_log_;
      jt.ctx = job.trace;
      jt.pid = static_cast<u32>(w.index) + 1;
      jt.tid = 1;
      jt.phase("queue_wait", job.submitted_us, span_log_.now_us());
      if (!job.node_history.empty() && job.node_history.back() != w.index) {
        const double now = span_log_.now_us();
        jt.phase("migrate", now, now, w.node->now(),
                 "retry " + std::to_string(job.attempts) + " from node " +
                     std::to_string(job.node_history.back()));
      }
    }

    const auto t0 = std::chrono::steady_clock::now();
    liquid::JobResult r =
        w.server->run_job(job.config, job.program, job.result_addr,
                          job.result_words, nullptr, jt);
    const double host = seconds_between(t0, std::chrono::steady_clock::now());

    {
      const std::lock_guard<std::mutex> lk(mu_);
      job.attempts += 1;
      job.node_history.push_back(w.index);
      w.current_key = w.server->current().key();
      ++w.jobs;
      if (!r.ok) ++w.failures;
      if (r.reconfigured) ++w.reconfigurations;
      if (r.bitfile_cache_hit) ++w.bitfile_hits;
      const double wall = r.wall_seconds();
      w.busy_seconds += wall;
      host_seconds_ += host;

      // Drain-on-fault: a node-fault failure benches this node either way;
      // the job itself goes back to the head of the queue while retry
      // budget remains, preserving per-owner order (see requeue()).
      const bool bench = !r.ok && r.node_fault;
      if (bench) {
        w.health = NodeHealth::kQuarantined;
        ++w.quarantines;
      }
      if (bench && job.attempts <= cfg_.max_job_retries) {
        ++retries_;
        // The operator's pause before the next attempt, doubling per
        // attempt: simulated time, charged to the node that faulted.
        const unsigned shift = std::min(job.attempts - 1, 4u);
        w.busy_seconds += cfg_.retry_backoff_seconds *
                          static_cast<double>(1u << shift);
        if (jt.active()) {
          const double now = span_log_.now_us();
          jt.phase("retry", now, now, w.node->now(),
                   "attempt " + std::to_string(job.attempts) +
                       " failed on node " + std::to_string(w.index) + ": " +
                       r.error);
        }
        sched_.requeue(std::move(job));
        cv_work_.notify_all();  // a healthy node can take the retry now
        cv_results_.notify_all();
        continue;
      }

      sched_.complete(job.owner);
      wall_samples_.push_back(wall);  // latency sample per delivered job
      if (jt.active()) {
        // The root span covers the whole journey, submission to final
        // delivery — one per job, not one per retried execution.
        trace::Span root;
        root.trace_id = job.trace.trace_id;
        root.span_id = job.trace.span_id;
        root.parent_span_id = 0;
        root.name = "job";
        root.note = job.owner + " " + job.config.key() +
                    (r.ok ? "" : " FAILED: " + r.error);
        root.pid = jt.pid;
        root.tid = jt.tid;
        root.start_us = job.submitted_us;
        root.dur_us = span_log_.now_us() - job.submitted_us;
        root.cycle = w.node->now();
        span_log_.add(root);
      }
      FarmJobOutcome out;
      out.id = job.id;
      out.owner = std::move(job.owner);
      out.config_key = job.config.key();
      out.node = w.index;
      out.trace_id = job.trace.trace_id;
      out.attempts = job.attempts;
      out.node_history = std::move(job.node_history);
      if (!r.ok && w.node->flight_recorder() != nullptr) {
        // Post-mortem rides along with the failure: prefer the automatic
        // error-transition dump (it froze the ring at the moment of
        // death), fall back to a fresh one.
        out.flight_dump = w.node->last_flight_dump();
        if (out.flight_dump.empty()) {
          out.flight_dump = w.node->take_flight_dump("job_failed");
        }
      }
      out.result = std::move(r);
      results_.push_back(std::move(out));
      cv_work_.notify_all();  // completing frees this job's owner
      cv_results_.notify_all();
    }
  }
}

FarmReport LiquidFarm::report() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_results_.wait(lk, [&] { return shutdown_ || fleet_idle_locked(); });

  FarmReport rep;
  metrics::MetricsRegistry fleet;
  for (const auto& w : workers_) {
    rep.jobs += w->jobs;
    rep.failures += w->failures;
    rep.reconfigurations += w->reconfigurations;
    rep.bitfile_hits += w->bitfile_hits;
    rep.total_busy_seconds += w->busy_seconds;
    rep.makespan_seconds = std::max(rep.makespan_seconds, w->busy_seconds);
    rep.warm_starts += w->server->stats().warm_starts;
    FarmReport::Node n;
    n.index = w->index;
    n.jobs = w->jobs;
    n.failures = w->failures;
    n.reconfigurations = w->reconfigurations;
    n.quarantines = w->quarantines;
    n.health = w->health;
    n.busy_seconds = w->busy_seconds;
    n.config_key = w->current_key;
    rep.nodes.push_back(std::move(n));
    fleet.merge_from(w->node->metrics());
  }
  rep.rejected = sched_.stats().rejected;
  rep.affinity_hits = sched_.stats().affinity_hits;
  rep.retries = retries_;
  rep.migrations = migrations_;
  rep.host_seconds = host_seconds_;
  if (rep.makespan_seconds > 0.0) {
    rep.jobs_per_second =
        static_cast<double>(rep.jobs) / rep.makespan_seconds;
  }
  std::vector<double> sorted = wall_samples_;
  std::sort(sorted.begin(), sorted.end());
  rep.p50_wall_seconds = percentile(sorted, 0.50);
  rep.p95_wall_seconds = percentile(sorted, 0.95);
  rep.p99_wall_seconds = percentile(sorted, 0.99);

  // The shared bitfile store, bridged once at fleet level (per-node
  // bridging would multiply-count it in the merge).
  const liquid::ReconfigurationCache::Stats cs = cache_.stats();
  fleet.gauge("reconfig_cache.hits").set(static_cast<double>(cs.hits));
  fleet.gauge("reconfig_cache.misses").set(static_cast<double>(cs.misses));
  fleet.gauge("reconfig_cache.evictions")
      .set(static_cast<double>(cs.evictions));
  fleet.gauge("reconfig_cache.failed_synth")
      .set(static_cast<double>(cs.failed_synth));
  fleet.gauge("reconfig_cache.synth_seconds").set(cs.synth_seconds);
  fleet.gauge("reconfig_cache.size").set(static_cast<double>(cache_.size()));

  fleet.counter("farm.nodes").inc(workers_.size());
  fleet.counter("farm.jobs").inc(rep.jobs);
  fleet.counter("farm.failures").inc(rep.failures);
  fleet.counter("farm.reconfigurations").inc(rep.reconfigurations);
  fleet.counter("farm.bitfile_hits").inc(rep.bitfile_hits);
  fleet.counter("farm.rejected").inc(rep.rejected);
  fleet.counter("farm.affinity_hits").inc(rep.affinity_hits);
  fleet.counter("farm.retries").inc(rep.retries);
  fleet.counter("farm.migrations").inc(rep.migrations);
  fleet.counter("farm.warm_starts").inc(rep.warm_starts);
  fleet.gauge("farm.makespan_seconds").set(rep.makespan_seconds);
  fleet.gauge("farm.total_busy_seconds").set(rep.total_busy_seconds);
  fleet.gauge("farm.jobs_per_second").set(rep.jobs_per_second);
  fleet.gauge("farm.host_seconds").set(rep.host_seconds);
  fleet.gauge("farm.wall_seconds.p50").set(rep.p50_wall_seconds);
  fleet.gauge("farm.wall_seconds.p95").set(rep.p95_wall_seconds);
  fleet.gauge("farm.wall_seconds.p99").set(rep.p99_wall_seconds);
  metrics::Histogram& h = fleet.histogram("farm.wall_seconds");
  for (const double s : wall_samples_) h.observe(s);

  // Per-phase host-microsecond latency distributions from the span log
  // (queue_wait, synthesis, reconfigure, load, run, readback, ...), with
  // nearest-rank p50/p95/p99 gauges alongside.
  if (cfg_.tracing) {
    span_log_.observe_phase_latencies(fleet, "farm.phase.");
  }

  rep.fleet = fleet.snapshot();
  return rep;
}

std::string LiquidFarm::merged_perf_trace() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_results_.wait(lk, [&] { return shutdown_ || fleet_idle_locked(); });
  std::vector<std::string> traces;
  traces.reserve(workers_.size());
  for (const auto& w : workers_) {
    if (sim::PerfTracer* pt = w->node->perf_tracer()) {
      traces.push_back(pt->to_chrome_json());
    }
  }
  return sim::merge_chrome_traces(traces);
}

std::string FarmReport::text() const {
  char buf[256];
  std::string s;
  std::snprintf(buf, sizeof(buf),
                "fleet: %zu nodes, %llu jobs (%llu failed, %llu rejected)\n",
                nodes.size(), static_cast<unsigned long long>(jobs),
                static_cast<unsigned long long>(failures),
                static_cast<unsigned long long>(rejected));
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "reconfigurations: %llu (affinity spared %llu dispatches); "
                "bitfile hits: %llu\n",
                static_cast<unsigned long long>(reconfigurations),
                static_cast<unsigned long long>(affinity_hits),
                static_cast<unsigned long long>(bitfile_hits));
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "self-healing: %llu retries, %llu migrations, "
                "%llu warm starts\n",
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(migrations),
                static_cast<unsigned long long>(warm_starts));
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "simulated makespan: %.3f s  throughput: %.2f jobs/s  "
                "(host cpu: %.2f s)\n",
                makespan_seconds, jobs_per_second, host_seconds);
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "latency wall-seconds: p50 %.4f  p95 %.4f  p99 %.4f\n",
                p50_wall_seconds, p95_wall_seconds, p99_wall_seconds);
  s += buf;
  for (const auto& n : nodes) {
    std::snprintf(buf, sizeof(buf),
                  "  node %zu: %llu jobs, %llu reconfigs, busy %.3f s, "
                  "loaded %s [%s, %llu quarantines]\n",
                  n.index, static_cast<unsigned long long>(n.jobs),
                  static_cast<unsigned long long>(n.reconfigurations),
                  n.busy_seconds, n.config_key.c_str(), to_string(n.health),
                  static_cast<unsigned long long>(n.quarantines));
    s += buf;
  }
  return s;
}

}  // namespace la::farm
