// Typed failures for the farm front end, mirroring the control client's
// Result<T>/Status shape (PR 3): a rejected submission says *why* — queue
// saturated (backpressure), farm shutting down, or a configuration that
// can never load — instead of silently dropping work.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace la::farm {

enum class FarmErrorKind : u8 {
  kSaturated = 0,      // admission control: the bounded queue is full
  kShuttingDown = 1,   // the farm is stopping; no new work accepted
  kInvalidConfig = 2,  // the job's ArchConfig fails validation
  kOwnerSaturated = 3, // this owner alone is at its pending-job cap
};

struct FarmError {
  FarmErrorKind kind = FarmErrorKind::kSaturated;
  std::string detail;
  /// Backpressure hint: roughly how long (host ms) the rejected caller
  /// should wait before retrying.  Filled by admission control on
  /// kSaturated / kOwnerSaturated (scaled to queue pressure); 0 means "no
  /// estimate".  The gateway forwards it verbatim in RETRY_AFTER frames.
  u32 retry_after_hint_ms = 0;

  std::string to_string() const {
    switch (kind) {
      case FarmErrorKind::kSaturated:
        return "queue saturated" + (detail.empty() ? "" : ": " + detail);
      case FarmErrorKind::kShuttingDown:
        return "farm shutting down" + (detail.empty() ? "" : ": " + detail);
      case FarmErrorKind::kInvalidConfig:
        return "invalid configuration" +
               (detail.empty() ? "" : ": " + detail);
      case FarmErrorKind::kOwnerSaturated:
        return "owner saturated" + (detail.empty() ? "" : ": " + detail);
    }
    return "unknown farm error";
  }
};

/// Outcome of a farm operation: a value, or a FarmError saying why not.
/// Same access surface as ctrl::Result so call sites read identically.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}    // NOLINT(runtime/explicit)
  Result(FarmError e) : error_(std::move(e)) {}    // NOLINT(runtime/explicit)

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& value() { return *value_; }
  const T& value() const { return *value_; }

  /// Only meaningful when !has_value().
  const FarmError& error() const { return error_; }

 private:
  std::optional<T> value_;
  FarmError error_;
};

}  // namespace la::farm
