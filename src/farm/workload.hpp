// Seeded closed-loop workload generation for the farm: mixed owners,
// skewed configuration popularity, and programs whose result word is
// predictable on the host — so every completed job can be checked for
// end-to-end integrity, not just counted.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "farm/scheduler.hpp"

namespace la::farm {

struct WorkloadConfig {
  u64 seed = 1;
  unsigned owners = 6;
  /// Configuration points drawn from the catalog (capped at its size).
  /// Popularity is Zipf-skewed: a few hot images, a long cold tail —
  /// the regime where affinity routing and the shared cache pay off.
  unsigned configs = 8;
  double zipf_s = 1.1;
  /// Inner-loop iteration range for the compute templates.
  u32 min_work = 50;
  u32 max_work = 600;
};

/// One generated job plus the result word its program must store.
struct GeneratedJob {
  FarmJob job;
  u32 expected = 0;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig cfg = {});

  /// The next job in the seeded stream.  Generation is independent of
  /// execution, so the same seed yields the same workload no matter how
  /// many nodes run it or which policy schedules it.
  GeneratedJob next();

  /// The configuration catalog jobs draw from (most popular first).
  const std::vector<liquid::ArchConfig>& catalog() const { return catalog_; }

 private:
  WorkloadConfig cfg_;
  Rng rng_;
  std::vector<liquid::ArchConfig> catalog_;
  std::vector<double> cumulative_;  // Zipf CDF over the catalog
};

}  // namespace la::farm
