# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lsim_run "/root/repo/build/tools/lsim" "--dcache" "4096" "--read" "cycles" "/root/repo/progs/fig7.s")
set_tests_properties(lsim_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lsim_sweep "/root/repo/build/tools/lsim" "--sweep" "--read" "cycles" "/root/repo/progs/fig7.s")
set_tests_properties(lsim_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lsim_recommend "/root/repo/build/tools/lsim" "--recommend" "--trace" "/root/repo/progs/fig7.s")
set_tests_properties(lsim_recommend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lsim_runtime_prog "/root/repo/build/tools/lsim" "--runtime" "--read" "done_flag" "/root/repo/progs/quicksort.s")
set_tests_properties(lsim_runtime_prog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lsim_disasm "/root/repo/build/tools/lsim" "--disasm" "/root/repo/progs/crc32.s")
set_tests_properties(lsim_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lsim_srec "/root/repo/build/tools/lsim" "--srec" "/root/repo/progs/memtest.s")
set_tests_properties(lsim_srec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lsim_rejects_bad_args "/root/repo/build/tools/lsim" "--bogus")
set_tests_properties(lsim_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
