file(REMOVE_RECURSE
  "CMakeFiles/lsim.dir/lsim.cpp.o"
  "CMakeFiles/lsim.dir/lsim.cpp.o.d"
  "lsim"
  "lsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
