# Empty compiler generated dependencies file for lsim.
# This may be replaced when dependencies are built.
