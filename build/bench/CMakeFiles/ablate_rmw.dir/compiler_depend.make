# Empty compiler generated dependencies file for ablate_rmw.
# This may be replaced when dependencies are built.
