file(REMOVE_RECURSE
  "CMakeFiles/ablate_rmw.dir/ablate_rmw.cpp.o"
  "CMakeFiles/ablate_rmw.dir/ablate_rmw.cpp.o.d"
  "ablate_rmw"
  "ablate_rmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
