# Empty dependencies file for fig8_cache_sweep.
# This may be replaced when dependencies are built.
