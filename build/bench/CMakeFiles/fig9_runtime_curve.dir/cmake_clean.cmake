file(REMOVE_RECURSE
  "CMakeFiles/fig9_runtime_curve.dir/fig9_runtime_curve.cpp.o"
  "CMakeFiles/fig9_runtime_curve.dir/fig9_runtime_curve.cpp.o.d"
  "fig9_runtime_curve"
  "fig9_runtime_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_runtime_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
