# Empty dependencies file for fig9_runtime_curve.
# This may be replaced when dependencies are built.
