# Empty compiler generated dependencies file for ablate_reconfig_cache.
# This may be replaced when dependencies are built.
