file(REMOVE_RECURSE
  "CMakeFiles/ablate_reconfig_cache.dir/ablate_reconfig_cache.cpp.o"
  "CMakeFiles/ablate_reconfig_cache.dir/ablate_reconfig_cache.cpp.o.d"
  "ablate_reconfig_cache"
  "ablate_reconfig_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reconfig_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
