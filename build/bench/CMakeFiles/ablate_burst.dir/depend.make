# Empty dependencies file for ablate_burst.
# This may be replaced when dependencies are built.
