file(REMOVE_RECURSE
  "CMakeFiles/ablate_burst.dir/ablate_burst.cpp.o"
  "CMakeFiles/ablate_burst.dir/ablate_burst.cpp.o.d"
  "ablate_burst"
  "ablate_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
