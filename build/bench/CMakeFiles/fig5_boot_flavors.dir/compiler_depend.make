# Empty compiler generated dependencies file for fig5_boot_flavors.
# This may be replaced when dependencies are built.
