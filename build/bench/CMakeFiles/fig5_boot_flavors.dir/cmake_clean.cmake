file(REMOVE_RECURSE
  "CMakeFiles/fig5_boot_flavors.dir/fig5_boot_flavors.cpp.o"
  "CMakeFiles/fig5_boot_flavors.dir/fig5_boot_flavors.cpp.o.d"
  "fig5_boot_flavors"
  "fig5_boot_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_boot_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
