file(REMOVE_RECURSE
  "CMakeFiles/ablate_write_buffer.dir/ablate_write_buffer.cpp.o"
  "CMakeFiles/ablate_write_buffer.dir/ablate_write_buffer.cpp.o.d"
  "ablate_write_buffer"
  "ablate_write_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_write_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
