# Empty compiler generated dependencies file for ablate_write_buffer.
# This may be replaced when dependencies are built.
