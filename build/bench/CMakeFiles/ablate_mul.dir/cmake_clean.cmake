file(REMOVE_RECURSE
  "CMakeFiles/ablate_mul.dir/ablate_mul.cpp.o"
  "CMakeFiles/ablate_mul.dir/ablate_mul.cpp.o.d"
  "ablate_mul"
  "ablate_mul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
