# Empty compiler generated dependencies file for ablate_mul.
# This may be replaced when dependencies are built.
