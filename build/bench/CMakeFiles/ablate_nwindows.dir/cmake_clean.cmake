file(REMOVE_RECURSE
  "CMakeFiles/ablate_nwindows.dir/ablate_nwindows.cpp.o"
  "CMakeFiles/ablate_nwindows.dir/ablate_nwindows.cpp.o.d"
  "ablate_nwindows"
  "ablate_nwindows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_nwindows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
