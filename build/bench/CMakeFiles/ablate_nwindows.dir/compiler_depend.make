# Empty compiler generated dependencies file for ablate_nwindows.
# This may be replaced when dependencies are built.
