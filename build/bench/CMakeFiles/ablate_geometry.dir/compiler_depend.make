# Empty compiler generated dependencies file for ablate_geometry.
# This may be replaced when dependencies are built.
