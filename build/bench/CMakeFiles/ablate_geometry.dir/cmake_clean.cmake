file(REMOVE_RECURSE
  "CMakeFiles/ablate_geometry.dir/ablate_geometry.cpp.o"
  "CMakeFiles/ablate_geometry.dir/ablate_geometry.cpp.o.d"
  "ablate_geometry"
  "ablate_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
