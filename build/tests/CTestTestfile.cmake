# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_sasm[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_bus[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_ctrl[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_progs[1]_include.cmake")
include("/root/repo/build/tests/test_liquid[1]_include.cmake")
