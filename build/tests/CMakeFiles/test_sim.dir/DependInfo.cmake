
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/debug_shell_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/debug_shell_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/debug_shell_test.cpp.o.d"
  "/root/repo/tests/sim/monitor_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/monitor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctrl/CMakeFiles/la_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/la_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/la_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/la_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/la_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/la_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/la_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sasm/CMakeFiles/la_sasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
