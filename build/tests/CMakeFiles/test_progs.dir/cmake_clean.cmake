file(REMOVE_RECURSE
  "CMakeFiles/test_progs.dir/progs/programs_test.cpp.o"
  "CMakeFiles/test_progs.dir/progs/programs_test.cpp.o.d"
  "test_progs"
  "test_progs.pdb"
  "test_progs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_progs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
