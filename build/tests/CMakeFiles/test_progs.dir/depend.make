# Empty dependencies file for test_progs.
# This may be replaced when dependencies are built.
