file(REMOVE_RECURSE
  "CMakeFiles/test_sasm.dir/sasm/assembler_errors_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/assembler_errors_test.cpp.o.d"
  "CMakeFiles/test_sasm.dir/sasm/assembler_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/assembler_test.cpp.o.d"
  "CMakeFiles/test_sasm.dir/sasm/disasm_roundtrip_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/disasm_roundtrip_test.cpp.o.d"
  "CMakeFiles/test_sasm.dir/sasm/fuzz_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/fuzz_test.cpp.o.d"
  "CMakeFiles/test_sasm.dir/sasm/lexer_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/lexer_test.cpp.o.d"
  "CMakeFiles/test_sasm.dir/sasm/runtime_source_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/runtime_source_test.cpp.o.d"
  "CMakeFiles/test_sasm.dir/sasm/srec_test.cpp.o"
  "CMakeFiles/test_sasm.dir/sasm/srec_test.cpp.o.d"
  "test_sasm"
  "test_sasm.pdb"
  "test_sasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
