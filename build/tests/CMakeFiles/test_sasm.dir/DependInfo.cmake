
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sasm/assembler_errors_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/assembler_errors_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/assembler_errors_test.cpp.o.d"
  "/root/repo/tests/sasm/assembler_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/assembler_test.cpp.o.d"
  "/root/repo/tests/sasm/disasm_roundtrip_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/disasm_roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/disasm_roundtrip_test.cpp.o.d"
  "/root/repo/tests/sasm/fuzz_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/fuzz_test.cpp.o.d"
  "/root/repo/tests/sasm/lexer_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/lexer_test.cpp.o.d"
  "/root/repo/tests/sasm/runtime_source_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/runtime_source_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/runtime_source_test.cpp.o.d"
  "/root/repo/tests/sasm/srec_test.cpp" "tests/CMakeFiles/test_sasm.dir/sasm/srec_test.cpp.o" "gcc" "tests/CMakeFiles/test_sasm.dir/sasm/srec_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sasm/CMakeFiles/la_sasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
