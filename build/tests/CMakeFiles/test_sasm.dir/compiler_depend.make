# Empty compiler generated dependencies file for test_sasm.
# This may be replaced when dependencies are built.
