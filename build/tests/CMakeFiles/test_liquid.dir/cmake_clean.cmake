file(REMOVE_RECURSE
  "CMakeFiles/test_liquid.dir/liquid/adaptation_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/adaptation_test.cpp.o.d"
  "CMakeFiles/test_liquid.dir/liquid/arch_config_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/arch_config_test.cpp.o.d"
  "CMakeFiles/test_liquid.dir/liquid/job_queue_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/job_queue_test.cpp.o.d"
  "CMakeFiles/test_liquid.dir/liquid/reconfig_cache_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/reconfig_cache_test.cpp.o.d"
  "CMakeFiles/test_liquid.dir/liquid/synthesis_property_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/synthesis_property_test.cpp.o.d"
  "CMakeFiles/test_liquid.dir/liquid/synthesis_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/synthesis_test.cpp.o.d"
  "CMakeFiles/test_liquid.dir/liquid/trace_test.cpp.o"
  "CMakeFiles/test_liquid.dir/liquid/trace_test.cpp.o.d"
  "test_liquid"
  "test_liquid.pdb"
  "test_liquid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_liquid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
