# Empty compiler generated dependencies file for test_liquid.
# This may be replaced when dependencies are built.
