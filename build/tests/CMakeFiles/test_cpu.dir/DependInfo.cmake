
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cpu/alu_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/alu_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/alu_test.cpp.o.d"
  "/root/repo/tests/cpu/branch_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/branch_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/branch_test.cpp.o.d"
  "/root/repo/tests/cpu/edge_cases_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/edge_cases_test.cpp.o.d"
  "/root/repo/tests/cpu/memory_ops_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/memory_ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/memory_ops_test.cpp.o.d"
  "/root/repo/tests/cpu/muldiv_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/muldiv_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/muldiv_test.cpp.o.d"
  "/root/repo/tests/cpu/state_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/state_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/state_test.cpp.o.d"
  "/root/repo/tests/cpu/windows_traps_test.cpp" "tests/CMakeFiles/test_cpu.dir/cpu/windows_traps_test.cpp.o" "gcc" "tests/CMakeFiles/test_cpu.dir/cpu/windows_traps_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/la_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sasm/CMakeFiles/la_sasm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/la_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/la_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
