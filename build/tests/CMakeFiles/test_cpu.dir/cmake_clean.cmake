file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/cpu/alu_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/alu_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/branch_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/branch_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/edge_cases_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/edge_cases_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/memory_ops_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/memory_ops_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/muldiv_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/muldiv_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/state_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/state_test.cpp.o.d"
  "CMakeFiles/test_cpu.dir/cpu/windows_traps_test.cpp.o"
  "CMakeFiles/test_cpu.dir/cpu/windows_traps_test.cpp.o.d"
  "test_cpu"
  "test_cpu.pdb"
  "test_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
