file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/cpu/pipeline_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/cpu/pipeline_test.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/cpu/runtime_windows_test.cpp.o"
  "CMakeFiles/test_pipeline.dir/cpu/runtime_windows_test.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
  "test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
