# Empty dependencies file for adaptive_runtime.
# This may be replaced when dependencies are built.
