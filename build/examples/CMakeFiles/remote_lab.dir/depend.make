# Empty dependencies file for remote_lab.
# This may be replaced when dependencies are built.
