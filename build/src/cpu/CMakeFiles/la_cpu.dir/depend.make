# Empty dependencies file for la_cpu.
# This may be replaced when dependencies are built.
