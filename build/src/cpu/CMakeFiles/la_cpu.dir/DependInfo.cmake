
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/integer_unit.cpp" "src/cpu/CMakeFiles/la_cpu.dir/integer_unit.cpp.o" "gcc" "src/cpu/CMakeFiles/la_cpu.dir/integer_unit.cpp.o.d"
  "/root/repo/src/cpu/leon_pipeline.cpp" "src/cpu/CMakeFiles/la_cpu.dir/leon_pipeline.cpp.o" "gcc" "src/cpu/CMakeFiles/la_cpu.dir/leon_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/la_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/la_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
