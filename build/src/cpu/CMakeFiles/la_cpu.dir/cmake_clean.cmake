file(REMOVE_RECURSE
  "CMakeFiles/la_cpu.dir/integer_unit.cpp.o"
  "CMakeFiles/la_cpu.dir/integer_unit.cpp.o.d"
  "CMakeFiles/la_cpu.dir/leon_pipeline.cpp.o"
  "CMakeFiles/la_cpu.dir/leon_pipeline.cpp.o.d"
  "libla_cpu.a"
  "libla_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
