file(REMOVE_RECURSE
  "libla_cpu.a"
)
