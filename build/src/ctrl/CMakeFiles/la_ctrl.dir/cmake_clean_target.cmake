file(REMOVE_RECURSE
  "libla_ctrl.a"
)
