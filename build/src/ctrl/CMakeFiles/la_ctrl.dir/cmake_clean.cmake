file(REMOVE_RECURSE
  "CMakeFiles/la_ctrl.dir/client.cpp.o"
  "CMakeFiles/la_ctrl.dir/client.cpp.o.d"
  "CMakeFiles/la_ctrl.dir/loader.cpp.o"
  "CMakeFiles/la_ctrl.dir/loader.cpp.o.d"
  "libla_ctrl.a"
  "libla_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
