# Empty dependencies file for la_ctrl.
# This may be replaced when dependencies are built.
