file(REMOVE_RECURSE
  "libla_cache.a"
)
