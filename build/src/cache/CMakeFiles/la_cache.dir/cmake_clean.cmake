file(REMOVE_RECURSE
  "CMakeFiles/la_cache.dir/cache.cpp.o"
  "CMakeFiles/la_cache.dir/cache.cpp.o.d"
  "libla_cache.a"
  "libla_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
