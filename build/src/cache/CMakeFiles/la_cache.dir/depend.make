# Empty dependencies file for la_cache.
# This may be replaced when dependencies are built.
