file(REMOVE_RECURSE
  "libla_net.a"
)
