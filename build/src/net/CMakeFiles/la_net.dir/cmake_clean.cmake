file(REMOVE_RECURSE
  "CMakeFiles/la_net.dir/channel.cpp.o"
  "CMakeFiles/la_net.dir/channel.cpp.o.d"
  "CMakeFiles/la_net.dir/emulator.cpp.o"
  "CMakeFiles/la_net.dir/emulator.cpp.o.d"
  "CMakeFiles/la_net.dir/leon_ctrl.cpp.o"
  "CMakeFiles/la_net.dir/leon_ctrl.cpp.o.d"
  "CMakeFiles/la_net.dir/packet.cpp.o"
  "CMakeFiles/la_net.dir/packet.cpp.o.d"
  "CMakeFiles/la_net.dir/trace_stream.cpp.o"
  "CMakeFiles/la_net.dir/trace_stream.cpp.o.d"
  "CMakeFiles/la_net.dir/wrappers.cpp.o"
  "CMakeFiles/la_net.dir/wrappers.cpp.o.d"
  "libla_net.a"
  "libla_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
