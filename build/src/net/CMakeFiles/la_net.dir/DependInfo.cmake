
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/la_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/la_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/emulator.cpp" "src/net/CMakeFiles/la_net.dir/emulator.cpp.o" "gcc" "src/net/CMakeFiles/la_net.dir/emulator.cpp.o.d"
  "/root/repo/src/net/leon_ctrl.cpp" "src/net/CMakeFiles/la_net.dir/leon_ctrl.cpp.o" "gcc" "src/net/CMakeFiles/la_net.dir/leon_ctrl.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/la_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/la_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/trace_stream.cpp" "src/net/CMakeFiles/la_net.dir/trace_stream.cpp.o" "gcc" "src/net/CMakeFiles/la_net.dir/trace_stream.cpp.o.d"
  "/root/repo/src/net/wrappers.cpp" "src/net/CMakeFiles/la_net.dir/wrappers.cpp.o" "gcc" "src/net/CMakeFiles/la_net.dir/wrappers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/la_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/la_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/la_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/la_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
