# Empty compiler generated dependencies file for la_net.
# This may be replaced when dependencies are built.
