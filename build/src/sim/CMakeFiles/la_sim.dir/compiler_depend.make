# Empty compiler generated dependencies file for la_sim.
# This may be replaced when dependencies are built.
