file(REMOVE_RECURSE
  "libla_sim.a"
)
