file(REMOVE_RECURSE
  "CMakeFiles/la_sim.dir/debug_shell.cpp.o"
  "CMakeFiles/la_sim.dir/debug_shell.cpp.o.d"
  "CMakeFiles/la_sim.dir/liquid_system.cpp.o"
  "CMakeFiles/la_sim.dir/liquid_system.cpp.o.d"
  "CMakeFiles/la_sim.dir/monitor.cpp.o"
  "CMakeFiles/la_sim.dir/monitor.cpp.o.d"
  "CMakeFiles/la_sim.dir/report.cpp.o"
  "CMakeFiles/la_sim.dir/report.cpp.o.d"
  "libla_sim.a"
  "libla_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
