file(REMOVE_RECURSE
  "CMakeFiles/la_mem.dir/ahb_sdram_adapter.cpp.o"
  "CMakeFiles/la_mem.dir/ahb_sdram_adapter.cpp.o.d"
  "CMakeFiles/la_mem.dir/boot_rom.cpp.o"
  "CMakeFiles/la_mem.dir/boot_rom.cpp.o.d"
  "CMakeFiles/la_mem.dir/disconnect.cpp.o"
  "CMakeFiles/la_mem.dir/disconnect.cpp.o.d"
  "CMakeFiles/la_mem.dir/sdram.cpp.o"
  "CMakeFiles/la_mem.dir/sdram.cpp.o.d"
  "CMakeFiles/la_mem.dir/sram.cpp.o"
  "CMakeFiles/la_mem.dir/sram.cpp.o.d"
  "libla_mem.a"
  "libla_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
