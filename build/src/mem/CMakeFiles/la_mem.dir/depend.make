# Empty dependencies file for la_mem.
# This may be replaced when dependencies are built.
