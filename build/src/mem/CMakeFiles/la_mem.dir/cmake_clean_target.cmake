file(REMOVE_RECURSE
  "libla_mem.a"
)
