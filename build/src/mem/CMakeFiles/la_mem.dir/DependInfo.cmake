
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/ahb_sdram_adapter.cpp" "src/mem/CMakeFiles/la_mem.dir/ahb_sdram_adapter.cpp.o" "gcc" "src/mem/CMakeFiles/la_mem.dir/ahb_sdram_adapter.cpp.o.d"
  "/root/repo/src/mem/boot_rom.cpp" "src/mem/CMakeFiles/la_mem.dir/boot_rom.cpp.o" "gcc" "src/mem/CMakeFiles/la_mem.dir/boot_rom.cpp.o.d"
  "/root/repo/src/mem/disconnect.cpp" "src/mem/CMakeFiles/la_mem.dir/disconnect.cpp.o" "gcc" "src/mem/CMakeFiles/la_mem.dir/disconnect.cpp.o.d"
  "/root/repo/src/mem/sdram.cpp" "src/mem/CMakeFiles/la_mem.dir/sdram.cpp.o" "gcc" "src/mem/CMakeFiles/la_mem.dir/sdram.cpp.o.d"
  "/root/repo/src/mem/sram.cpp" "src/mem/CMakeFiles/la_mem.dir/sram.cpp.o" "gcc" "src/mem/CMakeFiles/la_mem.dir/sram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bus/CMakeFiles/la_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
