# Empty compiler generated dependencies file for la_sasm.
# This may be replaced when dependencies are built.
