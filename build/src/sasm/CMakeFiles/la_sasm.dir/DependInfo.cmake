
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sasm/assembler.cpp" "src/sasm/CMakeFiles/la_sasm.dir/assembler.cpp.o" "gcc" "src/sasm/CMakeFiles/la_sasm.dir/assembler.cpp.o.d"
  "/root/repo/src/sasm/lexer.cpp" "src/sasm/CMakeFiles/la_sasm.dir/lexer.cpp.o" "gcc" "src/sasm/CMakeFiles/la_sasm.dir/lexer.cpp.o.d"
  "/root/repo/src/sasm/runtime.cpp" "src/sasm/CMakeFiles/la_sasm.dir/runtime.cpp.o" "gcc" "src/sasm/CMakeFiles/la_sasm.dir/runtime.cpp.o.d"
  "/root/repo/src/sasm/srec.cpp" "src/sasm/CMakeFiles/la_sasm.dir/srec.cpp.o" "gcc" "src/sasm/CMakeFiles/la_sasm.dir/srec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
