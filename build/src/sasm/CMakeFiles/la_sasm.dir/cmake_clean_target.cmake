file(REMOVE_RECURSE
  "libla_sasm.a"
)
