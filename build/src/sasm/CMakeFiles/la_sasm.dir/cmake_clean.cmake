file(REMOVE_RECURSE
  "CMakeFiles/la_sasm.dir/assembler.cpp.o"
  "CMakeFiles/la_sasm.dir/assembler.cpp.o.d"
  "CMakeFiles/la_sasm.dir/lexer.cpp.o"
  "CMakeFiles/la_sasm.dir/lexer.cpp.o.d"
  "CMakeFiles/la_sasm.dir/runtime.cpp.o"
  "CMakeFiles/la_sasm.dir/runtime.cpp.o.d"
  "CMakeFiles/la_sasm.dir/srec.cpp.o"
  "CMakeFiles/la_sasm.dir/srec.cpp.o.d"
  "libla_sasm.a"
  "libla_sasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_sasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
