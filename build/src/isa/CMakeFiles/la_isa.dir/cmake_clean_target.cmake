file(REMOVE_RECURSE
  "libla_isa.a"
)
