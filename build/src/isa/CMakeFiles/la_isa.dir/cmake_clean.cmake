file(REMOVE_RECURSE
  "CMakeFiles/la_isa.dir/decode.cpp.o"
  "CMakeFiles/la_isa.dir/decode.cpp.o.d"
  "CMakeFiles/la_isa.dir/disasm.cpp.o"
  "CMakeFiles/la_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/la_isa.dir/encode.cpp.o"
  "CMakeFiles/la_isa.dir/encode.cpp.o.d"
  "CMakeFiles/la_isa.dir/isa.cpp.o"
  "CMakeFiles/la_isa.dir/isa.cpp.o.d"
  "libla_isa.a"
  "libla_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
