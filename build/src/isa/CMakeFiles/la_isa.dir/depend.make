# Empty dependencies file for la_isa.
# This may be replaced when dependencies are built.
