
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/liquid/adaptation.cpp" "src/liquid/CMakeFiles/la_liquid.dir/adaptation.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/adaptation.cpp.o.d"
  "/root/repo/src/liquid/arch_config.cpp" "src/liquid/CMakeFiles/la_liquid.dir/arch_config.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/arch_config.cpp.o.d"
  "/root/repo/src/liquid/job_queue.cpp" "src/liquid/CMakeFiles/la_liquid.dir/job_queue.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/job_queue.cpp.o.d"
  "/root/repo/src/liquid/reconfig_cache.cpp" "src/liquid/CMakeFiles/la_liquid.dir/reconfig_cache.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/reconfig_cache.cpp.o.d"
  "/root/repo/src/liquid/reconfig_server.cpp" "src/liquid/CMakeFiles/la_liquid.dir/reconfig_server.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/reconfig_server.cpp.o.d"
  "/root/repo/src/liquid/synthesis.cpp" "src/liquid/CMakeFiles/la_liquid.dir/synthesis.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/synthesis.cpp.o.d"
  "/root/repo/src/liquid/trace.cpp" "src/liquid/CMakeFiles/la_liquid.dir/trace.cpp.o" "gcc" "src/liquid/CMakeFiles/la_liquid.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctrl/CMakeFiles/la_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/la_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/la_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/la_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/la_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/la_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/la_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sasm/CMakeFiles/la_sasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/la_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
