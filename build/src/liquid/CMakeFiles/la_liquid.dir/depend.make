# Empty dependencies file for la_liquid.
# This may be replaced when dependencies are built.
