file(REMOVE_RECURSE
  "CMakeFiles/la_liquid.dir/adaptation.cpp.o"
  "CMakeFiles/la_liquid.dir/adaptation.cpp.o.d"
  "CMakeFiles/la_liquid.dir/arch_config.cpp.o"
  "CMakeFiles/la_liquid.dir/arch_config.cpp.o.d"
  "CMakeFiles/la_liquid.dir/job_queue.cpp.o"
  "CMakeFiles/la_liquid.dir/job_queue.cpp.o.d"
  "CMakeFiles/la_liquid.dir/reconfig_cache.cpp.o"
  "CMakeFiles/la_liquid.dir/reconfig_cache.cpp.o.d"
  "CMakeFiles/la_liquid.dir/reconfig_server.cpp.o"
  "CMakeFiles/la_liquid.dir/reconfig_server.cpp.o.d"
  "CMakeFiles/la_liquid.dir/synthesis.cpp.o"
  "CMakeFiles/la_liquid.dir/synthesis.cpp.o.d"
  "CMakeFiles/la_liquid.dir/trace.cpp.o"
  "CMakeFiles/la_liquid.dir/trace.cpp.o.d"
  "libla_liquid.a"
  "libla_liquid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_liquid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
