file(REMOVE_RECURSE
  "libla_liquid.a"
)
