# Empty dependencies file for la_bus.
# This may be replaced when dependencies are built.
