file(REMOVE_RECURSE
  "CMakeFiles/la_bus.dir/ahb.cpp.o"
  "CMakeFiles/la_bus.dir/ahb.cpp.o.d"
  "CMakeFiles/la_bus.dir/apb.cpp.o"
  "CMakeFiles/la_bus.dir/apb.cpp.o.d"
  "CMakeFiles/la_bus.dir/peripherals.cpp.o"
  "CMakeFiles/la_bus.dir/peripherals.cpp.o.d"
  "libla_bus.a"
  "libla_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
