file(REMOVE_RECURSE
  "libla_bus.a"
)
