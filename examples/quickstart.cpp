// Quickstart: the smallest complete trip through the Liquid Architecture
// system.
//
//   1. bring up the simulated FPX node (LEON + caches + AHB + SRAM/SDRAM
//      + boot ROM + protocol wrappers + leon_ctrl),
//   2. assemble a SPARC V8 program with the built-in assembler,
//   3. load and start it over the (simulated) network with UDP control
//      packets, exactly as the paper's web control software does,
//   4. read the results back and print what happened.
#include <cstdio>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

int main() {
  using namespace la;

  // 1. The node boots from ROM into the mailbox polling loop.
  sim::LiquidSystem node;
  node.run(100);
  std::printf("node is up; LEON spinning in the boot ROM polling loop\n");

  // 2. A program: sum the squares 1..20 and print to the UART.
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      mov 20, %l0            ! n
      mov 0, %l1             ! accumulator
  loop:
      umul %l0, %l0, %l2     ! n*n
      add %l1, %l2, %l1
      subcc %l0, 1, %l0
      bne loop
      nop
      set result, %l3
      st %l1, [%l3]
      set 0x80000100, %l4    ! UART data register
      mov 0x6f, %l5          ! "o"
      st %l5, [%l4]          ! the program says "ok" over the serial port
      mov 0x6b, %l5          ! "k"
      st %l5, [%l4]
      jmp 0x40               ! hand control back to the polling loop
      nop
      .align 4
  result:
      .skip 4
  )");

  // 3. Ship it over the network and run it.
  ctrl::LiquidClient client(node);
  if (!client.run_program(img)) {
    std::printf("program did not complete!\n");
    return 1;
  }
  std::printf("program ran in %llu cycles (hardware-counted)\n",
              static_cast<unsigned long long>(
                  node.controller().last_run_cycles()));

  // 4. Read the result word back with a Read Memory command.
  const auto mem = client.read_memory(img.symbol("result"), 1);
  if (!mem) {
    std::printf("readback failed!\n");
    return 1;
  }
  std::printf("sum of squares 1..20 = %u (expected 2870)\n", (*mem)[0]);
  std::printf("UART said: \"%s\"\n", node.uart().tx_log().c_str());

  std::printf("\ncontrol traffic: %llu commands, %llu responses\n",
              static_cast<unsigned long long>(client.stats().commands_sent),
              static_cast<unsigned long long>(client.stats().responses));
  return (*mem)[0] == 2870 ? 0 : 1;
}
