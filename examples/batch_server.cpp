// Batch server: the Reconfiguration Server sequencing many users' jobs.
//
// Five users submit programs pinned to different architecture images.
// Reprogramming the FPGA between jobs costs a bitstream download, so the
// scheduler can group jobs by configuration instead of running strict
// FIFO — the same batch, two schedules, and the wall-clock difference.
#include <cstdio>

#include "liquid/job_queue.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

sasm::Image workload(u32 seedish) {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set )" + std::to_string(seedish) + R"(, %g1
      mov 200, %g2
  loop:
      xor %g1, %g2, %g1
      sll %g1, 1, %g3
      srl %g1, 31, %g1
      or %g1, %g3, %g1
      subcc %g2, 1, %g2
      bne loop
      nop
      set result, %g4
      st %g1, [%g4]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )");
}

void show(const char* title, const liquid::BatchReport& rep) {
  std::printf("%s\n", title);
  std::printf("  %-8s %-30s %10s %6s\n", "owner", "image", "cycles", "swap");
  for (const auto& item : rep.items) {
    std::printf("  %-8s %-30s %10llu %6s\n", item.owner.c_str(),
                item.config_key.c_str(),
                static_cast<unsigned long long>(item.result.cycles),
                item.result.reconfigured ? "yes" : "-");
  }
  std::printf("  => %llu reconfigurations, %.2f s reprogramming, "
              "%llu failures\n\n",
              static_cast<unsigned long long>(rep.reconfigurations),
              rep.total_reprogram_seconds,
              static_cast<unsigned long long>(rep.failures));
}

}  // namespace

int main() {
  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  cache.pregenerate(liquid::ConfigSpace{}, syn);

  sim::LiquidSystem node;
  node.run(100);
  liquid::ReconfigurationServer server(node, cache, syn);
  liquid::JobQueue queue(server);

  const auto submit_batch = [&] {
    const struct {
      const char* owner;
      u32 dcache;
      u32 value;
    } requests[] = {
        {"alice", 1024, 0xa11ce}, {"bob", 4096, 0xb0b},
        {"carol", 1024, 0xca401}, {"dave", 4096, 0xdafe},
        {"erin", 16384, 0xe417},  {"frank", 1024, 0xf4a7c},
    };
    for (const auto& r : requests) {
      liquid::Job j;
      j.owner = r.owner;
      j.config.dcache_bytes = r.dcache;
      j.program = workload(r.value);
      j.result_addr = j.program.symbol("result");
      j.result_words = 1;
      queue.submit(std::move(j));
    }
  };

  submit_batch();
  show("FIFO schedule:", queue.run_all(liquid::SchedulePolicy::kFifo));

  submit_batch();
  show("grouped-by-image schedule:",
       queue.run_all(liquid::SchedulePolicy::kGroupByConfig));
  return 0;
}
