// Adaptive runtime: the closed loop of Fig 1 on a phased workload.
//
// An application alternates between two phases with very different memory
// behaviour: a small-footprint pointer-ish phase and a large strided
// phase.  The adaptation engine profiles each phase, picks the best
// pre-generated image from the reconfiguration cache, and swaps the FPGA
// between them — the "dynamic adaptation at runtime" the paper's
// environment diagram promises.
#include <cstdio>
#include <string>

#include "liquid/adaptation.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

std::string phase_program(u32 footprint, u32 stride, u32 passes) {
  return R"(
      .org 0x40000100
  _start:
      set )" + std::to_string(passes) + R"(, %g6
  outer:
      set array, %o0
      set )" + std::to_string(footprint) + R"(, %o5
      mov 0, %o1
  walk:
      ld [%o0 + %o1], %o2
      add %o1, )" + std::to_string(stride) + R"(, %o1
      cmp %o1, %o5
      bl walk
      nop
      subcc %g6, 1, %g6
      bne outer
      nop
      jmp 0x40
      nop
      .align 32
  array:
      .skip )" + std::to_string(footprint) + "\n";
}

void show(const char* phase, const liquid::AdaptationOutcome& out) {
  std::printf("%s\n", phase);
  for (std::size_t i = 0; i < out.steps.size(); ++i) {
    const auto& s = out.steps[i];
    std::printf("  round %zu: %-30s %10llu cycles%s%s\n", i,
                s.config.key().c_str(),
                static_cast<unsigned long long>(s.cycles),
                s.reconfigured ? "  [reconfigured]" : "",
                s.cache_hit ? "" : "  [synthesized!]");
  }
  std::printf("  -> speedup %.2fx; final working set %llu B, stride %lld\n\n",
              out.speedup(),
              static_cast<unsigned long long>(
                  out.steps.back().trace.data_working_set_bytes),
              static_cast<long long>(out.steps.back().trace.dominant_stride));
}

}  // namespace

int main() {
  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  liquid::ConfigSpace space;  // 1..16 KB images

  std::printf("pre-generating the configuration space: %.1f simulated hours\n\n",
              cache.pregenerate(space, syn) / 3600.0);

  sim::LiquidSystem node;
  node.run(100);
  liquid::ReconfigurationServer server(node, cache, syn);
  liquid::AdaptationEngine engine(server, space);

  // Phase A: big strided phase (needs a large cache).
  const auto big = sasm::assemble_or_throw(phase_program(8192, 32, 40));
  show("phase A: 8 KB footprint, 32 B stride",
       engine.adapt(big, 0, 0, 3));

  // Phase B: small hot loop (the small image is enough — and the analyzer
  // should migrate back DOWN, freeing BRAMs).
  const auto small = sasm::assemble_or_throw(phase_program(512, 4, 400));
  show("phase B: 512 B footprint, 4 B stride",
       engine.adapt(small, 0, 0, 3));

  // Phase A again: everything is a cache hit now — pure reprogramming.
  show("phase A again (warm image cache)", engine.adapt(big, 0, 0, 3));

  std::printf("server: %llu jobs, %llu reconfigurations, %.2f s spent "
              "reprogramming\n",
              static_cast<unsigned long long>(server.stats().jobs),
              static_cast<unsigned long long>(
                  server.stats().reconfigurations),
              server.stats().reprogram_seconds);
  std::printf("bitfile cache: %llu hits, %llu misses, %.1f h of synthesis\n",
              static_cast<unsigned long long>(cache.stats().hits),
              static_cast<unsigned long long>(cache.stats().misses),
              cache.stats().synth_seconds / 3600.0);
  return 0;
}
