// Cache explorer: the paper's headline use case as a tool.
//
// Give it a stride and a footprint and it sweeps the pre-generated
// configuration space, running the access kernel under every D-cache
// geometry and reporting cycle counts, miss ratios, and the FPGA resources
// each point costs — the exact tradeoff a Liquid Architecture user is
// supposed to explore before picking an image.
//
// Usage: cache_explorer [footprint_bytes] [stride_bytes]
//   default: the paper's kernel (4096-byte span, 128-byte stride).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "liquid/reconfig_server.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

std::string make_kernel(u32 footprint, u32 stride, u32 iterations) {
  return R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]          ! start the cycle counter
      set )" + std::to_string(iterations) + R"(, %g6
  outer:
      set array, %o0
      set )" + std::to_string(footprint) + R"(, %o5
      mov 0, %o1
  walk:
      ld [%o0 + %o1], %o2
      add %o1, )" + std::to_string(stride) + R"(, %o1
      cmp %o1, %o5
      bl walk
      nop
      subcc %g6, 1, %g6
      bne outer
      nop
      st %g0, [%g1]          ! stop the counter
      ld [%g1 + 4], %o4
      set cycles, %g3
      st %o4, [%g3]
      jmp 0x40
      nop
      .align 4
  cycles:
      .skip 4
      .align 32
  array:
      .skip )" + std::to_string(footprint) + "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const u32 footprint = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 4096;
  const u32 stride = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 128;
  if (footprint == 0 || stride == 0 || stride > footprint ||
      footprint > 262144) {
    std::fprintf(stderr, "usage: cache_explorer [footprint<=256K] [stride]\n");
    return 2;
  }
  const u32 iterations = 200;

  const auto img = sasm::assemble_or_throw(
      make_kernel(footprint, stride, iterations));

  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  liquid::ConfigSpace space;  // 1..16 KB D-caches
  std::printf("pre-generating %zu images (%.1f simulated hours of synthesis)\n",
              space.enumerate().size(),
              cache.pregenerate(space, syn) / 3600.0);

  std::printf(
      "\nworkload: %u passes over %u bytes with a %u-byte stride\n\n",
      iterations, footprint, stride);
  std::printf("%-8s %12s %12s %10s %10s %8s\n", "dcache", "cycles",
              "d-misses", "missrate", "BRAMs", "fmax");

  Cycles best_cycles = ~Cycles{0};
  u32 best_kb = 0;
  for (const auto& cfg : space.enumerate()) {
    sim::LiquidSystem node;
    node.run(100);
    liquid::ReconfigurationServer server(node, cache, syn);
    liquid::TraceAnalyzer analyzer;
    const auto job =
        server.run_job(cfg, img, img.symbol("cycles"), 1, &analyzer);
    if (!job.ok) {
      std::printf("%4uKB   FAILED: %s\n", cfg.dcache_bytes / 1024,
                  job.error.c_str());
      continue;
    }
    const auto& d = node.cpu().dcache().stats();
    const auto u = syn.estimate(cfg);
    std::printf("%4uKB   %12u %12llu %9.1f%% %10u %5.0fMHz\n",
                cfg.dcache_bytes / 1024, job.readback.at(0),
                static_cast<unsigned long long>(d.read_misses),
                100.0 * d.miss_ratio(), u.brams, u.fmax_mhz);
    if (job.readback.at(0) < best_cycles) {
      best_cycles = job.readback.at(0);
      best_kb = cfg.dcache_bytes / 1024;
    }
  }

  std::printf("\nbest configuration for this workload: %uKB\n", best_kb);

  // What would the trace analyzer have picked, from one profiling run?
  sim::LiquidSystem node;
  node.run(100);
  liquid::ReconfigurationServer server(node, cache, syn);
  liquid::TraceAnalyzer analyzer;
  server.run_job(liquid::ArchConfig::paper_baseline(), img,
                 img.symbol("cycles"), 1, &analyzer);
  const auto rec = analyzer.recommend(space);
  std::printf("trace analyzer recommends: %uKB (from one profiled run)\n",
              rec.dcache_bytes / 1024);
  return 0;
}
