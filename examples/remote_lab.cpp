// Remote lab: operating the FPX over a hostile Internet.
//
// The paper's deployment story is a processor you drive entirely through
// UDP control packets — and UDP "does not guarantee order of delivery",
// which is why Load-program packets carry sequence numbers.  This example
// loads a multi-packet program through a channel that drops 30% of the
// frames, duplicates some, and reorders others, and shows the protocol
// machinery (per-chunk acks, retransmissions, idempotent chunk writes)
// getting the program through intact.
#include <cstdio>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

int main() {
  using namespace la;

  sim::LiquidSystem node;
  node.run(100);

  // A deliberately large program image: a table-driven checksum over 2 KB
  // of constant data baked into the image, so the load spans many packets.
  std::string src = R"(
      .org 0x40000100
  _start:
      set table, %o0
      set 2048, %o5
      mov 0, %o1             ! offset
      mov 0, %o2             ! checksum
  loop:
      ld [%o0 + %o1], %o3
      xor %o2, %o3, %o2
      sll %o2, 1, %o4        ! rotate-ish mix
      srl %o2, 31, %o2
      or %o2, %o4, %o2
      add %o1, 4, %o1
      cmp %o1, %o5
      bl loop
      nop
      set result, %o6
      st %o2, [%o6]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
      .align 4
  table:
  )";
  for (int i = 0; i < 512; ++i) {
    src += "      .word " + std::to_string(0x9e3779b9u * (i + 1)) + "\n";
  }
  const auto img = sasm::assemble_or_throw(src);
  std::printf("program image: %zu bytes at 0x%08x\n", img.data.size(),
              img.base);

  // A nasty channel in both directions.
  ctrl::ClientConfig ccfg;
  ccfg.load_chunk = 64;  // many small packets -> lots of chances to fail
  ccfg.uplink.drop = 0.30;
  ccfg.uplink.duplicate = 0.10;
  ccfg.uplink.reorder = 0.20;
  ccfg.uplink.seed = 2004;
  ccfg.downlink.drop = 0.30;
  ccfg.downlink.seed = 124;
  ctrl::LiquidClient client(node, ccfg);

  std::printf("channel: 30%% drop, 10%% dup, 20%% reorder on the uplink; "
              "30%% drop on the downlink\n\n");

  if (!client.run_program(img)) {
    std::printf("the program never made it through!\n");
    return 1;
  }

  const auto mem = client.read_memory(img.symbol("result"), 1);
  if (!mem) {
    std::printf("readback failed\n");
    return 1;
  }

  // Reference checksum computed host-side.
  u32 want = 0;
  for (int i = 0; i < 512; ++i) {
    want ^= 0x9e3779b9u * (i + 1);
    want = (want << 1) | (want >> 31);
  }
  std::printf("checksum from the node: 0x%08x (host reference 0x%08x) %s\n",
              (*mem)[0], want, (*mem)[0] == want ? "MATCH" : "MISMATCH");

  const auto& ch = client.uplink().stats();
  std::printf("\nuplink:   %llu sent, %llu dropped, %llu duplicated, "
              "%llu reordered\n",
              static_cast<unsigned long long>(ch.sent),
              static_cast<unsigned long long>(ch.dropped),
              static_cast<unsigned long long>(ch.duplicated),
              static_cast<unsigned long long>(ch.reordered));
  const auto& cs = client.stats();
  std::printf("client:   %llu commands, %llu retries, %llu responses\n",
              static_cast<unsigned long long>(cs.commands_sent),
              static_cast<unsigned long long>(cs.retries),
              static_cast<unsigned long long>(cs.responses));
  const auto& ls = node.controller().stats();
  std::printf("leon_ctrl: %llu chunks written (%llu duplicates ignored), "
              "%llu bad commands\n",
              static_cast<unsigned long long>(ls.chunks_loaded),
              static_cast<unsigned long long>(ls.duplicate_chunks),
              static_cast<unsigned long long>(ls.bad_commands));
  const auto& ws = node.wrappers().stats();
  std::printf("wrappers: %llu datagrams in, %llu bad IP frames dropped\n",
              static_cast<unsigned long long>(ws.datagrams_in),
              static_cast<unsigned long long>(ws.ip_bad));
  return (*mem)[0] == want ? 0 : 1;
}
