// The Section 3.2 AHB <-> FPX SDRAM adapter: 32/64-bit bridging,
// always-burst-4 reads, read-modify-write stores, handshake accounting.
#include "mem/ahb_sdram_adapter.hpp"

#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "mem/sdram.hpp"

namespace la::mem {
namespace {

struct AdapterFixture : ::testing::Test {
  AdapterFixture() { rebuild(AdapterConfig{}); }

  void rebuild(AdapterConfig cfg) {
    dev = std::make_unique<SdramDevice>(1 << 20);
    ctrl = std::make_unique<FpxSdramController>(*dev);
    adapter = std::make_unique<AhbSdramAdapter>(*ctrl, kBase, 1 << 20,
                                                &clock, cfg);
    bus = std::make_unique<bus::AhbBus>();
    bus->attach(kBase, 1 << 20, adapter.get());
  }

  static constexpr Addr kBase = 0x60000000;

  Cycles clock = 0;
  std::unique_ptr<SdramDevice> dev;
  std::unique_ptr<FpxSdramController> ctrl;
  std::unique_ptr<AhbSdramAdapter> adapter;
  std::unique_ptr<bus::AhbBus> bus;
};

TEST_F(AdapterFixture, WordWriteReadRoundTrip) {
  bus->write32(bus::Master::kCpuData, kBase + 0x100, 0xaabbccdd);
  bus->write32(bus::Master::kCpuData, kBase + 0x104, 0x11223344);
  u32 v = 0;
  bus->read32(bus::Master::kCpuData, kBase + 0x100, v);
  EXPECT_EQ(v, 0xaabbccddu);
  bus->read32(bus::Master::kCpuData, kBase + 0x104, v);
  EXPECT_EQ(v, 0x11223344u);
  // 64-bit lane placement: the pair forms one big-endian doubleword.
  EXPECT_EQ(dev->backdoor_word64(0x100), 0xaabbccdd11223344ull);
}

TEST_F(AdapterFixture, ByteAndHalfLanes) {
  dev->backdoor_write_word64(0x200, 0x0011223344556677ull);
  u32 b = 0;
  bus::AhbTransfer t;
  t.addr = kBase + 0x203;
  t.beat_bytes = 1;
  t.data = &b;
  bus->transfer(bus::Master::kCpuData, t);
  EXPECT_EQ(b, 0x33u);

  u32 h = 0xbeef;
  bus::AhbTransfer wh;
  wh.addr = kBase + 0x206;
  wh.write = true;
  wh.beat_bytes = 2;
  wh.data = &h;
  bus->transfer(bus::Master::kCpuData, wh);
  EXPECT_EQ(dev->backdoor_word64(0x200), 0x001122334455beefull);
}

TEST_F(AdapterFixture, SingleReadStillFetchesFourWords) {
  u32 v = 0;
  bus->read32(bus::Master::kCpuData, kBase + 0x300, v);
  // One handshake carried 2x64-bit = 4x32-bit; one 64-bit word was wasted.
  EXPECT_EQ(adapter->stats().read_handshakes, 1u);
  EXPECT_EQ(ctrl->stats().words[0], 2u);
  EXPECT_EQ(adapter->stats().wasted_words64, 1u);
}

TEST_F(AdapterFixture, Incr4ReadBurstIsOneHandshake) {
  u32 buf[4] = {};
  bus::AhbTransfer t;
  t.addr = kBase + 0x400;
  t.beats = 4;
  t.burst = bus::HBurst::kIncr4;
  t.data = buf;
  bus->transfer(bus::Master::kCpuData, t);
  EXPECT_EQ(adapter->stats().read_handshakes, 1u);
  EXPECT_EQ(adapter->stats().wasted_words64, 0u);
}

TEST_F(AdapterFixture, EightWordBurstNeedsSecondHandshake) {
  u32 buf[8] = {};
  bus::AhbTransfer t;
  t.addr = kBase + 0x800;
  t.beats = 8;
  t.burst = bus::HBurst::kIncr8;
  t.data = buf;
  bus->transfer(bus::Master::kCpuData, t);
  // Paper: "Sequential bursts that require more than 4 32-bit words will
  // require at least one additional handshake."
  EXPECT_EQ(adapter->stats().read_handshakes, 2u);
}

TEST_F(AdapterFixture, WriteIsReadModifyWrite) {
  bus->write32(bus::Master::kCpuData, kBase + 0x500, 1);
  // Two handshakes per 32-bit store: one read, one write.
  EXPECT_EQ(adapter->stats().rmw_reads, 1u);
  EXPECT_EQ(adapter->stats().write_handshakes, 1u);
  EXPECT_EQ(ctrl->stats().total_handshakes(), 2u);
}

TEST_F(AdapterFixture, RmwPreservesNeighborWord) {
  dev->backdoor_write_word64(0x600, 0x1111111122222222ull);
  bus->write32(bus::Master::kCpuData, kBase + 0x604, 0x33333333);
  EXPECT_EQ(dev->backdoor_word64(0x600), 0x1111111133333333ull);
}

TEST_F(AdapterFixture, WritesCostMoreThanReads) {
  u32 v = 0;
  const Cycles r = bus->read32(bus::Master::kCpuData, kBase + 0x700, v);
  clock += 1000;  // let the controller drain
  const Cycles w = bus->write32(bus::Master::kCpuData, kBase + 0x700, 1);
  EXPECT_GT(w, r - 2);  // RMW's two handshakes vs one read handshake
}

TEST_F(AdapterFixture, CombiningAblationSkipsRead) {
  AdapterConfig cfg;
  cfg.rmw_writes = false;
  rebuild(cfg);
  u32 buf[2] = {0xaaaaaaaa, 0xbbbbbbbb};
  bus::AhbTransfer t;
  t.addr = kBase + 0x900;  // 8-aligned
  t.write = true;
  t.beats = 2;
  t.burst = bus::HBurst::kIncr;
  t.data = buf;
  bus->transfer(bus::Master::kCpuData, t);
  EXPECT_EQ(adapter->stats().rmw_reads, 0u);
  EXPECT_EQ(adapter->stats().write_handshakes, 1u);
  EXPECT_EQ(dev->backdoor_word64(0x900), 0xaaaaaaaabbbbbbbbull);
}

TEST_F(AdapterFixture, NoShortBurstAblation) {
  AdapterConfig cfg;
  cfg.always_short_burst = false;
  rebuild(cfg);
  u32 buf[4] = {};
  bus::AhbTransfer t;
  t.addr = kBase;
  t.beats = 4;
  t.burst = bus::HBurst::kIncr4;
  t.data = buf;
  bus->transfer(bus::Master::kCpuData, t);
  // One handshake per 64-bit word now.
  EXPECT_EQ(adapter->stats().read_handshakes, 2u);
}

TEST_F(AdapterFixture, OutOfRangeErrors) {
  u32 v = 0;
  bus::AhbTransfer t;
  t.addr = kBase + (1 << 20) - 2;
  t.data = &v;
  t.beat_bytes = 4;
  bus->transfer(bus::Master::kCpuData, t);
  EXPECT_TRUE(t.error);
}

TEST_F(AdapterFixture, DebugPortMatchesBusView) {
  bus->write32(bus::Master::kCpuData, kBase + 0xa00, 0x12345678);
  u64 v = 0;
  ASSERT_TRUE(adapter->debug_read(kBase + 0xa00, 4, v));
  EXPECT_EQ(v, 0x12345678ull);
  ASSERT_TRUE(adapter->debug_write(kBase + 0xa02, 2, 0xbeef));
  u32 back = 0;
  bus->read32(bus::Master::kCpuData, kBase + 0xa00, back);
  EXPECT_EQ(back, 0x1234beefu);
}

}  // namespace
}  // namespace la::mem
