// SDRAM device timing (open rows, banks) and the FPX controller
// (handshakes, burst splitting, port contention).
#include "mem/sdram.hpp"

#include <gtest/gtest.h>

namespace la::mem {
namespace {

TEST(SdramDevice, DataRoundTrip) {
  SdramDevice dev(1 << 20);
  u64 w = 0x0123456789abcdefull;
  dev.write_burst(0x100, {&w, 1});
  u64 r = 0;
  dev.read_burst(0x100, {&r, 1});
  EXPECT_EQ(r, w);
  EXPECT_EQ(dev.backdoor_word64(0x100), w);
}

TEST(SdramDevice, RowHitIsCheaperThanConflict) {
  SdramDevice dev(1 << 22);
  u64 v = 0;
  dev.read_burst(0x0, {&v, 1});  // opens row 0 of bank 0
  const Cycles hit = dev.read_burst(0x8, {&v, 1});
  // Same bank, different row: 4 banks x 4096B rows -> +16 KiB strides
  // stay in bank 0.
  const Cycles conflict = dev.read_burst(16384, {&v, 1});
  EXPECT_LT(hit, conflict);
  EXPECT_EQ(dev.stats().row_hits, 1u);
  EXPECT_EQ(dev.stats().row_conflicts, 1u);
}

TEST(SdramDevice, BanksHoldIndependentRows) {
  SdramDevice dev(1 << 22);
  u64 v = 0;
  dev.read_burst(0, {&v, 1});      // bank 0
  dev.read_burst(4096, {&v, 1});   // bank 1
  dev.read_burst(8192, {&v, 1});   // bank 2
  dev.read_burst(0, {&v, 1});      // bank 0 again: row still open
  EXPECT_EQ(dev.stats().row_hits, 1u);
  EXPECT_EQ(dev.stats().row_misses, 3u);
}

TEST(SdramDevice, BurstAmortizesSetup) {
  SdramDevice dev(1 << 20);
  u64 buf[8] = {};
  const Cycles burst8 = dev.read_burst(0x2000, buf);
  SdramDevice dev2(1 << 20);
  Cycles singles = 0;
  u64 v;
  for (int i = 0; i < 8; ++i) singles += dev2.read_burst(0x2000 + 8 * i, {&v, 1});
  EXPECT_LT(burst8, singles);
}

TEST(FpxController, HandshakePerTransfer) {
  SdramDevice dev(1 << 20);
  FpxSdramController ctrl(dev, /*max_burst_words=*/8);
  u64 buf[2] = {};
  ctrl.read(SdramPort::kLeon, 0, 0x0, buf);
  EXPECT_EQ(ctrl.stats().handshakes[0], 1u);
  EXPECT_EQ(ctrl.stats().words[0], 2u);
}

TEST(FpxController, LongBurstsSplit) {
  SdramDevice dev(1 << 20);
  FpxSdramController ctrl(dev, /*max_burst_words=*/4);
  u64 buf[10] = {};
  ctrl.read(SdramPort::kLeon, 0, 0x0, buf);
  EXPECT_EQ(ctrl.stats().handshakes[0], 3u);  // 4 + 4 + 2
  EXPECT_EQ(ctrl.stats().words[0], 10u);
}

TEST(FpxController, WriteThenReadBack) {
  SdramDevice dev(1 << 20);
  FpxSdramController ctrl(dev);
  const u64 w[3] = {1, 2, 3};
  ctrl.write(SdramPort::kNetwork, 0, 0x40, w);
  u64 r[3] = {};
  ctrl.read(SdramPort::kLeon, 100, 0x40, r);
  EXPECT_EQ(r[0], 1u);
  EXPECT_EQ(r[2], 3u);
  EXPECT_EQ(ctrl.stats().handshakes[static_cast<int>(SdramPort::kNetwork)],
            1u);
}

TEST(FpxController, PortContentionCharged) {
  SdramDevice dev(1 << 20);
  FpxSdramController ctrl(dev);
  u64 buf[8] = {};
  // First transfer at t=0 occupies the controller for `c0` cycles.
  const Cycles c0 = ctrl.read(SdramPort::kNetwork, 0, 0x0, buf);
  // Second transfer issued at t=1 while the first still drains: it pays
  // the remaining busy time on top of its own cost.
  u64 one = 0;
  const Cycles c1 = ctrl.read(SdramPort::kLeon, 1, 0x0, {&one, 1});
  SdramDevice dev2(1 << 20);
  FpxSdramController ctrl2(dev2);
  u64 one2 = 0;
  const Cycles uncontended = ctrl2.read(SdramPort::kLeon, 0, 0x0, {&one2, 1});
  EXPECT_GT(c1, uncontended);
  EXPECT_EQ(ctrl.stats().wait_cycles, c0 - 1);  // waited out the remainder
  (void)c1;
}

TEST(FpxController, NoContentionAfterDrain) {
  SdramDevice dev(1 << 20);
  FpxSdramController ctrl(dev);
  u64 v = 0;
  const Cycles c0 = ctrl.read(SdramPort::kLeon, 0, 0x0, {&v, 1});
  // Issued long after the first completed: no waiting.
  ctrl.read(SdramPort::kLeon, c0 + 100, 0x8, {&v, 1});
  EXPECT_EQ(ctrl.stats().wait_cycles, 0u);
}

}  // namespace
}  // namespace la::mem
