// Boot ROM contents/protection and the Fig 6 disconnect circuitry.
#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "mem/boot_rom.hpp"
#include "mem/disconnect.hpp"
#include "mem/memory_map.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"

namespace la::mem {
namespace {

TEST(BootRom, ModifiedBootAssembles) {
  const auto img = sasm::assemble_or_throw(
      modified_boot_source(map::kRomBase, map::kProgAddrMailbox));
  EXPECT_EQ(img.base, map::kRomBase);
  EXPECT_EQ(img.symbol("check_ready"), map::kRomBase + kCheckReadyOffset);
  EXPECT_LE(img.data.size(), map::kRomSize);
}

TEST(BootRom, OriginalBootAssembles) {
  const auto img = sasm::assemble_or_throw(original_boot_source(
      map::kRomBase, map::kApbBase + map::kUartOffset + 4));
  EXPECT_GT(img.data.size(), 0u);
  EXPECT_NE(img.symbols.find("load_wait"), img.symbols.end());
}

TEST(BootRom, ReadOnly) {
  const auto img = sasm::assemble_or_throw(
      modified_boot_source(0, map::kProgAddrMailbox));
  BootRom rom(0, map::kRomSize, img.data);
  bus::AhbBus bus;
  bus.attach(0, map::kRomSize, &rom);

  u32 v = 0;
  bus.read32(bus::Master::kCpuInstr, 0, v);
  EXPECT_EQ(v, img.word_at(0));

  bus::AhbTransfer t;
  u32 w = 0xdead;
  t.addr = 0;
  t.write = true;
  t.data = &w;
  bus.transfer(bus::Master::kCpuData, t);
  EXPECT_TRUE(t.error);
  u32 v2 = 0;
  bus.read32(bus::Master::kCpuInstr, 0, v2);
  EXPECT_EQ(v2, v);  // unchanged
}

TEST(Disconnect, ConnectedPassesThrough) {
  Sram sram(0x40000000, 4096);
  DisconnectSwitch sw(sram);
  bus::AhbBus bus;
  bus.attach(0x40000000, 4096, &sw);

  bus.write32(bus::Master::kCpuData, 0x40000010, 0x1234);
  u32 v = 0;
  bus.read32(bus::Master::kCpuData, 0x40000010, v);
  EXPECT_EQ(v, 0x1234u);
}

TEST(Disconnect, DisconnectedDrivesZeros) {
  Sram sram(0x40000000, 4096);
  sram.backdoor_write_word(0x40000010, 0xfeedface);
  DisconnectSwitch sw(sram);
  bus::AhbBus bus;
  bus.attach(0x40000000, 4096, &sw);

  sw.set_connected(false);
  u32 v = 1;
  bus.read32(bus::Master::kCpuData, 0x40000010, v);
  EXPECT_EQ(v, 0u);  // zeros driven on the data bus
  EXPECT_EQ(sw.stats().blocked_reads, 1u);

  bus.write32(bus::Master::kCpuData, 0x40000010, 0xbad);
  EXPECT_EQ(sw.stats().blocked_writes, 1u);

  sw.set_connected(true);
  bus.read32(bus::Master::kCpuData, 0x40000010, v);
  EXPECT_EQ(v, 0xfeedfaceu);  // memory itself untouched
}

TEST(Disconnect, UserPortWorksWhileCpuDisconnected) {
  Sram sram(0x40000000, 4096);
  DisconnectSwitch sw(sram);
  sw.set_connected(false);
  // The user path (leon_ctrl) loads a program regardless of the switch.
  const u8 prog[4] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(sw.user_port().backdoor_write(0x40000100, prog));
  EXPECT_EQ(sw.user_port().backdoor_word(0x40000100), 0xdeadbeefu);
}

TEST(Disconnect, TimingMatchesConnectedSram) {
  Sram sram(0, 4096);
  DisconnectSwitch sw(sram);
  bus::AhbBus bus;
  bus.attach(0, 4096, &sw);
  u32 v;
  const Cycles connected = bus.read32(bus::Master::kCpuData, 0, v);
  sw.set_connected(false);
  const Cycles disconnected = bus.read32(bus::Master::kCpuData, 0, v);
  EXPECT_EQ(connected, disconnected);  // the CPU can't tell from timing
}

}  // namespace
}  // namespace la::mem
