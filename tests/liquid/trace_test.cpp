// Trace analyzer: profiles from real pipeline runs and the configuration
// recommendations they produce.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "liquid/trace.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::liquid {
namespace {

/// Walk `bytes` of data with the given byte stride, then return.
std::string walker(u32 bytes, u32 stride) {
  std::string s = R"(
      .org 0x40000100
  _start:
      set data, %o0
      set )" + std::to_string(bytes) + R"(, %o5
      mov 0, %o1
  loop:
      ld [%o0 + %o1], %o2
      add %o1, )" + std::to_string(stride) + R"(, %o1
      cmp %o1, %o5
      bl loop
      nop
      jmp 0x40
      nop
      .align 32
  data:
      .skip )" + std::to_string(bytes) + "\n";
  return s;
}

TraceReport run_traced(const std::string& src, TraceAnalyzer& an) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);
  const auto img = sasm::assemble_or_throw(src);
  an.set_focus(0x40000000, 0x4fffffff);  // the application, not the boot ROM
  sys.cpu().set_observer(&an);
  const bool ok = static_cast<bool>(client.run_program(img));
  sys.cpu().set_observer(nullptr);
  EXPECT_TRUE(ok);
  return an.report();
}

TEST(Trace, CountsInstructionsAndMemoryOps) {
  TraceAnalyzer an;
  const TraceReport t = run_traced(walker(256, 4), an);
  EXPECT_GT(t.instructions, 300u);  // 64 iterations x 5 + overhead
  EXPECT_GE(t.loads, 64u);
  EXPECT_GT(t.code_footprint_bytes, 0u);
}

TEST(Trace, WorkingSetTracksFootprint) {
  TraceAnalyzer small, large;
  const TraceReport ts = run_traced(walker(256, 4), small);
  const TraceReport tl = run_traced(walker(4096, 4), large);
  // 32-byte granularity: 256B -> 256B, 4KB -> 4KB (plus the odd extra
  // line from boot-loop mailbox polling).
  EXPECT_NEAR(static_cast<double>(ts.data_working_set_bytes), 256.0, 96.0);
  EXPECT_NEAR(static_cast<double>(tl.data_working_set_bytes), 4096.0, 96.0);
}

TEST(Trace, DominantStrideDetected) {
  TraceAnalyzer an;
  const TraceReport t = run_traced(walker(2048, 128), an);
  EXPECT_EQ(t.dominant_stride, 128);
}

TEST(Trace, HotPcsAreTheLoop) {
  TraceAnalyzer an;
  const TraceReport t = run_traced(walker(1024, 4), an);
  ASSERT_FALSE(t.hot_pcs.empty());
  // The hottest PCs must be user-code addresses (the loop), not boot ROM.
  EXPECT_GE(t.hot_pcs[0].first, 0x40000100u);
  EXPECT_GT(t.hot_pcs[0].second, 200u);
}

TEST(Trace, RecommendsCacheCoveringWorkingSet) {
  const ConfigSpace space;  // 1..16 KB
  TraceAnalyzer an;
  run_traced(walker(4096, 32), an);
  const ArchConfig rec = an.recommend(space);
  // 4 KB walked with 32B stride -> working set 4 KB: need >= 4 KB, and 8
  // KB wins over 16 KB on area.  (4 KB itself is exactly at the working
  // set; the analyzer may pick 4 or 8 KB depending on mailbox noise.)
  EXPECT_GE(rec.dcache_bytes, 4096u);
  EXPECT_LE(rec.dcache_bytes, 8192u);
}

TEST(Trace, SmallFootprintKeepsSmallCache) {
  const ConfigSpace space;
  TraceAnalyzer an;
  run_traced(walker(256, 4), an);
  EXPECT_EQ(an.recommend(space).dcache_bytes, 1024u);
}

TEST(Trace, ResetClearsEverything) {
  TraceAnalyzer an;
  run_traced(walker(256, 4), an);
  EXPECT_GT(an.report().instructions, 0u);
  an.reset();
  const TraceReport t = an.report();
  EXPECT_EQ(t.instructions, 0u);
  EXPECT_EQ(t.data_working_set_bytes, 0u);
  EXPECT_TRUE(t.hot_pcs.empty());
}

TEST(Trace, HotPcRankingIsDeterministicOnCountTies) {
  // Regression: equal execution counts used to rank in std::sort's
  // unspecified order, so reports and top-N truncation could differ
  // between runs/platforms.  Ties now break on the address.
  TraceAnalyzer an;
  an.set_focus(0x40000000, 0x4fffffff);
  const Addr pcs[] = {0x40000110, 0x40000104, 0x4000010c, 0x40000100};
  for (const Addr pc : pcs) {
    net::TraceRecord r;
    r.pc = pc;
    an.ingest(r);  // every pc exactly once: a four-way tie
  }
  net::TraceRecord hot;
  hot.pc = 0x40000108;
  an.ingest(hot);
  an.ingest(hot);  // twice: the unambiguous winner

  const TraceReport t = an.report();
  ASSERT_EQ(t.hot_pcs.size(), 5u);
  EXPECT_EQ(t.hot_pcs[0].first, 0x40000108u);
  EXPECT_EQ(t.hot_pcs[0].second, 2u);
  for (std::size_t i = 2; i < t.hot_pcs.size(); ++i) {
    EXPECT_LT(t.hot_pcs[i - 1].first, t.hot_pcs[i].first);
  }
  // Truncation keeps the lowest-addressed of the tied tail.
  const TraceReport top3 = an.report(3);
  ASSERT_EQ(top3.hot_pcs.size(), 3u);
  EXPECT_EQ(top3.hot_pcs[1].first, 0x40000100u);
  EXPECT_EQ(top3.hot_pcs[2].first, 0x40000104u);
}

}  // namespace
}  // namespace la::liquid
