#include "liquid/arch_config.hpp"

#include <gtest/gtest.h>

#include <set>

namespace la::liquid {
namespace {

TEST(ArchConfig, BaselineIsValid) {
  const ArchConfig c = ArchConfig::paper_baseline();
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.icache_bytes, 1024u);
  EXPECT_EQ(c.dcache_bytes, 1024u);
  EXPECT_EQ(c.dcache_ways, 1u);  // LEON2: direct-mapped
}

TEST(ArchConfig, InvalidGeometriesRejected) {
  ArchConfig c;
  c.dcache_bytes = 1000;  // not a power of two
  EXPECT_FALSE(c.valid());
  c = ArchConfig{};
  c.dcache_line = 4;  // < 8: LDD would straddle lines
  EXPECT_FALSE(c.valid());
  c = ArchConfig{};
  c.mul_latency = 3;  // LEON offers 1/2/4/5 only
  EXPECT_FALSE(c.valid());
  c = ArchConfig{};
  c.nwindows = 1;
  EXPECT_FALSE(c.valid());
}

TEST(ArchConfig, KeysAreUniquePerPoint) {
  ConfigSpace space;
  space.dcache_sizes = {1024, 2048, 4096};
  space.icache_sizes = {1024, 2048};
  space.line_sizes = {16, 32};
  space.way_counts = {1, 2};
  std::set<std::string> keys;
  for (const auto& c : space.enumerate()) keys.insert(c.key());
  EXPECT_EQ(keys.size(), space.enumerate().size());
}

TEST(ArchConfig, KeyReflectsEveryAxis) {
  ArchConfig a, b;
  b.dcache_bytes = 4096;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.write_policy = cache::WritePolicy::kWriteBackAllocate;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.has_mul = false;
  EXPECT_NE(a.key(), b.key());
  b = a;
  b.nwindows = 4;
  EXPECT_NE(a.key(), b.key());
}

TEST(ArchConfig, LoweringPreservesParameters) {
  ArchConfig c;
  c.dcache_bytes = 8192;
  c.dcache_ways = 2;
  c.mul_latency = 2;
  c.nwindows = 16;
  const cpu::PipelineConfig p = c.to_pipeline();
  EXPECT_EQ(p.dcache.size_bytes, 8192u);
  EXPECT_EQ(p.dcache.ways, 2u);
  EXPECT_EQ(p.cpu.mul_latency, 2u);
  EXPECT_EQ(p.cpu.nwindows, 16u);
  EXPECT_TRUE(p.dcache.valid());
}

TEST(ConfigSpace, DefaultMatchesPaperSweep) {
  const ConfigSpace space;
  const auto pts = space.enumerate();
  ASSERT_EQ(pts.size(), 5u);  // 1/2/4/8/16 KB data caches
  for (const auto& p : pts) {
    EXPECT_EQ(p.icache_bytes, 1024u);
    EXPECT_EQ(p.dcache_line, 32u);
  }
  EXPECT_EQ(pts.front().dcache_bytes, 1024u);
  EXPECT_EQ(pts.back().dcache_bytes, 16384u);
}

TEST(ConfigSpace, SkipsInvalidCombinations) {
  ConfigSpace space;
  space.dcache_sizes = {32};  // smaller than a 32B x 2-way set
  space.way_counts = {2};
  EXPECT_TRUE(space.enumerate().empty());
}

}  // namespace
}  // namespace la::liquid
