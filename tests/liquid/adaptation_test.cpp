// The reconfiguration server and the closed adaptation loop of Fig 1:
// run -> analyze -> pick a pre-generated image -> reconfigure -> faster.
#include <gtest/gtest.h>

#include "liquid/adaptation.hpp"
#include "sasm/assembler.hpp"

namespace la::liquid {
namespace {

/// The Fig 7 kernel with a 4 KB working set (128 B stride over 4 KB), a
/// result word, and the return jump.
std::string fig7_program(u32 bound) {
  return R"(
      .org 0x40000100
  _start:
      set count, %o0
      mov 0, %o1
      set )" + std::to_string(bound) + R"(, %o2
  loop:
      and %o1, 1023, %o3
      sll %o3, 2, %o3
      ld [%o0 + %o3], %o4
      add %o1, 32, %o1
      cmp %o1, %o2
      bl loop
      nop
      set result, %o5
      st %o4, [%o5]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
      .align 32
  count:
      .skip 4096
  )";
}

struct ServerFixture : ::testing::Test {
  ServerFixture() : cache(0), server(node, cache, syn) { node.run(100); }

  sim::LiquidSystem node;
  SynthesisModel syn;
  ReconfigurationCache cache;
  ReconfigurationServer server;
};

TEST_F(ServerFixture, JobRunsAndReadsBack) {
  const auto img = sasm::assemble_or_throw(fig7_program(8000));
  const JobResult r =
      server.run_job(ArchConfig::paper_baseline(), img,
                     img.symbol("result"), 1);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.cycles, 1000u);
  ASSERT_EQ(r.readback.size(), 1u);
  EXPECT_FALSE(r.reconfigured);  // baseline is already loaded
}

TEST_F(ServerFixture, ReconfigurationHappensOnConfigChange) {
  const auto img = sasm::assemble_or_throw(fig7_program(8000));
  ArchConfig big;
  big.dcache_bytes = 4096;
  const JobResult r = server.run_job(big, img, img.symbol("result"), 1);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.reconfigured);
  EXPECT_GT(r.reprogram_seconds, 0.0);
  EXPECT_GT(r.synthesis_seconds, 0.0);  // cold cache: paid the hour
  EXPECT_EQ(server.current().dcache_bytes, 4096u);
  EXPECT_EQ(node.cpu().dcache().config().size_bytes, 4096u);

  // Same config again: no reconfiguration, no synthesis.
  const JobResult r2 = server.run_job(big, img, img.symbol("result"), 1);
  ASSERT_TRUE(r2.ok);
  EXPECT_FALSE(r2.reconfigured);
  EXPECT_TRUE(r2.bitfile_cache_hit);
  EXPECT_DOUBLE_EQ(r2.synthesis_seconds, 0.0);
}

TEST_F(ServerFixture, BiggerCacheIsMeasurablyFaster) {
  // The paper's core claim, measured through the full remote flow.
  const auto img = sasm::assemble_or_throw(fig7_program(32000));
  const JobResult small =
      server.run_job(ArchConfig::paper_baseline(), img,
                     img.symbol("result"), 1);
  ArchConfig big;
  big.dcache_bytes = 4096;
  const JobResult large = server.run_job(big, img, img.symbol("result"), 1);
  ASSERT_TRUE(small.ok && large.ok);
  EXPECT_GT(small.cycles, large.cycles * 5 / 4);  // >= 25% faster
}

TEST_F(ServerFixture, UnmappableConfigFailsCleanly) {
  const auto img = sasm::assemble_or_throw(fig7_program(1000));
  ArchConfig huge;
  huge.dcache_bytes = 512 * 1024;
  const JobResult r = server.run_job(huge, img, 0, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("fit"), std::string::npos);
  EXPECT_GT(r.synthesis_seconds, 0.0);  // still burned the tools time
}

TEST_F(ServerFixture, WallClockDominatedBySynthesisOnMiss) {
  const auto img = sasm::assemble_or_throw(fig7_program(1000));
  ArchConfig cfgd;
  cfgd.dcache_bytes = 2048;
  const JobResult miss = server.run_job(cfgd, img, 0, 0);
  ASSERT_TRUE(miss.ok);
  EXPECT_GT(miss.wall_seconds(), 3000.0);  // the synthesis hour

  ArchConfig back = ArchConfig::paper_baseline();
  server.run_job(back, img, 0, 0);       // flip away (baseline cached? no:
                                         // first use -> synthesis)
  const JobResult hit = server.run_job(cfgd, img, 0, 0);
  ASSERT_TRUE(hit.ok);
  EXPECT_LT(hit.wall_seconds(), 10.0);   // reprogram + run only
}

TEST_F(ServerFixture, WallClockRunsAtTheConfigsOwnFrequency) {
  // A 16 KB D-cache closes timing at 28 MHz, not the baseline's 30 — the
  // latency accounting must charge cycles at the image's own clock.
  const auto img = sasm::assemble_or_throw(fig7_program(1000));
  const JobResult base =
      server.run_job(ArchConfig::paper_baseline(), img, 0, 0);
  ASSERT_TRUE(base.ok) << base.error;
  EXPECT_DOUBLE_EQ(base.clock_mhz, 30.0);

  ArchConfig big;
  big.dcache_bytes = 16384;
  const JobResult slow = server.run_job(big, img, 0, 0);
  ASSERT_TRUE(slow.ok) << slow.error;
  EXPECT_NEAR(slow.clock_mhz, 28.0, 1e-9);
  EXPECT_NEAR(slow.wall_seconds() - slow.synthesis_seconds -
                  slow.reprogram_seconds,
              static_cast<double>(slow.cycles) / 28e6, 1e-12);
}

TEST_F(ServerFixture, AdaptationConvergesToCoveringCache) {
  cache.pregenerate(ConfigSpace{}, syn);  // offline pre-generation pass
  AdaptationEngine engine(server, ConfigSpace{});
  const auto img = sasm::assemble_or_throw(fig7_program(32000));
  const AdaptationOutcome out =
      engine.adapt(img, img.symbol("result"), 1, 4);

  ASSERT_GE(out.steps.size(), 2u);
  EXPECT_EQ(out.steps.front().config.dcache_bytes, 1024u);
  EXPECT_GE(out.steps.back().config.dcache_bytes, 4096u);
  EXPECT_GT(out.speedup(), 1.2);
  // All images came from the warm reconfiguration cache: no synthesis.
  for (std::size_t i = 1; i < out.steps.size(); ++i) {
    EXPECT_TRUE(out.steps[i].cache_hit);
    EXPECT_LT(out.steps[i].overhead_seconds, 10.0);
  }
  // The kernel touches only ~1 KB of distinct lines (32 lines, 128 B
  // apart) — the 4 KB need comes from conflicts, which is exactly what
  // the analyzer's conflict-pressure metric captures.
  EXPECT_NEAR(
      static_cast<double>(out.steps.front().trace.data_working_set_bytes),
      1024.0, 160.0);
}

TEST_F(ServerFixture, AdaptationViaStreamedTracesConvergesIdentically) {
  cache.pregenerate(ConfigSpace{}, syn);
  ServerConfig scfg;
  scfg.stream_traces = true;  // the paper's Fig 2 path: traces over UDP
  ReconfigurationServer streaming_server(node, cache, syn, scfg);
  AdaptationEngine engine(streaming_server, ConfigSpace{});
  const auto img = sasm::assemble_or_throw(fig7_program(32000));
  const AdaptationOutcome out =
      engine.adapt(img, img.symbol("result"), 1, 4);
  ASSERT_GE(out.steps.size(), 2u);
  EXPECT_GE(out.steps.back().config.dcache_bytes, 4096u);
  EXPECT_GT(out.speedup(), 1.2);
  EXPECT_GT(out.steps.front().trace.instructions, 1000u);
}

TEST_F(ServerFixture, AdaptationStopsWhenStable) {
  cache.pregenerate(ConfigSpace{}, syn);
  AdaptationEngine engine(server, ConfigSpace{});
  // Tiny working set: the baseline already covers it; one round suffices.
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set data, %o0
      mov 100, %o1
  loop:
      ld [%o0], %o2
      subcc %o1, 1, %o1
      bne loop
      nop
      jmp 0x40
      nop
      .align 32
  data: .skip 64
  )");
  const AdaptationOutcome out = engine.adapt(img, 0, 0, 4);
  EXPECT_EQ(out.steps.size(), 1u);  // converged immediately
  EXPECT_EQ(out.steps[0].config.dcache_bytes, 1024u);
}

}  // namespace
}  // namespace la::liquid
