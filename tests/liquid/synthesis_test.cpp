// The synthesis model must reproduce Fig 10 for the shipped configuration
// and expose sane trends across the space.
#include "liquid/synthesis.hpp"

#include <gtest/gtest.h>

namespace la::liquid {
namespace {

TEST(Synthesis, Fig10BaselineUtilization) {
  const SynthesisModel syn;
  const Utilization u = syn.estimate(ArchConfig::paper_baseline());
  // Paper: 7900 of 19200 slices (41%), 54% of BlockRAMs, 309 IOBs, 30 MHz.
  EXPECT_EQ(u.slices, 7900u);
  EXPECT_NEAR(u.slice_pct(syn.device()), 41.0, 0.2);
  EXPECT_NEAR(u.bram_pct(syn.device()), 54.0, 0.5);
  EXPECT_EQ(u.iobs, 309u);
  EXPECT_DOUBLE_EQ(u.fmax_mhz, 30.0);
  EXPECT_TRUE(u.fits);
}

TEST(Synthesis, BreakdownSumsToTotals) {
  const SynthesisModel syn;
  ArchConfig c;
  c.dcache_bytes = 8192;
  c.dcache_ways = 2;
  const Utilization u = syn.estimate(c);
  u32 slices = 0, brams = 0;
  for (const auto& comp : u.breakdown) {
    slices += comp.slices;
    brams += comp.brams;
  }
  EXPECT_EQ(slices, u.slices);
  EXPECT_EQ(brams, u.brams);
}

TEST(Synthesis, BiggerCachesUseMoreBrams) {
  const SynthesisModel syn;
  ArchConfig small, big;
  big.dcache_bytes = 16384;
  const auto us = syn.estimate(small);
  const auto ub = syn.estimate(big);
  EXPECT_GT(ub.brams, us.brams);
  // 16 KB of data = 32 BlockRAMs vs 2 for 1 KB: the BRAM budget is the
  // pressure point that motivates right-sizing caches.
  EXPECT_GE(ub.brams - us.brams, 30u);
}

TEST(Synthesis, BigCachesClockSlower) {
  const SynthesisModel syn;
  ArchConfig small, big;
  big.dcache_bytes = 16384;
  EXPECT_LT(syn.estimate(big).fmax_mhz, syn.estimate(small).fmax_mhz + 0.01);
  ArchConfig assoc = small;
  assoc.dcache_ways = 4;
  assoc.dcache_bytes = 4096;
  EXPECT_LE(syn.estimate(assoc).fmax_mhz, 30.0);
}

TEST(Synthesis, FastMultiplierCostsSlicesAndFrequency) {
  const SynthesisModel syn;
  ArchConfig iterative, single;
  iterative.mul_latency = 5;
  single.mul_latency = 1;
  const auto ui = syn.estimate(iterative);
  const auto u1 = syn.estimate(single);
  EXPECT_GT(u1.slices, ui.slices);
  EXPECT_LT(u1.fmax_mhz, ui.fmax_mhz);
}

TEST(Synthesis, OvermappedDesignDoesNotFit) {
  const SynthesisModel syn;
  ArchConfig huge;
  huge.dcache_bytes = 512 * 1024;  // 512 KB: 1024+ BRAMs >> 160
  huge.icache_bytes = 64 * 1024;
  ASSERT_TRUE(huge.valid());
  const auto u = syn.estimate(huge);
  EXPECT_FALSE(u.fits);
  EXPECT_GT(u.brams, syn.device().brams);
}

TEST(Synthesis, SynthesisTakesAboutAnHour) {
  const SynthesisModel syn;
  const double s = syn.synthesis_seconds(ArchConfig::paper_baseline());
  EXPECT_GT(s, 3000.0);  // "~1 hour to synthesize"
  EXPECT_LT(s, 5400.0);
  // Bigger designs take longer.
  ArchConfig big;
  big.dcache_bytes = 16384;
  EXPECT_GT(syn.synthesis_seconds(big), s);
}

TEST(Synthesis, FormatContainsFig10Rows) {
  const SynthesisModel syn;
  const std::string table = format_utilization(
      syn.estimate(ArchConfig::paper_baseline()), syn.device());
  EXPECT_NE(table.find("Logic Slices"), std::string::npos);
  EXPECT_NE(table.find("7900 of 19200"), std::string::npos);
  EXPECT_NE(table.find("BlockRAMs"), std::string::npos);
  EXPECT_NE(table.find("309"), std::string::npos);
  EXPECT_NE(table.find("30 MHz"), std::string::npos);
}

TEST(Synthesis, BitstreamSizeIsDeviceConstant) {
  const SynthesisModel syn;
  EXPECT_EQ(syn.bitstream_bytes(), 1271512u);
}

TEST(Synthesis, NoMulNoDivSavesArea) {
  const SynthesisModel syn;
  ArchConfig lean;
  lean.has_mul = false;
  lean.has_div = false;
  EXPECT_LT(syn.estimate(lean).slices,
            syn.estimate(ArchConfig::paper_baseline()).slices);
}

}  // namespace
}  // namespace la::liquid
