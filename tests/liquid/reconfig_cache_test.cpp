#include "liquid/reconfig_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace la::liquid {
namespace {

ArchConfig with_dcache(u32 bytes) {
  ArchConfig c;
  c.dcache_bytes = bytes;
  return c;
}

TEST(ReconfigCache, MissSynthesizesThenHits) {
  SynthesisModel syn;
  ReconfigurationCache cache;
  const ArchConfig c = with_dcache(4096);

  const auto first = cache.get_or_synthesize(c, syn);
  ASSERT_TRUE(first.bitfile.has_value());
  EXPECT_FALSE(first.hit);
  EXPECT_GT(first.seconds, 3000.0);  // paid the hour

  const auto second = cache.get_or_synthesize(c, syn);
  ASSERT_TRUE(second.bitfile.has_value());
  EXPECT_TRUE(second.hit);
  EXPECT_DOUBLE_EQ(second.seconds, 0.0);  // "switch between pre-generated"
  EXPECT_EQ(second.bitfile->id, first.bitfile->id);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ReconfigCache, BitfileCarriesUtilization) {
  SynthesisModel syn;
  ReconfigurationCache cache;
  const auto r =
      cache.get_or_synthesize(ArchConfig::paper_baseline(), syn);
  ASSERT_TRUE(r.bitfile.has_value());
  EXPECT_EQ(r.bitfile->utilization.slices, 7900u);
  EXPECT_EQ(r.bitfile->size_bytes, syn.bitstream_bytes());
  EXPECT_EQ(r.bitfile->key, ArchConfig::paper_baseline().key());
}

TEST(ReconfigCache, LruEvictionAtCapacity) {
  SynthesisModel syn;
  ReconfigurationCache cache(2);
  cache.get_or_synthesize(with_dcache(1024), syn);
  cache.get_or_synthesize(with_dcache(2048), syn);
  // Touch 1024 so 2048 becomes LRU.
  cache.get_or_synthesize(with_dcache(1024), syn);
  cache.get_or_synthesize(with_dcache(4096), syn);  // evicts 2048
  EXPECT_TRUE(cache.contains(with_dcache(1024)));
  EXPECT_FALSE(cache.contains(with_dcache(2048)));
  EXPECT_TRUE(cache.contains(with_dcache(4096)));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The evicted point costs a fresh synthesis again.
  const auto again = cache.get_or_synthesize(with_dcache(2048), syn);
  EXPECT_FALSE(again.hit);
}

TEST(ReconfigCache, UnmappableConfigFailsButCharges) {
  SynthesisModel syn;
  ReconfigurationCache cache;
  ArchConfig huge;
  huge.dcache_bytes = 512 * 1024;
  const auto r = cache.get_or_synthesize(huge, syn);
  EXPECT_FALSE(r.bitfile.has_value());
  EXPECT_GT(r.seconds, 0.0);  // the tools run before they tell you no
  EXPECT_EQ(cache.stats().failed_synth, 1u);
  EXPECT_FALSE(cache.contains(huge));
}

TEST(ReconfigCache, ConcurrentLookupsSynthesizeEachPointOnce) {
  // The farm shares one cache across every node: hammer it from several
  // threads and check no configuration is synthesized twice and no caller
  // ever sees a half-built bitfile.  (Run under TSan in CI.)
  SynthesisModel syn;
  ReconfigurationCache cache;  // unlimited: no eviction churn here
  const u32 sizes[] = {1024, 2048, 4096, 8192};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &syn, &sizes, t] {
      for (int i = 0; i < 16; ++i) {
        const auto r =
            cache.get_or_synthesize(with_dcache(sizes[(t + i) % 4]), syn);
        ASSERT_TRUE(r.bitfile.has_value());
        EXPECT_EQ(r.bitfile->size_bytes, syn.bitstream_bytes());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().misses, 4u);  // one synthesis hour per point
  EXPECT_EQ(cache.stats().hits, 4u * 16u - 4u);
}

TEST(ReconfigCache, PregenerateCoversSpace) {
  SynthesisModel syn;
  ReconfigurationCache cache;
  const ConfigSpace space;  // the paper's 5-point D-cache sweep
  const double total = cache.pregenerate(space, syn);
  EXPECT_EQ(cache.size(), 5u);
  // Five ~1 hour runs.
  EXPECT_GT(total, 5 * 3000.0);
  EXPECT_LT(total, 5 * 5400.0);
  // Now every point is a hit.
  for (const auto& c : space.enumerate()) {
    EXPECT_TRUE(cache.get_or_synthesize(c, syn).hit);
  }
  // Re-pregenerating costs nothing.
  EXPECT_DOUBLE_EQ(cache.pregenerate(space, syn), 0.0);
}

}  // namespace
}  // namespace la::liquid
