// Property sweeps over the synthesis model: resources and frequency must
// behave monotonically along each configuration axis, and the breakdown
// must always reconcile — trends are the model's whole purpose.
#include <gtest/gtest.h>

#include "liquid/synthesis.hpp"

namespace la::liquid {
namespace {

class SynthesisSweep : public ::testing::TestWithParam<u32> {};

TEST_P(SynthesisSweep, MoreDcacheNeverFewerBrams) {
  const SynthesisModel syn;
  ArchConfig smaller, larger;
  smaller.dcache_bytes = GetParam();
  larger.dcache_bytes = GetParam() * 2;
  ASSERT_TRUE(smaller.valid() && larger.valid());
  EXPECT_LE(syn.estimate(smaller).brams, syn.estimate(larger).brams);
  EXPECT_LE(syn.estimate(larger).fmax_mhz,
            syn.estimate(smaller).fmax_mhz + 1e-9);
  EXPECT_LE(syn.synthesis_seconds(smaller),
            syn.synthesis_seconds(larger) + 1e-9);
}

TEST_P(SynthesisSweep, BreakdownAlwaysReconciles) {
  const SynthesisModel syn;
  for (const u32 ways : {1u, 2u, 4u}) {
    for (const u32 line : {16u, 32u, 64u}) {
      ArchConfig c;
      c.dcache_bytes = GetParam();
      c.dcache_line = c.icache_line = line;
      c.dcache_ways = ways;
      if (!c.valid()) continue;
      const Utilization u = syn.estimate(c);
      u32 slices = 0, brams = 0;
      for (const auto& comp : u.breakdown) {
        slices += comp.slices;
        brams += comp.brams;
      }
      EXPECT_EQ(slices, u.slices);
      EXPECT_EQ(brams, u.brams);
      EXPECT_GT(u.fmax_mhz, 0.0);
      EXPECT_EQ(u.iobs, 309u);  // board pinout is config-independent
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SynthesisSweep,
                         ::testing::Values(1024u, 2048u, 4096u, 8192u,
                                           16384u, 32768u));

TEST(SynthesisProps, MoreWindowsMoreRegfileBrams) {
  const SynthesisModel syn;
  ArchConfig few, many;
  few.nwindows = 4;
  many.nwindows = 32;
  EXPECT_LT(syn.estimate(few).brams, syn.estimate(many).brams);
}

TEST(SynthesisProps, FitsFlagConsistentWithDevice) {
  const SynthesisModel syn;
  for (u32 kb = 1; kb <= 512; kb *= 2) {
    ArchConfig c;
    c.dcache_bytes = kb * 1024;
    if (!c.valid()) continue;
    const Utilization u = syn.estimate(c);
    EXPECT_EQ(u.fits, u.slices <= syn.device().slices &&
                          u.brams <= syn.device().brams &&
                          u.iobs <= syn.device().iobs)
        << kb << "KB";
  }
}

}  // namespace
}  // namespace la::liquid
