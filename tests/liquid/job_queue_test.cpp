// Batch scheduling on the reconfiguration server: grouping saves
// reprogramming time, FIFO preserves order, failures are contained.
#include <gtest/gtest.h>

#include "liquid/job_queue.hpp"
#include "sasm/assembler.hpp"

namespace la::liquid {
namespace {

sasm::Image tiny_program(u32 value) {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set )" + std::to_string(value) + R"(, %g1
      set result, %g2
      st %g1, [%g2]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )");
}

ArchConfig with_dcache(u32 bytes) {
  ArchConfig c;
  c.dcache_bytes = bytes;
  return c;
}

struct QueueFixture : ::testing::Test {
  QueueFixture() : server(node, cache, syn), queue(server) {
    node.run(100);
    cache.pregenerate(ConfigSpace{}, syn);  // warm: isolate scheduling
  }

  Job make_job(const std::string& owner, u32 dcache, u32 value) {
    Job j;
    j.owner = owner;
    j.config = with_dcache(dcache);
    j.program = tiny_program(value);
    j.result_addr = j.program.symbol("result");
    j.result_words = 1;
    return j;
  }

  sim::LiquidSystem node;
  SynthesisModel syn;
  ReconfigurationCache cache{0};
  ReconfigurationServer server;
  JobQueue queue;
};

TEST_F(QueueFixture, FifoRunsInSubmissionOrder) {
  queue.submit(make_job("alice", 1024, 11));
  queue.submit(make_job("bob", 4096, 22));
  queue.submit(make_job("carol", 1024, 33));
  const auto plan = queue.plan(SchedulePolicy::kFifo);
  EXPECT_EQ(plan, (std::vector<std::size_t>{0, 1, 2}));

  const BatchReport rep = queue.run_all(SchedulePolicy::kFifo);
  ASSERT_EQ(rep.items.size(), 3u);
  EXPECT_EQ(rep.items[0].owner, "alice");
  EXPECT_EQ(rep.items[1].owner, "bob");
  EXPECT_EQ(rep.items[2].owner, "carol");
  EXPECT_EQ(rep.failures, 0u);
  // FIFO pays: 1k(loaded) -> 4k -> 1k = 2 reprogrammings.
  EXPECT_EQ(rep.reconfigurations, 2u);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST_F(QueueFixture, GroupingMinimizesReconfigurations) {
  queue.submit(make_job("alice", 1024, 11));
  queue.submit(make_job("bob", 4096, 22));
  queue.submit(make_job("carol", 1024, 33));
  queue.submit(make_job("dave", 4096, 44));

  const auto plan = queue.plan(SchedulePolicy::kGroupByConfig);
  // Loaded config is the 1 KB baseline: its group first, FIFO inside.
  EXPECT_EQ(plan, (std::vector<std::size_t>{0, 2, 1, 3}));

  const BatchReport rep = queue.run_all(SchedulePolicy::kGroupByConfig);
  EXPECT_EQ(rep.reconfigurations, 1u);  // one switch to 4 KB, ever
  ASSERT_EQ(rep.items.size(), 4u);
  EXPECT_EQ(rep.items[0].owner, "alice");
  EXPECT_EQ(rep.items[1].owner, "carol");
  EXPECT_EQ(rep.items[2].owner, "bob");
  EXPECT_EQ(rep.items[3].owner, "dave");
}

TEST_F(QueueFixture, ResultsAreDeliveredPerJob) {
  queue.submit(make_job("a", 1024, 101));
  queue.submit(make_job("b", 4096, 202));
  const BatchReport rep = queue.run_all();
  for (const auto& item : rep.items) {
    ASSERT_TRUE(item.result.ok) << item.result.error;
    ASSERT_EQ(item.result.readback.size(), 1u);
  }
  EXPECT_EQ(rep.items[0].result.readback[0], 101u);
  EXPECT_EQ(rep.items[1].result.readback[0], 202u);
}

TEST_F(QueueFixture, GroupingSavesWallClockOverFifo) {
  for (int round = 0; round < 3; ++round) {
    queue.submit(make_job("x", 1024, 1));
    queue.submit(make_job("y", 4096, 2));
  }
  const BatchReport grouped = queue.run_all(SchedulePolicy::kGroupByConfig);
  for (int round = 0; round < 3; ++round) {
    queue.submit(make_job("x", 1024, 1));
    queue.submit(make_job("y", 4096, 2));
  }
  const BatchReport fifo = queue.run_all(SchedulePolicy::kFifo);
  EXPECT_LT(grouped.reconfigurations, fifo.reconfigurations);
  EXPECT_LT(grouped.total_reprogram_seconds, fifo.total_reprogram_seconds);
}

TEST_F(QueueFixture, FailedJobDoesNotPoisonTheBatch) {
  Job bad = make_job("mallory", 1024, 5);
  bad.config.dcache_bytes = 512 * 1024;  // will not fit the device
  queue.submit(make_job("a", 1024, 7));
  queue.submit(std::move(bad));
  queue.submit(make_job("b", 1024, 9));
  const BatchReport rep = queue.run_all(SchedulePolicy::kFifo);
  EXPECT_EQ(rep.failures, 1u);
  EXPECT_TRUE(rep.items[0].result.ok);
  EXPECT_FALSE(rep.items[1].result.ok);
  EXPECT_TRUE(rep.items[2].result.ok);
  EXPECT_EQ(rep.items[2].result.readback[0], 9u);
}

TEST_F(QueueFixture, EmptyQueueRunsCleanly) {
  const BatchReport rep = queue.run_all();
  EXPECT_TRUE(rep.items.empty());
  EXPECT_EQ(rep.reconfigurations, 0u);
}

}  // namespace
}  // namespace la::liquid
