// Property: snapshot/restore is unobservable.  For a grid of random
// kSystem programs (seed count from LA_PROPERTY_SEEDS) x host fast-path
// configurations x flight-recorder armed/off, a node run N steps must be
// bit-identical to the same node snapshotted at step k, the snapshot
// round-tripped through serialize/deserialize (as it would cross
// processes), restored into a *fresh* node — possibly with the opposite
// host configuration — and run the remaining N-k steps.  Identity is
// checked on the full re-snapshot bytes, the program's memory footprint,
// the register file, and every value in the node metrics snapshot.
//
// On divergence with the recorder armed, both nodes' flight rings are
// dumped to the same `.flight.json` path convention the fuzzer uses, so a
// red CI run is debuggable from its artifacts alone.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "ctrl/client.hpp"
#include "fuzz/program_generator.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"
#include "sim/snapshot.hpp"

namespace la::test {
namespace {

int seed_count() {
  if (const char* env = std::getenv("LA_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 20;
}

std::vector<u64> seeds() {
  std::vector<u64> v;
  for (int i = 1; i <= seed_count(); ++i) v.push_back(static_cast<u64>(i));
  return v;
}

sim::SystemConfig host_config(bool fast, bool recorder) {
  sim::SystemConfig cfg;
  cfg.fast_run_loop = fast;
  cfg.pipeline.host_fast_paths = fast;
  cfg.pipeline.cpu.host_decode_cache = fast;
  cfg.flight_recorder = recorder;
  return cfg;
}

void dump_flight(const std::string& tag, sim::LiquidSystem& node) {
  if (node.flight_recorder() == nullptr) return;
  std::ofstream out(tag + ".flight.json");
  out << node.take_flight_dump("snapshot_divergence");
}

/// One grid cell: capture on an `fast_a` node mid-program, restore into an
/// `fast_b` node, run both the same remaining distance, compare
/// everything.
void check_identity(u64 seed, bool fast_a, bool fast_b, bool recorder) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " fast_a=" +
               std::to_string(fast_a) + " fast_b=" + std::to_string(fast_b) +
               " recorder=" + std::to_string(recorder));

  fuzz::GenOptions opts;
  opts.mode = fuzz::ProgramMode::kSystem;
  opts.instructions = 200;
  fuzz::ProgramGenerator gen(seed);
  const fuzz::ProgramSpec spec = gen.generate(opts);
  sasm::Assembler as;
  const sasm::AsmResult ar = as.assemble(spec.render());
  ASSERT_TRUE(ar.ok) << ar.error_text();
  const sasm::Image& img = ar.image;

  sim::LiquidSystem a(host_config(fast_a, recorder));
  a.run(300);
  ctrl::LiquidClient client(a);
  ASSERT_TRUE(client.load_program(img));
  ASSERT_TRUE(client.start(img.entry));

  // Snapshot mid-flight at a seed-dependent depth, then round-trip the
  // bytes as a cross-process transfer would.
  const u64 k = 500 + (seed * 997) % 4'000;
  a.run(k);
  Bytes wire = a.snapshot().serialize();
  std::string err;
  const auto snap = sim::SystemSnapshot::deserialize(std::move(wire), &err);
  ASSERT_TRUE(snap.has_value()) << err;

  sim::LiquidSystem b(host_config(fast_b, recorder));
  ASSERT_TRUE(b.restore(*snap, &err)) << err;

  const u64 remaining = 40'000;
  a.run(remaining);
  b.run(remaining);

  // Re-snapshot bytes subsume registers, caches, memories, peripherals,
  // and the clock: one comparison, bit granularity.
  const sim::SystemSnapshot fa = a.snapshot();
  const sim::SystemSnapshot fb = b.snapshot();
  if (fa.data != fb.data) {
    dump_flight("snapshot-divergence-seed" + std::to_string(seed) + "-a", a);
    dump_flight("snapshot-divergence-seed" + std::to_string(seed) + "-b", b);
  }
  ASSERT_EQ(fa.data, fb.data) << "restored run diverged from straight run";

  // Belt and braces on the pieces a report would surface: the program's
  // memory footprint, the architectural registers, and the node metrics.
  for (Addr addr = img.base; addr + 4 <= img.end(); addr += 4) {
    ASSERT_EQ(a.sram().backdoor_word(addr), b.sram().backdoor_word(addr))
        << "memory differs at 0x" << std::hex << addr;
  }
  EXPECT_EQ(a.cpu().state().pc, b.cpu().state().pc);
  EXPECT_EQ(a.cpu().state().regs.raw(), b.cpu().state().regs.raw());
  EXPECT_EQ(a.controller().state(), b.controller().state());

  const metrics::Snapshot ma = a.metrics_snapshot();
  const metrics::Snapshot mb = b.metrics_snapshot();
  ASSERT_EQ(ma.values.size(), mb.values.size());
  for (const auto& [name, va] : ma.values) {
    const auto it = mb.values.find(name);
    ASSERT_NE(it, mb.values.end()) << "metric missing after restore: " << name;
    EXPECT_EQ(va, it->second) << "metric diverged: " << name;
  }
}

class SnapshotIdentity : public ::testing::TestWithParam<u64> {};

// The four grid cells cover recorder off/on and both cross-host restores
// (a fast capture resumed on a slow host and vice versa) — snapshots must
// not care how the capturing or restoring host is configured.
TEST_P(SnapshotIdentity, FastToFast) {
  check_identity(GetParam(), true, true, false);
}

TEST_P(SnapshotIdentity, SlowToSlow) {
  check_identity(GetParam(), false, false, false);
}

TEST_P(SnapshotIdentity, FastToSlowRecorderArmed) {
  check_identity(GetParam(), true, false, true);
}

TEST_P(SnapshotIdentity, SlowToFastRecorderArmed) {
  check_identity(GetParam(), false, true, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotIdentity, ::testing::ValuesIn(seeds()));

}  // namespace
}  // namespace la::test
