// Property test: random deep call trees — with real stack frames, window
// overflow/underflow traps, and the runtime's spill/fill handlers — leave
// the functional reference and the timed pipeline in identical
// architectural state.  This covers the trap-heavy execution the flat
// random-program equivalence test cannot reach.
#include <gtest/gtest.h>

#include <sstream>

#include "bus/ahb.hpp"
#include "common/rng.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"

namespace la::test {
namespace {

constexpr Addr kBase = 0x40000000;
constexpr u32 kMemSize = 1u << 20;

bool all_cacheable(Addr) { return true; }

/// Random DAG of functions: fK may call fJ only for J > K, so every
/// program terminates; call chains run deep enough to spill.
class CallTreeGenerator {
 public:
  explicit CallTreeGenerator(u64 seed) : rng_(seed) {}

  std::string generate(unsigned functions) {
    std::ostringstream os;
    os << "    .org 0x40000100\n_start:\n";
    os << "    call rt_init\n    nop\n";
    os << "    set data, %g7\n";
    os << "    mov 3, %o0\n";
    os << "    call f0\n    nop\n";
    os << "    set result, %g1\n";
    os << "    st %o0, [%g1]\n";
    os << "done:\n    ba done\n    nop\n";

    for (unsigned k = 0; k < functions; ++k) emit_function(os, k, functions);

    os << "    .align 8\nresult:\n    .skip 8\n";
    os << "data:\n    .skip 256\n";
    return os.str();
  }

 private:
  void emit_function(std::ostringstream& os, unsigned k, unsigned total) {
    os << "f" << k << ":\n";
    os << "    save %sp, -96, %sp\n";
    // A few local computations seeded from the argument.
    const char* locals[] = {"%l0", "%l1", "%l2", "%l3"};
    os << "    mov %i0, %l0\n";
    const unsigned nops = 1 + rng_.below(4);
    for (unsigned i = 0; i < nops; ++i) {
      const char* dst = locals[rng_.below(4)];
      const char* src = locals[rng_.below(4)];
      switch (rng_.below(4)) {
        case 0:
          os << "    add " << src << ", " << rng_.below(100) << ", " << dst
             << "\n";
          break;
        case 1:
          os << "    xor " << src << ", %l0, " << dst << "\n";
          break;
        case 2:
          os << "    sll " << src << ", " << (1 + rng_.below(4)) << ", "
             << dst << "\n";
          break;
        default:
          os << "    sub " << src << ", %i0, " << dst << "\n";
          break;
      }
    }
    // Touch the shared data region (offset private to this function).
    const u32 off = (k * 16) % 240;
    if (rng_.chance(0.7)) {
      os << "    st %l1, [%g7 + " << off << "]\n";
      os << "    ld [%g7 + " << off << "], %l2\n";
    }
    // Call up to two deeper functions, folding their results in.
    unsigned calls = rng_.below(3);
    if (k + 1 >= total) calls = 0;
    for (unsigned c = 0; c < calls; ++c) {
      const unsigned target = k + 1 + rng_.below(total - k - 1);
      os << "    add %l0, " << c << ", %o0\n";
      os << "    call f" << target << "\n    nop\n";
      os << "    add %l3, %o0, %l3\n";
    }
    os << "    add %l0, %l3, %i0\n";
    os << "    xor %i0, %l2, %i0\n";
    os << "    ret\n    restore\n";
  }

  Rng rng_;
};

struct BothModels {
  explicit BothModels(const std::string& source, unsigned nwindows) {
    img = sasm::assemble_or_throw(source);

    cpu::CpuConfig ccfg;
    ccfg.nwindows = nwindows;
    flat = std::make_unique<cpu::FlatMemory>(kMemSize, kBase);
    flat->load(img.base, img.data);
    iu = std::make_unique<cpu::IntegerUnit>(ccfg, *flat);
    iu->reset(img.entry);

    cpu::PipelineConfig pcfg;
    pcfg.cpu.nwindows = nwindows;
    sram = std::make_unique<mem::Sram>(kBase, kMemSize);
    sram->backdoor_write(img.base, img.data);
    bus.attach(kBase, kMemSize, sram.get());
    pipe = std::make_unique<cpu::LeonPipeline>(pcfg, bus, &clock,
                                               &all_cacheable);
    pipe->reset(img.entry);
  }

  sasm::Image img;
  Cycles clock = 0;
  std::unique_ptr<cpu::FlatMemory> flat;
  std::unique_ptr<cpu::IntegerUnit> iu;
  std::unique_ptr<mem::Sram> sram;
  bus::AhbBus bus;
  std::unique_ptr<cpu::LeonPipeline> pipe;
};

class CallTreeEquivalence
    : public ::testing::TestWithParam<std::tuple<u64, unsigned>> {};

TEST_P(CallTreeEquivalence, BothModelsAgree) {
  const auto [seed, nwindows] = GetParam();
  CallTreeGenerator gen(seed);
  sasm::rt::RuntimeOptions ropt;
  ropt.nwindows = nwindows;
  BothModels m(gen.generate(14) + sasm::rt::runtime_source(ropt), nwindows);

  const Addr done = m.img.symbol("done");
  const u64 a = m.iu->run(3'000'000, done);
  const u64 b = m.pipe->run(3'000'000, done);
  // Both must terminate (no runaway traps) at the same place.
  ASSERT_EQ(m.iu->state().pc, done) << "IU did not finish (" << a << ")";
  ASSERT_EQ(m.pipe->state().pc, done) << "pipe did not finish (" << b << ")";
  ASSERT_FALSE(m.iu->state().error_mode);
  ASSERT_FALSE(m.pipe->state().error_mode);

  // Architectural state must match exactly.
  const cpu::CpuState& x = m.iu->state();
  const cpu::CpuState& y = m.pipe->state();
  EXPECT_EQ(x.psr.pack(), y.psr.pack());
  EXPECT_EQ(x.wim, y.wim);
  EXPECT_EQ(x.y, y.y);
  for (unsigned w = 0; w < nwindows; ++w) {
    for (u8 r = 0; r < 32; ++r) {
      ASSERT_EQ(x.regs.get(w, r), y.regs.get(w, r))
          << "window " << w << " reg " << int{r};
    }
  }
  // And the result plus the whole data region.
  for (u32 off = 0; off < 256; off += 4) {
    u64 v = 0;
    ASSERT_TRUE(m.sram->debug_read(m.img.symbol("data") + off, 4, v));
    EXPECT_EQ(m.flat->word_at(m.img.symbol("data") + off),
              static_cast<u32>(v));
  }
  EXPECT_EQ(m.flat->word_at(m.img.symbol("result")),
            [&] {
              u64 v = 0;
              m.sram->debug_read(m.img.symbol("result"), 4, v);
              return static_cast<u32>(v);
            }());

  // (Whether a given random tree is deep enough to spill depends on the
  // seed; guaranteed-trap coverage lives in the directed fib tests in
  // tests/cpu/runtime_windows_test.cpp.  Here the property is equality,
  // traps or no traps.)
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWindows, CallTreeEquivalence,
    ::testing::Combine(::testing::Range<u64>(1, 11),
                       ::testing::Values(4u, 8u, 16u)));

}  // namespace
}  // namespace la::test
