// Timing invariants of the pipeline, checked over random programs:
// CPI >= 1, cycle accounting reconciles, stall counters never exceed the
// total, and shrinking a direct-mapped cache never makes a run faster
// (LRU/direct-mapped caches have the inclusion property, so a smaller
// cache's hits are a subset of the larger one's).
#include <gtest/gtest.h>

#include <sstream>

#include "bus/ahb.hpp"
#include "common/rng.hpp"
#include "cpu/leon_pipeline.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"

namespace la::test {
namespace {

constexpr Addr kBase = 0x40000000;

bool all_cacheable(Addr) { return true; }

/// Loopy random program: strided walks + arithmetic, always terminating.
std::string random_workload(u64 seed) {
  Rng rng(seed);
  std::ostringstream os;
  os << "    .org 0x40000100\n_start:\n";
  os << "    set data, %g7\n";
  const unsigned loops = 1 + rng.below(3);
  for (unsigned l = 0; l < loops; ++l) {
    const u32 stride = 4u << rng.below(6);           // 4..128
    const u32 span = 512u << rng.below(4);           // 512..4096
    os << "    set " << span << ", %o5\n";
    os << "    mov 0, %o1\n";
    os << "w" << l << ":\n";
    os << "    ld [%g7 + %o1], %o2\n";
    if (rng.chance(0.4)) os << "    st %o2, [%g7 + %o1]\n";
    os << "    add %o1, " << stride << ", %o1\n";
    os << "    cmp %o1, %o5\n";
    os << "    bl w" << l << "\n    nop\n";
  }
  os << "done:\n    ba done\n    nop\n";
  os << "    .align 32\ndata:\n    .skip 4096\n";
  return os.str();
}

struct TimedRun {
  Cycles cycles = 0;
  cpu::PipelineStats stats;
};

TimedRun run_with(const sasm::Image& img, u32 dcache_bytes) {
  mem::Sram sram(kBase, 1u << 20);
  sram.backdoor_write(img.base, img.data);
  bus::AhbBus bus;
  bus.attach(kBase, 1u << 20, &sram);
  Cycles clock = 0;
  cpu::PipelineConfig cfg;
  cfg.dcache.size_bytes = dcache_bytes;
  cpu::LeonPipeline pipe(cfg, bus, &clock, &all_cacheable);
  pipe.reset(img.entry);
  pipe.run(2'000'000, img.symbol("done"));
  EXPECT_EQ(pipe.state().pc, img.symbol("done"));
  return {clock, pipe.stats()};
}

class TimingInvariants : public ::testing::TestWithParam<u64> {};

TEST_P(TimingInvariants, CpiAtLeastOneAndAccountingReconciles) {
  const auto img = sasm::assemble_or_throw(random_workload(GetParam()));
  const TimedRun r = run_with(img, 1024);
  const u64 slots = r.stats.instructions + r.stats.annulled + r.stats.traps;
  EXPECT_GE(r.stats.cycles, slots);          // CPI >= 1
  EXPECT_EQ(r.cycles, r.stats.cycles);       // clock == accounted cycles
  EXPECT_LE(r.stats.icache_stall + r.stats.dcache_stall +
                r.stats.store_stall,
            r.stats.cycles);
  EXPECT_LE(r.stats.taken_branches, r.stats.branches);
  EXPECT_LE(r.stats.loads + r.stats.stores, r.stats.instructions);
}

TEST_P(TimingInvariants, BiggerDirectMappedCacheNeverSlower) {
  const auto img = sasm::assemble_or_throw(random_workload(GetParam()));
  Cycles prev = ~Cycles{0};
  for (const u32 kb : {16u, 8u, 4u, 2u, 1u}) {  // shrinking
    const TimedRun r = run_with(img, kb * 1024);
    // Inclusion property: shrinking the cache can only add misses, so the
    // run can only get slower (or stay equal).
    if (prev != ~Cycles{0}) {
      EXPECT_GE(r.cycles, prev) << kb << "KB vs previous size";
    }
    prev = r.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimingInvariants,
                         ::testing::Range<u64>(1, 13));

}  // namespace
}  // namespace la::test
