// The central property test: the functional IntegerUnit and the timed
// LeonPipeline are two independently written implementations of SPARC V8;
// random programs must leave both in identical architectural state (and
// identical memory), across pipeline configurations.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "bus/ahb.hpp"
#include "common/rng.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "isa/registers.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"

namespace la::test {
namespace {

constexpr Addr kBase = 0x40000000;
constexpr u32 kMemSize = 1u << 20;

bool all_cacheable(Addr) { return true; }

/// Generates random but *safe* programs: memory accesses stay inside a
/// data region, LDD/STD use even registers, and the program ends in a
/// self-branch.  Traps are possible (tagged-TV, div-zero, window ops with
/// WIM) and must behave identically in both models.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(u64 seed) : rng_(seed) {}

  std::string generate(int instructions) {
    std::ostringstream os;
    os << "    .org 0x" << std::hex << kBase + 0x100 << std::dec << "\n";
    os << "_start:\n";
    os << "    set data, %g7\n";  // reserved data base pointer
    for (int i = 0; i < instructions; ++i) emit_one(os, i);
    os << "done:\n    ba done\n    nop\n";
    os << "    .align 8\ndata:\n    .skip 512\n";
    return os.str();
  }

 private:
  std::string reg() {
    // Any register except %g0 (pointless) and %g7 (reserved base).
    static constexpr const char* pool[] = {
        "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%o0", "%o1", "%o2",
        "%o3", "%o4", "%o5", "%l0", "%l1", "%l2", "%l3", "%l4", "%l5",
        "%l6", "%l7", "%i0", "%i1", "%i2", "%i3", "%i4", "%i5"};
    return pool[rng_.below(std::size(pool))];
  }

  std::string even_reg() {
    static constexpr const char* pool[] = {"%g2", "%g4", "%o0", "%o2",
                                           "%l0", "%l2", "%l4", "%i0"};
    return pool[rng_.below(std::size(pool))];
  }

  std::string op2() {
    if (rng_.chance(0.5)) return reg();
    return std::to_string(static_cast<i32>(rng_.below(8192)) - 4096);
  }

  void emit_one(std::ostringstream& os, int idx) {
    switch (rng_.below(12)) {
      case 0: {  // plain ALU
        static constexpr const char* ops[] = {
            "add", "sub", "and", "or", "xor", "andn", "orn", "xnor",
            "addx", "subx"};
        os << "    " << ops[rng_.below(std::size(ops))] << " " << reg()
           << ", " << op2() << ", " << reg() << "\n";
        break;
      }
      case 1: {  // cc-setting ALU
        static constexpr const char* ops[] = {"addcc", "subcc", "andcc",
                                              "orcc",  "xorcc", "addxcc",
                                              "subxcc", "taddcc", "tsubcc"};
        os << "    " << ops[rng_.below(std::size(ops))] << " " << reg()
           << ", " << op2() << ", " << reg() << "\n";
        break;
      }
      case 2: {  // shifts
        static constexpr const char* ops[] = {"sll", "srl", "sra"};
        os << "    " << ops[rng_.below(3)] << " " << reg() << ", "
           << rng_.below(32) << ", " << reg() << "\n";
        break;
      }
      case 3:  // constants
        os << "    set 0x" << std::hex << rng_.next_u32() << std::dec
           << ", " << reg() << "\n";
        break;
      case 4: {  // loads
        const u32 off = rng_.below(512 - 8);
        static constexpr const char* ops[] = {"ld", "ldub", "lduh", "ldsb",
                                              "ldsh"};
        const char* op = ops[rng_.below(std::size(ops))];
        u32 aligned = off;
        if (op[2] == '\0') aligned &= ~3u;        // ld
        else if (op[2] == 'u' || op[2] == 's') {  // ldu?/lds?
          if (op[3] == 'h') aligned &= ~1u;
        }
        os << "    " << op << " [%g7 + " << aligned << "], " << reg()
           << "\n";
        break;
      }
      case 5: {  // stores
        const u32 off = rng_.below(512 - 8);
        const int k = static_cast<int>(rng_.below(3));
        if (k == 0) {
          os << "    st " << reg() << ", [%g7 + " << (off & ~3u) << "]\n";
        } else if (k == 1) {
          os << "    stb " << reg() << ", [%g7 + " << off << "]\n";
        } else {
          os << "    sth " << reg() << ", [%g7 + " << (off & ~1u) << "]\n";
        }
        break;
      }
      case 6: {  // doubleword
        const u32 off = rng_.below(512 - 8) & ~7u;
        if (rng_.chance(0.5)) {
          os << "    ldd [%g7 + " << off << "], " << even_reg() << "\n";
        } else {
          os << "    std " << even_reg() << ", [%g7 + " << off << "]\n";
        }
        break;
      }
      case 7: {  // atomics
        const u32 off = rng_.below(512 - 8);
        if (rng_.chance(0.5)) {
          os << "    ldstub [%g7 + " << off << "], " << reg() << "\n";
        } else {
          os << "    swap [%g7 + " << (off & ~3u) << "], " << reg() << "\n";
        }
        break;
      }
      case 8: {  // short forward conditional branch (+ optional annul)
        static constexpr const char* cc[] = {"e",  "ne", "g",  "le",
                                             "ge", "l",  "gu", "leu",
                                             "cc", "cs", "pos", "neg"};
        const bool annul = rng_.chance(0.3);
        os << "    cmp " << reg() << ", " << op2() << "\n";
        os << "    b" << cc[rng_.below(std::size(cc))]
           << (annul ? ",a" : "") << " fwd" << idx << "\n";
        os << "    add %g1, 1, %g1\n";   // delay slot
        os << "    sub %g2, 1, %g2\n";   // maybe skipped
        os << "    xor %g3, 5, %g3\n";
        os << "fwd" << idx << ":\n";
        break;
      }
      case 9: {  // multiply / divide
        static constexpr const char* ops[] = {"umul",   "smul", "umulcc",
                                              "smulcc", "udiv", "sdiv",
                                              "udivcc", "sdivcc", "mulscc"};
        const char* op = ops[rng_.below(std::size(ops))];
        if (op[0] == 'u' || op[0] == 's') {
          if (op[1] == 'd' || op[1] == 'm') {
            // Seed Y for divides to keep dividends tame half the time.
            if (rng_.chance(0.5)) os << "    wr %g0, 0, %y\n";
          }
        }
        os << "    " << op << " " << reg() << ", " << op2() << ", " << reg()
           << "\n";
        break;
      }
      case 10: {  // window traffic (WIM=0 -> silent wraparound)
        if (rng_.chance(0.5)) {
          os << "    save %g0, " << rng_.below(64) << ", " << reg() << "\n";
        } else {
          os << "    restore %g0, " << rng_.below(64) << ", " << reg()
             << "\n";
        }
        break;
      }
      default: {  // Y register traffic
        if (rng_.chance(0.5)) {
          os << "    wr " << reg() << ", " << op2() << ", %y\n";
        } else {
          os << "    rd %y, " << reg() << "\n";
        }
        break;
      }
    }
  }

  Rng rng_;
};

struct BothModels {
  explicit BothModels(const std::string& source,
                      cpu::PipelineConfig pcfg = {}) {
    img = sasm::assemble_or_throw(source);

    flat = std::make_unique<cpu::FlatMemory>(kMemSize, kBase);
    flat->load(img.base, img.data);
    iu = std::make_unique<cpu::IntegerUnit>(pcfg.cpu, *flat);
    iu->reset(img.entry);

    sram = std::make_unique<mem::Sram>(kBase, kMemSize);
    sram->backdoor_write(img.base, img.data);
    bus.attach(kBase, kMemSize, sram.get());
    pipe = std::make_unique<cpu::LeonPipeline>(pcfg, bus, &clock,
                                               &all_cacheable);
    pipe->reset(img.entry);
  }

  void run_both(u64 steps) {
    const Addr done = img.symbol("done");
    iu->run(steps, done);
    pipe->run(steps, done);
  }

  /// Compare every piece of architectural state and all of data memory.
  void expect_equivalent() {
    const cpu::CpuState& a = iu->state();
    const cpu::CpuState& b = pipe->state();
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.npc, b.npc);
    EXPECT_EQ(a.psr.pack(), b.psr.pack());
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.wim, b.wim);
    EXPECT_EQ(a.tbr, b.tbr);
    EXPECT_EQ(a.error_mode, b.error_mode);
    for (unsigned w = 0; w < a.regs.nwindows(); ++w) {
      for (u8 r = 0; r < 32; ++r) {
        ASSERT_EQ(a.regs.get(w, r), b.regs.get(w, r))
            << "window " << w << " reg " << isa::reg_name(r);
      }
    }
    // Data region: compare through each model's own memory.
    const Addr data = img.symbol("data");
    for (u32 off = 0; off < 512; off += 4) {
      u64 bv = 0;
      ASSERT_TRUE(sram->debug_read(data + off, 4, bv));
      EXPECT_EQ(flat->word_at(data + off), static_cast<u32>(bv))
          << "data+" << off;
    }
  }

  sasm::Image img;
  Cycles clock = 0;
  std::unique_ptr<cpu::FlatMemory> flat;
  std::unique_ptr<cpu::IntegerUnit> iu;
  std::unique_ptr<mem::Sram> sram;
  bus::AhbBus bus;
  std::unique_ptr<cpu::LeonPipeline> pipe;
};

class Equivalence : public ::testing::TestWithParam<u64> {};

TEST_P(Equivalence, RandomProgramsMatchDefaultConfig) {
  ProgramGenerator gen(GetParam());
  BothModels m(gen.generate(300));
  m.run_both(5000);
  m.expect_equivalent();
}

TEST_P(Equivalence, RandomProgramsMatchTinyCaches) {
  cpu::PipelineConfig pcfg;
  pcfg.icache.size_bytes = 128;
  pcfg.icache.line_bytes = 16;
  pcfg.dcache.size_bytes = 128;
  pcfg.dcache.line_bytes = 16;
  ProgramGenerator gen(GetParam() * 7919 + 1);
  BothModels m(gen.generate(300), pcfg);
  m.run_both(5000);
  m.expect_equivalent();
}

TEST_P(Equivalence, RandomProgramsMatchCachesDisabled) {
  cpu::PipelineConfig pcfg;
  pcfg.icache_enabled = false;
  pcfg.dcache_enabled = false;
  pcfg.write_buffer_depth = 0;
  ProgramGenerator gen(GetParam() * 104729 + 2);
  BothModels m(gen.generate(200), pcfg);
  m.run_both(4000);
  m.expect_equivalent();
}

TEST_P(Equivalence, RandomProgramsMatchWriteBackCache) {
  cpu::PipelineConfig pcfg;
  pcfg.dcache.write_policy = cache::WritePolicy::kWriteBackAllocate;
  ProgramGenerator gen(GetParam() * 31 + 3);
  BothModels m(gen.generate(300), pcfg);
  m.run_both(5000);
  // Write-back: memory lags the cache; flush before comparing.
  m.pipe->flush_caches();
  m.expect_equivalent();
}

TEST_P(Equivalence, RandomProgramsMatchFewWindows) {
  cpu::PipelineConfig pcfg;
  pcfg.cpu.nwindows = 3;
  ProgramGenerator gen(GetParam() * 17 + 4);
  BothModels m(gen.generate(300), pcfg);
  m.run_both(5000);
  m.expect_equivalent();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Range<u64>(1, 21));  // 20 seeds x 5 cfgs

}  // namespace
}  // namespace la::test
