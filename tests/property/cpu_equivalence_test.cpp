// The central property test: the functional IntegerUnit and the timed
// LeonPipeline are two independently written implementations of SPARC V8;
// random programs must leave both in identical architectural state (and
// identical memory), across pipeline configurations.
//
// Programs come from the shared src/fuzz generator (the same one lfuzz
// drives), and the comparison is the shared differential runner — this
// suite is the deterministic, always-on sibling of the fuzzing campaign.
//
// Seed count: LA_PROPERTY_SEEDS environment variable (default 20).  On a
// mismatch the failing seed and the full program are printed so the case
// can be replayed standalone:  save it to repro.s, `lfuzz --replay repro.s`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/program_generator.hpp"

namespace la::test {
namespace {

int seed_count() {
  if (const char* env = std::getenv("LA_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 20;
}

std::vector<u64> seeds() {
  std::vector<u64> v;
  for (int i = 1; i <= seed_count(); ++i) v.push_back(static_cast<u64>(i));
  return v;
}

/// Generate one program and run the bare two-way differential under the
/// given pipeline configuration, failing with a replayable report.
void check_equivalence(u64 seed, const cpu::PipelineConfig& pcfg,
                       int chunks) {
  fuzz::GenOptions opts;
  opts.mode = fuzz::ProgramMode::kCore;
  opts.instructions = chunks;
  fuzz::ProgramGenerator gen(seed);
  const fuzz::ProgramSpec spec = gen.generate(opts);

  fuzz::DiffOptions dopt;
  dopt.pipeline = pcfg;
  dopt.with_system = false;  // kCore programs run on the bare models only
  fuzz::DifferentialRunner runner(dopt);
  const fuzz::DiffOutcome out = runner.run(spec);

  ASSERT_TRUE(out.asm_ok) << "seed " << seed
                          << ": generated program failed to assemble:\n"
                          << out.detail;
  EXPECT_TRUE(out.completed)
      << "seed " << seed << ": " << out.detail;
  if (out.diverged) {
    ADD_FAILURE() << "seed " << seed << " diverged on the " << out.leg
                  << " leg: " << out.detail
                  << "\nreplay: save the program below as repro.s and run"
                     " `lfuzz --replay repro.s`\n"
                  << spec.render();
  }
}

class Equivalence : public ::testing::TestWithParam<u64> {};

TEST_P(Equivalence, RandomProgramsMatchDefaultConfig) {
  check_equivalence(GetParam(), cpu::PipelineConfig{}, 300);
}

TEST_P(Equivalence, RandomProgramsMatchTinyCaches) {
  cpu::PipelineConfig pcfg;
  pcfg.icache.size_bytes = 128;
  pcfg.icache.line_bytes = 16;
  pcfg.dcache.size_bytes = 128;
  pcfg.dcache.line_bytes = 16;
  check_equivalence(GetParam() * 7919 + 1, pcfg, 300);
}

TEST_P(Equivalence, RandomProgramsMatchCachesDisabled) {
  cpu::PipelineConfig pcfg;
  pcfg.icache_enabled = false;
  pcfg.dcache_enabled = false;
  pcfg.write_buffer_depth = 0;
  check_equivalence(GetParam() * 104729 + 2, pcfg, 200);
}

TEST_P(Equivalence, RandomProgramsMatchWriteBackCache) {
  cpu::PipelineConfig pcfg;
  pcfg.dcache.write_policy = cache::WritePolicy::kWriteBackAllocate;
  check_equivalence(GetParam() * 31 + 3, pcfg, 300);
}

TEST_P(Equivalence, RandomProgramsMatchFewWindows) {
  cpu::PipelineConfig pcfg;
  pcfg.cpu.nwindows = 3;
  check_equivalence(GetParam() * 17 + 4, pcfg, 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence, ::testing::ValuesIn(seeds()));

}  // namespace
}  // namespace la::test
