// Property: the host fast paths are unobservable.  The same random
// program on the same rig must leave LeonPipeline with bit-identical
// architectural state, statistics (cycles included), cache statistics,
// and memory with `host_fast_paths`/`host_decode_cache` on vs off — and
// leave IntegerUnit bit-identical across the slow / decode-cache /
// block-engine three-way grid.
//
// This is the direct fast-vs-slow sibling of cpu_equivalence_test (which
// checks the pipeline against the independent functional model); programs
// come from the same shared generator, seed count from LA_PROPERTY_SEEDS.
#include <gtest/gtest.h>

#include <cstdlib>
#include <ios>
#include <memory>
#include <string>
#include <vector>

#include "bus/ahb.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "fuzz/differential.hpp"  // compare_full
#include "fuzz/program_generator.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"

namespace la::test {
namespace {

constexpr Addr kMemBase = 0x40000000;
constexpr u32 kMemSize = 1u << 20;

bool all_cacheable(Addr) { return true; }

int seed_count() {
  if (const char* env = std::getenv("LA_PROPERTY_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 20;
}

std::vector<u64> seeds() {
  std::vector<u64> v;
  for (int i = 1; i <= seed_count(); ++i) v.push_back(static_cast<u64>(i));
  return v;
}

/// One leg: assemble + run the program to its `done` symbol on a bare
/// SRAM-backed bus, then flush caches so memory holds the architectural
/// contents (write-back configs).
struct Leg {
  explicit Leg(const sasm::Image& img, const cpu::PipelineConfig& cfg)
      : sram(kMemBase, kMemSize), clock(0) {
    sram.backdoor_write(img.base, img.data);
    bus.attach(kMemBase, kMemSize, &sram);
    pipe = std::make_unique<cpu::LeonPipeline>(cfg, bus, &clock,
                                               &all_cacheable);
    pipe->reset(img.entry);
  }

  mem::Sram sram;
  bus::AhbBus bus;
  Cycles clock;
  std::unique_ptr<cpu::LeonPipeline> pipe;
};

void check_seed(u64 seed, cpu::PipelineConfig base, int chunks) {
  fuzz::GenOptions opts;
  opts.mode = fuzz::ProgramMode::kCore;
  opts.instructions = chunks;
  fuzz::ProgramGenerator gen(seed);
  const fuzz::ProgramSpec spec = gen.generate(opts);

  sasm::Assembler as;
  sasm::AsmResult ar = as.assemble(spec.render());
  ASSERT_TRUE(ar.ok) << "seed " << seed << ": " << ar.error_text();
  const sasm::Image& img = ar.image;
  const Addr done = img.symbol(fuzz::kDoneSymbol);
  const u64 budget = 4096 + 16u * (img.data.size() / 4);

  base.host_fast_paths = true;
  base.cpu.host_decode_cache = true;
  Leg fast(img, base);
  base.host_fast_paths = false;
  base.cpu.host_decode_cache = false;
  Leg slow(img, base);

  const u64 nf = fast.pipe->run(budget, done);
  const u64 ns = slow.pipe->run(budget, done);
  fast.pipe->flush_caches();
  slow.pipe->flush_caches();

  EXPECT_EQ(nf, ns) << "seed " << seed << ": step counts differ";
  EXPECT_EQ(fast.clock, slow.clock) << "seed " << seed << ": clocks differ";

  const std::string d =
      fuzz::compare_full(fast.pipe->state(), slow.pipe->state());
  EXPECT_TRUE(d.empty()) << "seed " << seed << " state diverged: " << d
                         << "\nprogram:\n"
                         << spec.render();

  const cpu::PipelineStats& sa = fast.pipe->stats();
  const cpu::PipelineStats& sb = slow.pipe->stats();
  EXPECT_EQ(sa.instructions, sb.instructions) << "seed " << seed;
  EXPECT_EQ(sa.annulled, sb.annulled) << "seed " << seed;
  EXPECT_EQ(sa.traps, sb.traps) << "seed " << seed;
  EXPECT_EQ(sa.cycles, sb.cycles) << "seed " << seed;
  EXPECT_EQ(sa.icache_stall, sb.icache_stall) << "seed " << seed;
  EXPECT_EQ(sa.dcache_stall, sb.dcache_stall) << "seed " << seed;
  EXPECT_EQ(sa.store_stall, sb.store_stall) << "seed " << seed;
  EXPECT_EQ(sa.loads, sb.loads) << "seed " << seed;
  EXPECT_EQ(sa.stores, sb.stores) << "seed " << seed;
  EXPECT_EQ(sa.branches, sb.branches) << "seed " << seed;
  EXPECT_EQ(sa.taken_branches, sb.taken_branches) << "seed " << seed;
  EXPECT_EQ(sa.calls, sb.calls) << "seed " << seed;
  EXPECT_EQ(sa.muldiv, sb.muldiv) << "seed " << seed;

  // Cache statistics: lookup_hit must count exactly like access().
  const auto cmp_cache = [seed](const char* which, const cache::CacheStats& x,
                                const cache::CacheStats& y) {
    EXPECT_EQ(x.read_hits, y.read_hits) << "seed " << seed << " " << which;
    EXPECT_EQ(x.read_misses, y.read_misses)
        << "seed " << seed << " " << which;
    EXPECT_EQ(x.write_hits, y.write_hits) << "seed " << seed << " " << which;
    EXPECT_EQ(x.write_misses, y.write_misses)
        << "seed " << seed << " " << which;
    EXPECT_EQ(x.evictions, y.evictions) << "seed " << seed << " " << which;
    EXPECT_EQ(x.writebacks, y.writebacks) << "seed " << seed << " " << which;
  };
  cmp_cache("icache", fast.pipe->icache().stats(),
            slow.pipe->icache().stats());
  cmp_cache("dcache", fast.pipe->dcache().stats(),
            slow.pipe->dcache().stats());

  // Memory: the whole image footprint, word by word.
  for (Addr a = img.base; a + 4 <= img.end(); a += 4) {
    u64 vf = 0;
    u64 vs = 0;
    ASSERT_TRUE(fast.sram.debug_read(a, 4, vf));
    ASSERT_TRUE(slow.sram.debug_read(a, 4, vs));
    ASSERT_EQ(vf, vs) << "seed " << seed << ": memory differs at 0x"
                      << std::hex << a;
  }
}

// ---- IntegerUnit: slow / decode-cache / block-engine three-way grid ----

/// One functional-model leg on flat memory, driven through run() (the only
/// entry point that can engage the block engine).
struct IuLeg {
  IuLeg(const sasm::Image& img, bool decode_cache, bool block_engine)
      : mem(kMemSize, kMemBase) {
    mem.load(img.base, img.data);
    cpu::CpuConfig cfg;
    cfg.host_decode_cache = decode_cache;
    cfg.host_block_engine = block_engine;
    iu = std::make_unique<cpu::IntegerUnit>(cfg, mem);
    iu->reset(img.entry);
  }

  cpu::FlatMemory mem;
  std::unique_ptr<cpu::IntegerUnit> iu;
};

void check_iu_seed(u64 seed, int chunks) {
  fuzz::GenOptions opts;
  opts.mode = fuzz::ProgramMode::kCore;
  opts.instructions = chunks;
  fuzz::ProgramGenerator gen(seed);
  const fuzz::ProgramSpec spec = gen.generate(opts);

  sasm::Assembler as;
  sasm::AsmResult ar = as.assemble(spec.render());
  ASSERT_TRUE(ar.ok) << "seed " << seed << ": " << ar.error_text();
  const sasm::Image& img = ar.image;
  const Addr done = img.symbol(fuzz::kDoneSymbol);
  const u64 budget = 4096 + 16u * (img.data.size() / 4);

  IuLeg slow(img, /*decode_cache=*/false, /*block_engine=*/false);
  IuLeg fast(img, /*decode_cache=*/true, /*block_engine=*/false);
  IuLeg block(img, /*decode_cache=*/true, /*block_engine=*/true);

  const u64 ns = slow.iu->run(budget, done);
  const u64 nf = fast.iu->run(budget, done);
  const u64 nb = block.iu->run(budget, done);

  EXPECT_EQ(ns, nf) << "seed " << seed << ": slow/fast step counts differ";
  EXPECT_EQ(ns, nb) << "seed " << seed << ": slow/block step counts differ";

  const auto check_against_slow = [&](const char* which, const IuLeg& leg) {
    const std::string d =
        fuzz::compare_full(slow.iu->state(), leg.iu->state());
    EXPECT_TRUE(d.empty()) << "seed " << seed << " slow/" << which
                           << " state diverged: " << d << "\nprogram:\n"
                           << spec.render();
    EXPECT_EQ(slow.iu->cycle_count(), leg.iu->cycle_count())
        << "seed " << seed << " slow/" << which << ": cycles differ";
    EXPECT_EQ(slow.iu->instret(), leg.iu->instret())
        << "seed " << seed << " slow/" << which << ": instret differs";
    EXPECT_EQ(slow.iu->trap_count(), leg.iu->trap_count())
        << "seed " << seed << " slow/" << which << ": trap counts differ";
    // Memory: the whole image footprint, word by word.
    for (Addr a = img.base; a + 4 <= img.end(); a += 4) {
      ASSERT_EQ(slow.mem.word_at(a), leg.mem.word_at(a))
          << "seed " << seed << " slow/" << which
          << ": memory differs at 0x" << std::hex << a;
    }
  };
  check_against_slow("fast", fast);
  check_against_slow("block", block);
}

class FastPathEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(FastPathEquivalence, DefaultConfig) {
  check_seed(GetParam(), cpu::PipelineConfig{}, 300);
}

TEST_P(FastPathEquivalence, IntegerUnitThreeWay) {
  check_iu_seed(GetParam(), 300);
}

TEST_P(FastPathEquivalence, IntegerUnitThreeWayLong) {
  // Longer programs exercise block chaining and re-translation harder.
  check_iu_seed(GetParam() * 48271 + 5, 900);
}

TEST_P(FastPathEquivalence, TinyCaches) {
  cpu::PipelineConfig pcfg;
  pcfg.icache.size_bytes = 128;
  pcfg.icache.line_bytes = 16;
  pcfg.dcache.size_bytes = 128;
  pcfg.dcache.line_bytes = 16;
  check_seed(GetParam() * 7919 + 1, pcfg, 300);
}

TEST_P(FastPathEquivalence, CachesDisabled) {
  cpu::PipelineConfig pcfg;
  pcfg.icache_enabled = false;
  pcfg.dcache_enabled = false;
  pcfg.write_buffer_depth = 0;
  check_seed(GetParam() * 104729 + 2, pcfg, 200);
}

TEST_P(FastPathEquivalence, WriteBackCache) {
  cpu::PipelineConfig pcfg;
  pcfg.dcache.write_policy = cache::WritePolicy::kWriteBackAllocate;
  check_seed(GetParam() * 31 + 3, pcfg, 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathEquivalence,
                         ::testing::ValuesIn(seeds()));

}  // namespace
}  // namespace la::test
