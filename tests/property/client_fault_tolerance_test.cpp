// Property: over ANY configuration of channel hostility (drop, duplicate,
// reorder, corrupt, truncate), run_program either completes with the right
// data or fails loudly with a structured ClientError.  It never hangs
// (every wait is bounded by retries and the step deadline) and never
// reports success with wrong memory.
#include <gtest/gtest.h>

#include <string>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

sasm::Image checkable_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      mov 120, %o1
      mov 0, %o2
  loop:
      add %o2, %o1, %o2
      subcc %o1, 1, %o1
      bne loop
      nop
      set result, %g1
      st %o2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

constexpr u32 kExpected = 7260;  // sum 1..120

struct GridPoint {
  double drop, duplicate, reorder, corrupt;
};

TEST(ClientFaultTolerance, CompletesCorrectlyOrFailsLoudly) {
  const auto img = checkable_program();
  const GridPoint grid[] = {
      {0.00, 0.00, 0.00, 0.00}, {0.10, 0.00, 0.00, 0.00},
      {0.30, 0.00, 0.00, 0.00}, {0.00, 0.20, 0.00, 0.00},
      {0.00, 0.00, 0.25, 0.00}, {0.00, 0.00, 0.00, 0.10},
      {0.00, 0.00, 0.00, 0.30}, {0.10, 0.10, 0.10, 0.10},
      {0.25, 0.10, 0.15, 0.20}, {0.40, 0.20, 0.20, 0.40},
  };

  int successes = 0;
  int loud_failures = 0;
  for (const GridPoint& g : grid) {
    for (u64 seed = 1; seed <= 3; ++seed) {
      sim::LiquidSystem node;
      node.run(300);
      ctrl::ClientConfig ccfg;
      ccfg.uplink = {g.drop, g.duplicate, g.reorder, g.corrupt,
                     g.corrupt / 2, 0, seed};
      ccfg.downlink = {g.drop, g.duplicate, g.reorder, g.corrupt,
                       g.corrupt / 2, 0, seed ^ 0x5eedull};
      ccfg.deadline_steps = 1'500'000;
      ctrl::LiquidClient client(node, ccfg);

      const ctrl::Status run = client.run_program(img, 1'500'000);
      const std::string ctx = "drop=" + std::to_string(g.drop) +
                              " dup=" + std::to_string(g.duplicate) +
                              " reorder=" + std::to_string(g.reorder) +
                              " corrupt=" + std::to_string(g.corrupt) +
                              " seed=" + std::to_string(seed);
      if (run) {
        // Success must mean the right answer landed in memory.
        EXPECT_EQ(node.sram().backdoor_word(img.symbol("result")), kExpected)
            << ctx;
        ++successes;
      } else {
        // Failure must be loud and structured, never a wrong answer
        // dressed as success.
        EXPECT_FALSE(run.error().to_string().empty()) << ctx;
        ++loud_failures;
      }
    }
  }
  // The clean points and the mildly hostile ones must actually succeed —
  // "always fails loudly" would satisfy the disjunction vacuously.
  EXPECT_GE(successes, 12) << "successes=" << successes
                           << " loud_failures=" << loud_failures;
}

TEST(ClientFaultTolerance, StaleResponsesAreCountedNotFatal) {
  // Duplicated frames make the node answer twice; the extra responses are
  // drained, counted, and never confuse a later command.
  const auto img = checkable_program();
  sim::LiquidSystem node;
  node.run(300);
  ctrl::ClientConfig ccfg;
  ccfg.downlink.duplicate = 0.8;
  ccfg.downlink.seed = 7;
  ctrl::LiquidClient client(node, ccfg);
  ASSERT_TRUE(client.run_program(img, 2'000'000));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.status());
  }
  client.drain_downlink();
  EXPECT_GT(client.stats().stale_responses, 0u);
  EXPECT_EQ(node.sram().backdoor_word(img.symbol("result")), kExpected);
}

TEST(ClientFaultTolerance, DeadlineExpiresLoudlyWhenTheNodeIsSilent) {
  // A downlink that eats everything: the client must give up with a
  // structured error instead of spinning forever.
  sim::LiquidSystem node;
  node.run(300);
  ctrl::ClientConfig ccfg;
  ccfg.downlink.drop = 1.0;
  ccfg.deadline_steps = 100'000;
  ctrl::LiquidClient client(node, ccfg);
  const auto rep = client.status();
  ASSERT_FALSE(rep);
  EXPECT_TRUE(rep.error().kind == ctrl::ClientErrorKind::kDeadline ||
              rep.error().kind == ctrl::ClientErrorKind::kGaveUp);
  EXPECT_GT(client.stats().gave_up, 0u);
}

}  // namespace
}  // namespace la::test
