// FaultPlan: the declarative plan format the campaign prints into repros.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"

namespace la::fault {
namespace {

TEST(FaultPlan, SiteNamesAreStable) {
  EXPECT_STREQ(site_name(FaultSite::kSramWord), "sram_word");
  EXPECT_STREQ(site_name(FaultSite::kSdramWord), "sdram_word");
  EXPECT_STREQ(site_name(FaultSite::kICacheLine), "icache_line");
  EXPECT_STREQ(site_name(FaultSite::kDCacheLine), "dcache_line");
  EXPECT_STREQ(site_name(FaultSite::kRegister), "register");
  EXPECT_STREQ(site_name(FaultSite::kAhbErrorPulse), "ahb_error_pulse");
  EXPECT_STREQ(site_name(FaultSite::kCpuWedge), "cpu_wedge");
  EXPECT_STREQ(site_name(FaultSite::kChannelCorrupt), "channel_corrupt");
  EXPECT_STREQ(site_name(FaultSite::kChannelTruncate), "channel_truncate");
  EXPECT_STREQ(site_name(FaultSite::kChannelDelay), "channel_delay");
}

TEST(FaultPlan, ParitySitesAreTheMemoryOnes) {
  EXPECT_TRUE(site_has_parity(FaultSite::kSramWord));
  EXPECT_TRUE(site_has_parity(FaultSite::kSdramWord));
  EXPECT_TRUE(site_has_parity(FaultSite::kICacheLine));
  EXPECT_TRUE(site_has_parity(FaultSite::kDCacheLine));
  EXPECT_FALSE(site_has_parity(FaultSite::kRegister));
  EXPECT_FALSE(site_has_parity(FaultSite::kCpuWedge));
  EXPECT_FALSE(site_has_parity(FaultSite::kChannelCorrupt));
}

TEST(FaultPlan, ToStringIsGreppable) {
  FaultPlan plan;
  plan.seed = 42;
  plan.events.push_back(
      {{TriggerKind::kCycle, 1000},
       {FaultSite::kSramWord, 0x40000120, 0x80, 1, 0, false}});
  plan.events.push_back(
      {{TriggerKind::kPacketCount, 3},
       {FaultSite::kChannelTruncate, 0, 1, 1, 0, true}});
  const std::string s = plan.to_string();
  EXPECT_NE(s.find("seed=42"), std::string::npos);
  EXPECT_NE(s.find("events=2"), std::string::npos);
  EXPECT_NE(s.find("cycle 1000: sram_word addr=0x40000120 mask=0x80"),
            std::string::npos);
  EXPECT_NE(s.find("packet 3: channel_truncate"), std::string::npos);
  EXPECT_NE(s.find("downlink"), std::string::npos);
}

TEST(FaultPlan, EmptyPlan) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NE(plan.to_string().find("events=0"), std::string::npos);
}

}  // namespace
}  // namespace la::fault
