// The fault campaign's classification contract: every injected fault ends
// masked, detected, or latent — never silent — and the campaign loop is
// deterministic under a fixed seed.
#include <gtest/gtest.h>

#include "fuzz/fault_campaign.hpp"
#include "mem/memory_map.hpp"

namespace la::fuzz {
namespace {

FaultCampaignConfig quiet_config(u64 seed) {
  FaultCampaignConfig cfg;
  cfg.seed = seed;
  cfg.out_dir.clear();        // no repro files from unit tests
  cfg.minimize_failures = false;
  cfg.program_chunks = 30;    // keep each run short
  return cfg;
}

ProgramSpec small_system_program(u64 seed) {
  GenOptions opts;
  opts.mode = ProgramMode::kSystem;
  opts.instructions = 30;
  opts.seed = seed;
  ProgramGenerator gen(seed);
  return gen.generate(opts);
}

TEST(FaultCampaign, SmallDeterministicCampaignHasNoSilentDivergence) {
  FaultCampaignConfig cfg = quiet_config(1234);
  cfg.max_iterations = 4;
  FaultCampaign campaign(cfg);
  EXPECT_EQ(campaign.run(), 0);
  const FaultCampaignStats& st = campaign.stats();
  EXPECT_EQ(st.iterations, 4u);
  EXPECT_EQ(st.silent, 0u);
  EXPECT_EQ(st.masked + st.detected + st.latent + st.skipped, 4u);
}

TEST(FaultCampaign, PermanentWedgeIsAlwaysDetected) {
  FaultCampaign campaign(quiet_config(99));
  const ProgramSpec spec = small_system_program(2024);
  fault::FaultPlan plan;
  plan.seed = 7;
  // Wedge forever on the program's first instruction; the watchdog is the
  // only way this run can fail loudly instead of hanging to the deadline.
  plan.events.push_back({{fault::TriggerKind::kPc, kProgramBase},
                         {fault::FaultSite::kCpuWedge, 0, 1, 1, 0}});
  const FaultRunResult r = campaign.run_one(spec, plan);
  EXPECT_EQ(r.verdict, FaultVerdict::kDetected) << r.detail;
  EXPECT_EQ(r.faults_fired, 1u);
}

TEST(FaultCampaign, SramCorruptionIsNeverSilent) {
  FaultCampaign campaign(quiet_config(5));
  const ProgramSpec spec = small_system_program(77);
  for (u64 s = 1; s <= 6; ++s) {
    fault::FaultPlan plan;
    plan.seed = s;
    plan.events.push_back(
        {{fault::TriggerKind::kCycle, 2'000 + 900 * s},
         {fault::FaultSite::kSramWord,
          mem::map::kUserProgramBase + 4 * (s * 13 % 128),
          u64{1} << (s * 11 % 32)}});
    const FaultRunResult r = campaign.run_one(spec, plan);
    EXPECT_NE(r.verdict, FaultVerdict::kSilent)
        << "seed " << s << ": " << r.detail;
    EXPECT_NE(r.verdict, FaultVerdict::kSkipped) << r.detail;
  }
}

TEST(FaultCampaign, RandomPlansAreDeterministicInTheirSeed) {
  FaultCampaign campaign(quiet_config(1));
  const fault::FaultPlan a = campaign.random_plan(42, 0x40000100, 0x40000500);
  const fault::FaultPlan b = campaign.random_plan(42, 0x40000100, 0x40000500);
  EXPECT_EQ(a.to_string(), b.to_string());
  const fault::FaultPlan c = campaign.random_plan(43, 0x40000100, 0x40000500);
  EXPECT_NE(a.to_string(), c.to_string());
}

}  // namespace
}  // namespace la::fuzz
