// FaultInjector: every site lands where it claims, triggers fire exactly
// once, and the damage is observable through the substrate's own parity /
// stats machinery.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "fault/injector.hpp"
#include "mem/memory_map.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::fault {
namespace {

sasm::Image tiny_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set result, %g1
      mov 77, %o0
      st %o0, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

sim::LiquidSystem& booted(sim::LiquidSystem& node) {
  node.run(300);
  return node;
}

TEST(FaultInjector, CycleTriggerFiresOnceAndSramWordLands) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  const Addr target = mem::map::kUserProgramBase + 0x40;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kSramWord, target, 0x1}});
  FaultInjector inj(node, plan);
  // now() is already past 0: the event fires at construction.
  ASSERT_EQ(inj.fired().size(), 1u);
  EXPECT_TRUE(inj.fired()[0].landed);
  EXPECT_TRUE(inj.all_fired());
  EXPECT_FALSE(node.sram().parity_ok(target, 4));
  EXPECT_TRUE(inj.parity_still_bad(0));
  EXPECT_EQ(node.sram().stats().words_corrupted, 1u);
  EXPECT_EQ(node.metrics().counter("fault.injected").value(), 1u);
  EXPECT_EQ(node.metrics().counter("fault.site.sram_word").value(), 1u);
  node.run(50);  // must not re-fire
  EXPECT_EQ(inj.fired().size(), 1u);
}

TEST(FaultInjector, OverwriteScrubsTheInjectedParity) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  const Addr target = mem::map::kUserProgramBase + 0x40;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kSramWord, target, 0xff}});
  FaultInjector inj(node, plan);
  ASSERT_TRUE(inj.parity_still_bad(0));
  node.sram().backdoor_write_word(target, 0xdeadbeef);
  EXPECT_FALSE(inj.parity_still_bad(0));  // masked: fresh data, fresh parity
  EXPECT_EQ(node.sram().backdoor_word(target), 0xdeadbeefu);
}

TEST(FaultInjector, SdramWordLandsAndIsFlagged) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  const Addr target = mem::map::kSdramBase + 0x200;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kSdramWord, target, 0x10}});
  FaultInjector inj(node, plan);
  ASSERT_EQ(inj.fired().size(), 1u);
  EXPECT_TRUE(inj.fired()[0].landed);
  EXPECT_TRUE(inj.parity_still_bad(0));
  EXPECT_EQ(node.sdram_device().stats().words_corrupted, 1u);
}

TEST(FaultInjector, PcTriggerFiresWhenTheProgramReachesIt) {
  sim::LiquidSystem node;
  booted(node);
  const auto img = tiny_program();
  FaultPlan plan;
  // Fire on the program's entry instruction; damage an unrelated word.
  plan.events.push_back(
      {{TriggerKind::kPc, img.entry},
       {FaultSite::kSramWord, mem::map::kSramBase + 0x8000, 0x1}});
  FaultInjector inj(node, plan);
  EXPECT_TRUE(inj.fired().empty());
  ctrl::LiquidClient client(node);
  ASSERT_TRUE(client.run_program(img));
  ASSERT_EQ(inj.fired().size(), 1u);
  EXPECT_TRUE(inj.fired()[0].landed);
}

TEST(FaultInjector, PacketCountTriggerFiresOnIngress) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kPacketCount, 2},
       {FaultSite::kAhbErrorPulse, 0, 1, 1, 2}});
  FaultInjector inj(node, plan);
  ctrl::LiquidClient client(node);
  EXPECT_TRUE(inj.fired().empty());
  (void)client.status();  // at least two frames reach the node (cmd + retries)
  (void)client.status();
  ASSERT_GE(inj.ingress_frames(), 2u);
  ASSERT_EQ(inj.fired().size(), 1u);
}

TEST(FaultInjector, AhbErrorPulseQueuesOnTheBus) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kAhbErrorPulse, 0, 1, 1, 3}});
  FaultInjector inj(node, plan);
  EXPECT_EQ(node.ahb().pending_error_pulses(), 3u);
}

TEST(FaultInjector, CacheLinePoisonLandsOnlyWhenResident) {
  sim::LiquidSystem node;
  booted(node);
  const auto img = tiny_program();
  ctrl::LiquidClient client(node);
  ASSERT_TRUE(client.run_program(img));
  // The entry line was just executed, so it is resident in the icache.
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kICacheLine, img.entry, 0x1}});
  // A line nothing fetched cannot be poisoned.
  plan.events.push_back(
      {{TriggerKind::kCycle, 0},
       {FaultSite::kICacheLine, mem::map::kSramBase + 0xf000, 0x1}});
  FaultInjector inj(node, plan);
  ASSERT_EQ(inj.fired().size(), 2u);
  EXPECT_TRUE(inj.fired()[0].landed);
  EXPECT_FALSE(inj.fired()[1].landed);
  EXPECT_EQ(inj.stats().landed, 1u);
  EXPECT_EQ(inj.stats().missed, 1u);
  EXPECT_EQ(node.metrics().counter("fault.missed").value(), 1u);
}

TEST(FaultInjector, RegisterFlipXorsTheCurrentWindow) {
  sim::LiquidSystem node;
  booted(node);
  const u8 reg = 9;  // %o1
  cpu::CpuState& st = node.cpu().state();
  const u32 before = st.regs.get(st.psr.cwp, reg);
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0},
       {FaultSite::kRegister, 0, 0x8000'0001, reg}});
  FaultInjector inj(node, plan);
  EXPECT_EQ(st.regs.get(st.psr.cwp, reg), before ^ 0x8000'0001u);
}

TEST(FaultInjector, PermanentWedgeStallsThePipeline) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kCpuWedge, 0, 1, 1, 0}});
  FaultInjector inj(node, plan);
  const Addr pc = node.cpu().state().pc;
  const Cycles t0 = node.now();
  node.run(100);
  EXPECT_TRUE(node.cpu().wedged());
  EXPECT_EQ(node.cpu().state().pc, pc);  // no progress...
  EXPECT_GT(node.now(), t0);            // ...but time still flows
}

TEST(FaultInjector, TimedWedgeReleasesItself) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kCpuWedge, 0, 1, 1, 30}});
  FaultInjector inj(node, plan);
  node.run(200);
  EXPECT_FALSE(node.cpu().wedged());
}

TEST(FaultInjector, ChannelSitesArmTheForcedFaultHooks) {
  sim::LiquidSystem node;
  booted(node);
  ctrl::LiquidClient client(node);
  FaultPlan plan;
  plan.events.push_back({{TriggerKind::kCycle, 0},
                         {FaultSite::kChannelCorrupt, 0, 1, 1, 0, false}});
  plan.events.push_back({{TriggerKind::kCycle, 0},
                         {FaultSite::kChannelDelay, 0, 1, 1, 3, true}});
  FaultInjector inj(node, plan, &client.uplink_mut(),
                    &client.downlink_mut());
  ASSERT_EQ(inj.fired().size(), 2u);
  // The next uplink frame is corrupted in flight; the node's wrappers
  // reject it on checksum, so the command succeeds via retry.
  ASSERT_TRUE(client.status());
  EXPECT_EQ(client.uplink().stats().corrupted, 1u);
  EXPECT_GE(client.downlink().stats().delayed, 1u);
}

TEST(FaultInjector, ChannelSiteWithoutChannelsMisses) {
  sim::LiquidSystem node;
  booted(node);
  FaultPlan plan;
  plan.events.push_back(
      {{TriggerKind::kCycle, 0}, {FaultSite::kChannelTruncate}});
  FaultInjector inj(node, plan);
  ASSERT_EQ(inj.fired().size(), 1u);
  EXPECT_FALSE(inj.fired()[0].landed);
}

}  // namespace
}  // namespace la::fault
