// OnlineStats: Welford moments plus the empty-accumulator contract — an
// extremum nobody observed is NaN, not a fabricated 0.0 (regression: the
// old min()/max() returned 0.0 on empty, which read as a real sample).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/stats.hpp"

namespace la {
namespace {

TEST(OnlineStats, EmptyExtremaAreNaN) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleObservation) {
  OnlineStats s;
  s.add(-3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
  EXPECT_EQ(s.variance(), 0.0);  // n-1 denominator: undefined -> 0
}

TEST(OnlineStats, MomentsMatchClosedForm) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic dataset: sum((x-5)^2) = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, ZeroObservationIsARealMinimum) {
  OnlineStats s;
  s.add(0.0);
  s.add(10.0);
  // 0.0 from data must be distinguishable from the empty case.
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_FALSE(std::isnan(s.min()));
}

TEST(OnlineStats, MergeMatchesSingleStream) {
  OnlineStats left, right, both;
  const double xs[] = {3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  for (int i = 0; i < 7; ++i) {
    (i < 3 ? left : right).add(xs[i]);
    both.add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), both.count());
  EXPECT_NEAR(left.mean(), both.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), both.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), both.min());
  EXPECT_DOUBLE_EQ(left.max(), both.max());
}

TEST(OnlineStats, MergeWithEmptySidesIsIdentity) {
  OnlineStats s, empty;
  s.add(2.0);
  s.add(6.0);
  s.merge(empty);  // no-op
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  OnlineStats fresh;
  fresh.merge(s);  // copies
  EXPECT_EQ(fresh.count(), 2u);
  EXPECT_DOUBLE_EQ(fresh.max(), 6.0);
}

TEST(OnlineStats, MergeOfTwoEmptiesStaysEmpty) {
  OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_TRUE(std::isnan(a.min()));
  EXPECT_TRUE(std::isnan(a.max()));
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(OnlineStats, MergeOfSingleSamplesMatchesTwoAdds) {
  // n = 1 on both sides drives the Chan update through its smallest
  // meaningful case: m2 terms are zero, everything comes from delta.
  OnlineStats a, b, both;
  a.add(3.0);
  b.add(9.0);
  both.add(3.0);
  both.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  EXPECT_DOUBLE_EQ(a.variance(), both.variance());
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(OnlineStats, ExtremaSentinelsSurviveEmptyMerge) {
  // Merging two empties must leave the internal +/-inf sentinels intact:
  // the next real observation still becomes both extrema.
  OnlineStats a, b;
  a.merge(b);
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(OnlineStats, MergeSingleIntoEmptyThenContinue) {
  // merge() into an empty accumulator copies; subsequent add()s must
  // continue the stream as if it had been one accumulator all along.
  OnlineStats single, fresh, straight;
  single.add(4.0);
  fresh.merge(single);
  fresh.add(8.0);
  straight.add(4.0);
  straight.add(8.0);
  EXPECT_EQ(fresh.count(), 2u);
  EXPECT_DOUBLE_EQ(fresh.mean(), straight.mean());
  EXPECT_DOUBLE_EQ(fresh.variance(), straight.variance());
  EXPECT_DOUBLE_EQ(fresh.min(), 4.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 8.0);
}

TEST(OnlineStats, SingleInfiniteObservationIsNotConfusedWithEmpty) {
  // A lone -inf sample equals the internal max sentinel; the NaN-on-empty
  // contract must be driven by the count, not by sentinel comparison.
  OnlineStats s;
  s.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.count(), 1u);
  EXPECT_FALSE(std::isnan(s.max()));
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(SafeRatio, ZeroDenominatorReadsAsZero) {
  EXPECT_EQ(safe_ratio(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(safe_ratio(3, 4), 0.75);
}

}  // namespace
}  // namespace la
