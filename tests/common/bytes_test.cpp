#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace la {
namespace {

TEST(ByteWriter, BigEndianScalars) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  const Bytes expect = {0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(w.bytes(), expect);
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.write_u32(0);
  w.patch_u16(1, 0xbeef);
  const Bytes expect = {0x00, 0xbe, 0xef, 0x00};
  EXPECT_EQ(w.bytes(), expect);
}

TEST(ByteReader, RoundTrip) {
  ByteWriter w;
  w.write_u32(0x01020304);
  w.write_u16(0xa0b0);
  w.write_u8(0x7f);
  const Bytes b = w.take();
  ByteReader r(b);
  EXPECT_EQ(r.read_u32(), 0x01020304u);
  EXPECT_EQ(r.read_u16(), 0xa0b0u);
  EXPECT_EQ(r.read_u8(), 0x7fu);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ReadBytesAndSkip) {
  const Bytes b = {1, 2, 3, 4, 5};
  ByteReader r(b);
  r.skip(1);
  const Bytes got = r.read_bytes(3);
  const Bytes expect = {2, 3, 4};
  EXPECT_EQ(got, expect);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, OverrunThrows) {
  const Bytes b = {1, 2};
  ByteReader r(b);
  EXPECT_THROW(r.read_u32(), std::out_of_range);
  // Failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.read_u16(), 0x0102u);
}

TEST(ByteReader, EmptyReader) {
  ByteReader r({});
  EXPECT_TRUE(r.empty());
  EXPECT_THROW(r.read_u8(), std::out_of_range);
}

}  // namespace
}  // namespace la
