// SpanLog: trace-identity minting, span capture, the Chrome / JSONL
// exports, and the per-phase latency fold into a MetricsRegistry.
#include "common/span_log.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/metrics.hpp"

namespace la::trace {
namespace {

TEST(Mix64, NeverZeroAndWellSpread) {
  EXPECT_NE(mix64(0), 0u);
  std::set<u64> seen;
  for (u64 i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(seen.count(0), 0u);  // 0 is the no-trace sentinel, never an id
}

TEST(SpanLog, MintedRootsAreUniqueNonZeroAndParentless) {
  SpanLog log;
  std::set<u64> traces;
  for (int i = 0; i < 100; ++i) {
    const TraceContext c = log.mint();
    EXPECT_TRUE(c.valid());
    EXPECT_NE(c.span_id, 0u);
    EXPECT_EQ(c.parent_span_id, 0u);
    traces.insert(c.trace_id);
  }
  EXPECT_EQ(traces.size(), 100u);
}

TEST(SpanLog, ChildSharesTraceWithFreshSpanId) {
  SpanLog log;
  const TraceContext root = log.mint();
  const TraceContext kid = log.child(root);
  EXPECT_EQ(kid.trace_id, root.trace_id);
  EXPECT_NE(kid.span_id, root.span_id);
  EXPECT_NE(kid.span_id, 0u);
  EXPECT_EQ(kid.parent_span_id, root.span_id);
}

TEST(JobTrace, InactiveHandleIsANoOp) {
  const JobTrace none;  // no log
  EXPECT_FALSE(none.active());
  none.phase("run", 0.0, 1.0);  // must not crash
  EXPECT_DOUBLE_EQ(none.now_us(), 0.0);

  SpanLog log;
  JobTrace untraced;  // log but zero (invalid) context
  untraced.log = &log;
  EXPECT_FALSE(untraced.active());
  untraced.phase("run", 0.0, 1.0);
  EXPECT_EQ(log.size(), 0u);
}

TEST(JobTrace, PhaseEmitsAChildSpanOfTheJobRoot) {
  SpanLog log;
  JobTrace jt;
  jt.log = &log;
  jt.ctx = log.mint();
  jt.pid = 3;
  jt.tid = 2;
  jt.phase("run", 10.0, 25.5, 42, "cfg-a");
  const auto spans = log.spans();
  ASSERT_EQ(spans.size(), 1u);
  const Span& s = spans[0];
  EXPECT_EQ(s.trace_id, jt.ctx.trace_id);
  EXPECT_EQ(s.parent_span_id, jt.ctx.span_id);
  EXPECT_NE(s.span_id, jt.ctx.span_id);
  EXPECT_EQ(s.name, "run");
  EXPECT_EQ(s.note, "cfg-a");
  EXPECT_EQ(s.pid, 3u);
  EXPECT_EQ(s.tid, 2u);
  EXPECT_DOUBLE_EQ(s.start_us, 10.0);
  EXPECT_DOUBLE_EQ(s.dur_us, 15.5);
  EXPECT_EQ(s.cycle, 42u);
}

TEST(JobTrace, BackwardsClockClampsToZeroDuration) {
  SpanLog log;
  JobTrace jt;
  jt.log = &log;
  jt.ctx = log.mint();
  jt.phase("run", 20.0, 10.0);  // end before start: never a negative span
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log.spans()[0].dur_us, 0.0);
}

TEST(SpanLog, ChromeExportCarriesLaneMetadataAndCompleteEvents) {
  SpanLog log;
  log.set_process_name(1, "node 0");
  log.set_process_name(2, "node 1");
  log.set_thread_name(1, 1, "worker 0");

  Span s;
  s.trace_id = 0xabcd;
  s.span_id = 0x1234;
  s.name = "run";
  s.pid = 2;
  s.tid = 1;
  s.start_us = 5.0;
  s.dur_us = 7.0;
  log.add(s);

  const std::string j = log.to_chrome_json();
  EXPECT_EQ(j.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(j.find("\"node 0\""), std::string::npos);
  EXPECT_NE(j.find("\"node 1\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);
  // The span rides on its node's lane with its trace identity in args.
  EXPECT_NE(j.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(j.find("000000000000abcd"), std::string::npos);
}

TEST(SpanLog, JsonlEmitsOneObjectPerSpanInAppendOrder) {
  SpanLog log;
  for (int i = 0; i < 2; ++i) {
    Span s;
    s.trace_id = 7;
    s.span_id = static_cast<u64>(i + 1);
    s.name = i == 0 ? "first" : "second";
    log.add(s);
  }
  const std::string j = log.to_jsonl();
  ASSERT_FALSE(j.empty());
  EXPECT_EQ(j.back(), '\n');
  std::size_t lines = 0;
  for (const char c : j) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(j.find("{\"trace_id\":\""), 0u);
  EXPECT_LT(j.find("\"first\""), j.find("\"second\""));
}

TEST(SpanLog, ObservePhaseLatenciesFoldsHistogramsAndPercentiles) {
  SpanLog log;
  for (int i = 1; i <= 100; ++i) {
    Span s;
    s.trace_id = 1;
    s.span_id = static_cast<u64>(i);
    s.name = "run";
    s.dur_us = static_cast<double>(i);
    log.add(s);
  }
  metrics::MetricsRegistry reg;
  log.observe_phase_latencies(reg, "farm.phase.");
  const metrics::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.count("farm.phase.run_us"), 1u);
  EXPECT_EQ(snap.histograms.at("farm.phase.run_us").count, 100u);
  // Nearest-rank percentiles over 1..100 are exact.
  EXPECT_DOUBLE_EQ(snap.value_or("farm.phase.run.p50_us"), 50.0);
  EXPECT_DOUBLE_EQ(snap.value_or("farm.phase.run.p95_us"), 95.0);
  EXPECT_DOUBLE_EQ(snap.value_or("farm.phase.run.p99_us"), 99.0);
}

}  // namespace
}  // namespace la::trace
