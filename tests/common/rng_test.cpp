#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace la {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const u32 v = r.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace la
