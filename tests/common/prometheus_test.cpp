// Prometheus text-exposition writer: name mangling, labels, histogram
// series, and the multi-snapshot (labelled) form.
#include "common/prometheus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/metrics.hpp"

namespace la::metrics {
namespace {

TEST(PromName, ManglesToLegalMetricNames) {
  EXPECT_EQ(prom_name("farm.jobs.ok"), "farm_jobs_ok");
  EXPECT_EQ(prom_name("cache.d/read-misses"), "cache_d_read_misses");
  EXPECT_EQ(prom_name("already_legal:name"), "already_legal:name");
  // Leading digit (and the empty string) get the underscore guard.
  EXPECT_EQ(prom_name("9lives"), "_9lives");
  EXPECT_EQ(prom_name(""), "_");
}

TEST(Prom, ScalarsRenderWithPrefixAndLabels) {
  MetricsRegistry r;
  r.counter("farm.jobs").inc(18);
  r.gauge("queue.depth").set(2.5);
  const std::string out =
      to_prometheus(r.snapshot(), "liquid_", {{"node", "3"}});
  EXPECT_NE(out.find("liquid_farm_jobs{node=\"3\"} 18\n"), std::string::npos);
  EXPECT_NE(out.find("liquid_queue_depth{node=\"3\"} 2.5\n"),
            std::string::npos);
}

TEST(Prom, LabelValuesAreEscaped) {
  MetricsRegistry r;
  r.counter("x").inc();
  const std::string out =
      to_prometheus(r.snapshot(), "", {{"key", "a\"b\\c\nd"}});
  EXPECT_NE(out.find("x{key=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

TEST(Prom, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry r;
  Histogram& h = r.histogram("lat");
  h.observe(1.0);
  h.observe(3.0);
  const std::string out = to_prometheus(r.snapshot());
  // The +Inf bucket carries the full count; sum and count close the series.
  EXPECT_NE(out.find("lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("lat_sum 4\n"), std::string::npos);
  EXPECT_NE(out.find("lat_count 2\n"), std::string::npos);
  // Cumulative: every bucket value is <= the next one.
  long prev = -1;
  for (std::size_t p = out.find("lat_bucket"); p != std::string::npos;
       p = out.find("lat_bucket", p + 1)) {
    const std::size_t sp = out.find(' ', p);
    const long v = std::strtol(out.c_str() + sp + 1, nullptr, 10);
    EXPECT_LE(prev, v);
    prev = v;
  }
}

TEST(Prom, EmptyHistogramIsOmitted) {
  MetricsRegistry r;
  r.histogram("never_observed");
  EXPECT_EQ(to_prometheus(r.snapshot()).find("never_observed"),
            std::string::npos);
}

TEST(Prom, NonFiniteScalarsUseExpositionLiterals) {
  MetricsRegistry r;
  r.gauge("nan").set(std::numeric_limits<double>::quiet_NaN());
  r.gauge("pinf").set(std::numeric_limits<double>::infinity());
  r.gauge("ninf").set(-std::numeric_limits<double>::infinity());
  const std::string out = to_prometheus(r.snapshot());
  EXPECT_NE(out.find("nan NaN\n"), std::string::npos);
  EXPECT_NE(out.find("pinf +Inf\n"), std::string::npos);
  EXPECT_NE(out.find("ninf -Inf\n"), std::string::npos);
}

TEST(Prom, LabelledSnapshotsLandInOneExposition) {
  MetricsRegistry a, b;
  a.counter("jobs").inc(3);
  b.counter("jobs").inc(5);
  const Snapshot sa = a.snapshot();
  const Snapshot sb = b.snapshot();
  const std::string out = to_prometheus(
      {LabelledSnapshot{&sa, {{"node", "0"}}},
       LabelledSnapshot{&sb, {{"node", "1"}}},
       LabelledSnapshot{nullptr, {}}},  // null snapshots are skipped
      "liquid_");
  EXPECT_NE(out.find("liquid_jobs{node=\"0\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("liquid_jobs{node=\"1\"} 5\n"), std::string::npos);
}

}  // namespace
}  // namespace la::metrics
