// MetricsRegistry: naming, kinds, bridged callbacks, snapshots, diffs,
// and the JSON wire form every consumer (report, bench, STATS_SNAPSHOT)
// reads.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/metrics.hpp"

namespace la::metrics {
namespace {

TEST(Registry, CounterGetOrCreateReturnsSameObject) {
  MetricsRegistry r;
  Counter& a = r.counter("cache.d.read_misses");
  a.inc(3);
  Counter& b = r.counter("cache.d.read_misses");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::logic_error);
  EXPECT_THROW(r.histogram("x"), std::logic_error);
  EXPECT_THROW(r.register_fn("x", [] { return 0.0; }), std::logic_error);
  r.gauge("g");
  EXPECT_THROW(r.counter("g"), std::logic_error);
}

TEST(Registry, BridgedCallbackSampledAtSnapshotTime) {
  MetricsRegistry r;
  double external = 7.0;
  r.register_fn("bridged", [&] { return external; });
  EXPECT_EQ(r.snapshot().value_or("bridged"), 7.0);
  external = 11.0;  // no re-registration needed: read at snapshot time
  EXPECT_EQ(r.snapshot().value_or("bridged"), 11.0);
  // Re-registering replaces the callback (idempotent component setup).
  r.register_fn("bridged", [] { return -1.0; });
  EXPECT_EQ(r.snapshot().value_or("bridged"), -1.0);
  EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, UnregisterPrefixDropsSubtreeOnly) {
  MetricsRegistry r;
  r.counter("reconfig_cache.hits");
  r.counter("reconfig_cache.misses");
  r.counter("reconfig_server.jobs");
  r.counter("cache.d.read_hits");
  EXPECT_EQ(r.unregister_prefix("reconfig_cache."), 2u);
  EXPECT_FALSE(r.contains("reconfig_cache.hits"));
  EXPECT_TRUE(r.contains("reconfig_server.jobs"));
  EXPECT_TRUE(r.contains("cache.d.read_hits"));
  EXPECT_TRUE(r.unregister("reconfig_server.jobs"));
  EXPECT_FALSE(r.unregister("reconfig_server.jobs"));
  EXPECT_EQ(r.size(), 1u);
}

TEST(Histogram, Log2Buckets) {
  Histogram h;
  h.observe(0.0);   // bucket 0: [0,1)
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 1: [1,2)
  h.observe(2.0);   // bucket 2: [2,4)
  h.observe(3.9);   // bucket 2
  h.observe(1e30);  // clamps into the last bucket
  h.observe(-4.0);  // negatives clamp into bucket 0
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.buckets()[0], 3u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(Histogram::bucket_limit(0), 1.0);
  EXPECT_EQ(Histogram::bucket_limit(2), 4.0);
  EXPECT_TRUE(std::isinf(Histogram::bucket_limit(Histogram::kBuckets - 1)));
}

TEST(Snapshot, ValueU64RoundsAndClampsNegatives) {
  Snapshot s;
  s.values["a"] = 41.9999999;
  s.values["b"] = -3.0;
  EXPECT_EQ(s.value_u64("a"), 42u);
  EXPECT_EQ(s.value_u64("b"), 0u);
  EXPECT_EQ(s.value_u64("missing"), 0u);
  EXPECT_FALSE(s.has("missing"));
  EXPECT_TRUE(s.has("a"));
}

TEST(Snapshot, DiffSubtractsScalarsAndCycles) {
  MetricsRegistry r;
  Counter& c = r.counter("events");
  c.inc(10);
  const Snapshot before = r.snapshot(100);
  c.inc(32);
  const Snapshot after = r.snapshot(250);
  const Snapshot d = after.diff_since(before);
  EXPECT_EQ(d.cycle, 150u);
  EXPECT_EQ(d.value_u64("events"), 32u);
}

TEST(Snapshot, HistogramDiffDerivesWindowMean) {
  MetricsRegistry r;
  Histogram& h = r.histogram("lat");
  h.observe(10.0);
  h.observe(20.0);  // sum 30, count 2
  const Snapshot before = r.snapshot();
  h.observe(60.0);  // window: one sample of 60
  const Snapshot after = r.snapshot();
  const Snapshot d = after.diff_since(before);
  const HistogramSnapshot& w = d.histograms.at("lat");
  EXPECT_EQ(w.count, 1u);
  EXPECT_DOUBLE_EQ(w.mean, 60.0);
  // Spread/extrema of a window are not recoverable from endpoint
  // summaries; they must read as unknown, not as fabricated numbers.
  EXPECT_TRUE(std::isnan(w.stddev));
  EXPECT_TRUE(std::isnan(w.min));
  EXPECT_TRUE(std::isnan(w.max));
}

TEST(Snapshot, DiffPassesThroughNewNamesAndDropsRemovedOnes) {
  Snapshot older, newer;
  older.values["removed"] = 7.0;
  newer.values["added"] = 3.0;
  HistogramSnapshot h;
  h.count = 2;
  h.mean = 5.0;
  h.min = 4.0;
  h.max = 6.0;
  newer.histograms["fresh"] = h;
  const Snapshot d = newer.diff_since(older);
  // A metric that appeared in the window passes through whole — including
  // a histogram's real extrema, since the whole window is observed.
  EXPECT_DOUBLE_EQ(d.value_or("added"), 3.0);
  EXPECT_EQ(d.histograms.at("fresh").count, 2u);
  EXPECT_DOUBLE_EQ(d.histograms.at("fresh").min, 4.0);
  // A metric that vanished (unregistered component) does not resurface.
  EXPECT_FALSE(d.has("removed"));
}

TEST(Snapshot, DiffOfIdenticalEndpointsIsAnEmptyWindow) {
  MetricsRegistry r;
  r.counter("events").inc(9);
  r.histogram("lat").observe(4.0);
  const Snapshot s = r.snapshot(50);
  const Snapshot d = s.diff_since(s);
  EXPECT_EQ(d.cycle, 0u);
  EXPECT_DOUBLE_EQ(d.value_or("events"), 0.0);
  const HistogramSnapshot& w = d.histograms.at("lat");
  EXPECT_EQ(w.count, 0u);
  EXPECT_DOUBLE_EQ(w.mean, 0.0);  // empty window: no fabricated mean
}

TEST(Json, IntegralDoublesPrintWithoutDecimalPoint) {
  std::string out;
  append_json_number(out, 31553.0);
  EXPECT_EQ(out, "31553");  // counters must match text reports exactly
  out.clear();
  append_json_number(out, 0.25);
  EXPECT_EQ(out, "0.25");
  out.clear();
  append_json_number(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  append_json_number(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
}

TEST(Json, StringEscaping) {
  std::string out;
  append_json_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(Json, CompactSnapshotShape) {
  MetricsRegistry r;
  r.counter("b.count").inc(2);
  r.register_fn("a.fn", [] { return 1.5; });
  r.histogram("empty");  // count 0: must be omitted entirely
  const std::string j = r.snapshot(77).to_json(0);
  EXPECT_EQ(j, "{\"cycle\":77,\"metrics\":{\"a.fn\":1.5,\"b.count\":2}}");
}

TEST(Json, HistogramSerializesTrimmedBuckets) {
  MetricsRegistry r;
  Histogram& h = r.histogram("lat");
  h.observe(1.0);
  h.observe(3.0);
  const std::string j = r.snapshot().to_json(0);
  EXPECT_NE(j.find("\"histograms\":{\"lat\":{\"count\":2"), std::string::npos);
  // Buckets [0,1,1] — trailing zeros trimmed.
  EXPECT_NE(j.find("\"buckets\":[0,1,1]}"), std::string::npos);
}

TEST(Merge, CountersGaugesAndFnsFoldIn) {
  MetricsRegistry a;
  a.counter("jobs").inc(3);
  a.gauge("depth").set(2.0);
  a.register_fn("bridged", [] { return 7.0; });

  MetricsRegistry fleet;
  fleet.merge_from(a);
  fleet.merge_from(a);  // a second node with identical shape
  const Snapshot s = fleet.snapshot();
  EXPECT_DOUBLE_EQ(s.value_or("jobs"), 6.0);
  EXPECT_DOUBLE_EQ(s.value_or("depth"), 4.0);
  // Bridged fns are sampled at merge time and accumulate as a gauge.
  EXPECT_DOUBLE_EQ(s.value_or("bridged"), 14.0);
}

TEST(Merge, HistogramsMergeExactly) {
  MetricsRegistry a, b, fleet, reference;
  for (const double x : {1.0, 4.0, 9.0}) a.histogram("lat").observe(x);
  for (const double x : {2.0, 16.0}) b.histogram("lat").observe(x);
  for (const double x : {1.0, 4.0, 9.0, 2.0, 16.0}) {
    reference.histogram("lat").observe(x);
  }
  fleet.merge_from(a);
  fleet.merge_from(b);
  const HistogramSnapshot got = fleet.snapshot().histograms.at("lat");
  const HistogramSnapshot want = reference.snapshot().histograms.at("lat");
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.buckets, want.buckets);
  EXPECT_DOUBLE_EQ(got.mean, want.mean);
  EXPECT_NEAR(got.stddev, want.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(got.min, want.min);
  EXPECT_DOUBLE_EQ(got.max, want.max);
}

TEST(Merge, KindMismatchThrows) {
  MetricsRegistry a, fleet;
  a.counter("x").inc();
  fleet.histogram("x");
  EXPECT_THROW(fleet.merge_from(a), std::logic_error);
}

TEST(Json, IndentedFormEndsWithNewline) {
  MetricsRegistry r;
  r.counter("x").inc();
  const std::string j = r.snapshot().to_json(2);
  EXPECT_EQ(j.back(), '\n');
  EXPECT_NE(j.find("\n  \"metrics\":{"), std::string::npos);
}

}  // namespace
}  // namespace la::metrics
