#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace la {
namespace {

TEST(Bits, ExtractField) {
  EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
  EXPECT_EQ(bits(0xdeadbeef, 3, 0), 0xfu);
  EXPECT_EQ(bits(0xdeadbeef, 31, 0), 0xdeadbeefu);
  EXPECT_EQ(bits(0xffffffff, 15, 8), 0xffu);
  EXPECT_EQ(bits(0x00000100, 8, 8), 1u);
}

TEST(Bits, SingleBit) {
  EXPECT_EQ(bit(0x80000000, 31), 1u);
  EXPECT_EQ(bit(0x80000000, 30), 0u);
  EXPECT_EQ(bit(1, 0), 1u);
}

TEST(Bits, SignExtendPositive) {
  EXPECT_EQ(sign_extend(0x0fff, 13), 0x0fff);
  EXPECT_EQ(sign_extend(0, 13), 0);
  EXPECT_EQ(sign_extend(1, 1), -1);
}

TEST(Bits, SignExtendNegative) {
  EXPECT_EQ(sign_extend(0x1fff, 13), -1);
  EXPECT_EQ(sign_extend(0x1000, 13), -4096);
  EXPECT_EQ(sign_extend(0x3fffff, 22), -1);
  EXPECT_EQ(sign_extend(0x200000, 22), -2097152);
}

TEST(Bits, SignExtendFullWidth) {
  EXPECT_EQ(sign_extend(0xffffffffu, 32), -1);
  EXPECT_EQ(sign_extend(0x7fffffffu, 32), 0x7fffffff);
}

TEST(Bits, Pow2AndLog2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2(1u << 31), 31u);
}

TEST(Bits, Alignment) {
  EXPECT_EQ(align_down(0x1234, 16), 0x1230u);
  EXPECT_EQ(align_up(0x1234, 16), 0x1240u);
  EXPECT_EQ(align_up(0x1230, 16), 0x1230u);
  EXPECT_TRUE(is_aligned(0x1000, 4096));
  EXPECT_FALSE(is_aligned(0x1001, 2));
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

}  // namespace
}  // namespace la
