// Directed decode tests against hand-assembled SPARC V8 words (encodings
// cross-checked with the V8 manual's format diagrams).
#include "isa/decode.hpp"

#include <gtest/gtest.h>

#include "isa/encode.hpp"

namespace la::isa {
namespace {

TEST(Decode, CallPositiveDisplacement) {
  // call .+8  => 0x40000002
  const Instruction i = decode(0x40000002);
  EXPECT_EQ(i.mn, Mnemonic::kCall);
  EXPECT_EQ(i.disp, 2);
}

TEST(Decode, CallNegativeDisplacement) {
  // disp30 = -1 => 0x7fffffff
  const Instruction i = decode(0x7fffffff);
  EXPECT_EQ(i.mn, Mnemonic::kCall);
  EXPECT_EQ(i.disp, -1);
}

TEST(Decode, Sethi) {
  // sethi %hi(0x12345400), %g1 : imm22 = 0x48d15, rd=1
  const u32 w = (1u << 25) | (4u << 22) | 0x48d15u;
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kSethi);
  EXPECT_EQ(i.rd, 1);
  EXPECT_EQ(i.imm22, 0x48d15u);
}

TEST(Decode, NopIsSethiZero) {
  const Instruction i = decode(0x01000000);
  EXPECT_EQ(i.mn, Mnemonic::kSethi);
  EXPECT_EQ(i.rd, 0);
  EXPECT_EQ(i.imm22, 0u);
}

TEST(Decode, BranchAlwaysAnnulled) {
  // ba,a .-4 : a=1 cond=8 op2=2 disp=-1
  const u32 w = (1u << 29) | (8u << 25) | (2u << 22) | 0x3fffffu;
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kBicc);
  EXPECT_EQ(i.cond, Cond::kA);
  EXPECT_TRUE(i.annul);
  EXPECT_EQ(i.disp, -1);
}

TEST(Decode, BranchNotEqual) {
  const u32 w = encode_branch(Cond::kNe, false, 16);
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kBicc);
  EXPECT_EQ(i.cond, Cond::kNe);
  EXPECT_FALSE(i.annul);
  EXPECT_EQ(i.disp, 16);
}

TEST(Decode, Unimp) {
  const Instruction i = decode(0x00000000);
  EXPECT_EQ(i.mn, Mnemonic::kUnimp);
}

TEST(Decode, AddRegReg) {
  // add %g1, %g2, %g3 : op=2 rd=3 op3=0 rs1=1 i=0 rs2=2
  const u32 w = (2u << 30) | (3u << 25) | (0u << 19) | (1u << 14) | 2u;
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kAdd);
  EXPECT_EQ(i.rd, 3);
  EXPECT_EQ(i.rs1, 1);
  EXPECT_EQ(i.rs2, 2);
  EXPECT_FALSE(i.imm);
}

TEST(Decode, SubImmediateNegative) {
  // sub %o0, -42, %o1
  const u32 w = encode_arith_ri(Mnemonic::kSub, 9, 8, -42);
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kSub);
  EXPECT_TRUE(i.imm);
  EXPECT_EQ(i.simm13, -42);
  EXPECT_EQ(i.rs1, 8);
  EXPECT_EQ(i.rd, 9);
}

TEST(Decode, LoadWithAsi) {
  // lda [%g1 + %g2] 0x20, %g3
  const u32 w = encode_mem_rr(Mnemonic::kLda, 3, 1, 2, 0x20);
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kLda);
  EXPECT_EQ(i.asi, 0x20);
  EXPECT_FALSE(i.imm);
}

TEST(Decode, AlternateSpaceWithImmediateIsInvalid) {
  // lda with i=1 is undefined per the manual.
  const u32 w = (3u << 30) | (3u << 25) | (0x10u << 19) | (1u << 14) |
                (1u << 13) | 4u;
  EXPECT_EQ(decode(w).mn, Mnemonic::kInvalid);
}

TEST(Decode, RdyVersusRdasr) {
  EXPECT_EQ(decode(encode_arith_rr(Mnemonic::kRdy, 1, 0, 0)).mn,
            Mnemonic::kRdy);
  EXPECT_EQ(decode(encode_arith_rr(Mnemonic::kRdasr, 1, 17, 0)).mn,
            Mnemonic::kRdasr);
}

TEST(Decode, WryVersusWrasr) {
  EXPECT_EQ(decode(encode_arith_rr(Mnemonic::kWry, 0, 1, 0)).mn,
            Mnemonic::kWry);
  EXPECT_EQ(decode(encode_arith_rr(Mnemonic::kWrasr, 17, 1, 0)).mn,
            Mnemonic::kWrasr);
}

TEST(Decode, TiccCondInRdField) {
  const u32 w = encode_ticc(Cond::kA, 0, 5);
  const Instruction i = decode(w);
  EXPECT_EQ(i.mn, Mnemonic::kTicc);
  EXPECT_EQ(i.cond, Cond::kA);
  EXPECT_TRUE(i.imm);
  EXPECT_EQ(i.simm13 & 0x7f, 5);
}

TEST(Decode, HolesAreInvalid) {
  // op=2, op3=0x09 is a hole in the V8 opcode map.
  const u32 w = (2u << 30) | (0x09u << 19);
  EXPECT_EQ(decode(w).mn, Mnemonic::kInvalid);
  // op=3, op3=0x08 likewise.
  const u32 w2 = (3u << 30) | (0x08u << 19);
  EXPECT_EQ(decode(w2).mn, Mnemonic::kInvalid);
}

TEST(Decode, JmplAndRett) {
  EXPECT_EQ(decode(encode_arith_ri(Mnemonic::kJmpl, 0, 31, 8)).mn,
            Mnemonic::kJmpl);
  EXPECT_EQ(decode(encode_arith_ri(Mnemonic::kRett, 0, 17, 0)).mn,
            Mnemonic::kRett);
}

TEST(Decode, FpopCapturesOpf) {
  Instruction src;
  src.mn = Mnemonic::kFpop1;
  src.rd = 2;
  src.rs1 = 3;
  src.rs2 = 4;
  src.opf = 0x41;  // FADDS
  const Instruction i = decode(encode(src));
  EXPECT_EQ(i.mn, Mnemonic::kFpop1);
  EXPECT_EQ(i.opf, 0x41);
  EXPECT_EQ(i.rs2, 4);
}

TEST(Decode, MemoryPredicates) {
  EXPECT_TRUE(is_load(Mnemonic::kLd));
  EXPECT_FALSE(is_store(Mnemonic::kLd));
  EXPECT_TRUE(is_store(Mnemonic::kStd));
  EXPECT_TRUE(is_load(Mnemonic::kSwap));
  EXPECT_TRUE(is_store(Mnemonic::kSwap));
  EXPECT_EQ(access_size(Mnemonic::kLdub), 1u);
  EXPECT_EQ(access_size(Mnemonic::kLduh), 2u);
  EXPECT_EQ(access_size(Mnemonic::kLd), 4u);
  EXPECT_EQ(access_size(Mnemonic::kLdd), 8u);
}

}  // namespace
}  // namespace la::isa
