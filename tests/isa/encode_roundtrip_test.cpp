// Property test: decode(encode(x)) == x for random valid instructions, and
// encode(decode(w)) == w for random words that decode as valid.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/decode.hpp"
#include "isa/encode.hpp"

namespace la::isa {
namespace {

TEST(EncodeRoundtrip, RandomWordsSurviveDecodeEncode) {
  Rng rng(0xc0de);
  int valid = 0;
  for (int i = 0; i < 200000; ++i) {
    const u32 w = rng.next_u32();
    const Instruction ins = decode(w);
    if (!ins.valid()) continue;
    ++valid;
    const u32 back = encode(ins);
    // Format 2/3 reserved fields (asi on arith ops, unused rs2 with i=1)
    // are don't-cares that decode drops; compare via a second decode.
    const Instruction again = decode(back);
    EXPECT_EQ(again.mn, ins.mn) << "word " << std::hex << w;
    EXPECT_EQ(again.rd, ins.rd) << "word " << std::hex << w;
    EXPECT_EQ(again.rs1, ins.rs1) << "word " << std::hex << w;
    EXPECT_EQ(again.rs2, ins.rs2) << "word " << std::hex << w;
    EXPECT_EQ(again.imm, ins.imm) << "word " << std::hex << w;
    EXPECT_EQ(again.simm13, ins.simm13) << "word " << std::hex << w;
    EXPECT_EQ(again.imm22, ins.imm22) << "word " << std::hex << w;
    EXPECT_EQ(again.disp, ins.disp) << "word " << std::hex << w;
    EXPECT_EQ(again.cond, ins.cond) << "word " << std::hex << w;
    EXPECT_EQ(again.annul, ins.annul) << "word " << std::hex << w;
    EXPECT_EQ(again.asi, ins.asi) << "word " << std::hex << w;
    EXPECT_EQ(again.opf, ins.opf) << "word " << std::hex << w;
  }
  // The V8 opcode map is dense; the vast majority of random words decode.
  EXPECT_GT(valid, 100000);
}

TEST(EncodeRoundtrip, BuildersDecodeBack) {
  // encode_* builders -> decode -> identical fields.
  {
    const Instruction i = decode(encode_call(-1234));
    EXPECT_EQ(i.mn, Mnemonic::kCall);
    EXPECT_EQ(i.disp, -1234);
  }
  {
    const Instruction i = decode(encode_branch(Cond::kGu, true, -100));
    EXPECT_EQ(i.cond, Cond::kGu);
    EXPECT_TRUE(i.annul);
    EXPECT_EQ(i.disp, -100);
  }
  {
    const Instruction i = decode(encode_arith_ri(Mnemonic::kXnorcc, 31, 17, -4096));
    EXPECT_EQ(i.mn, Mnemonic::kXnorcc);
    EXPECT_EQ(i.rd, 31);
    EXPECT_EQ(i.rs1, 17);
    EXPECT_EQ(i.simm13, -4096);
  }
  {
    const Instruction i = decode(encode_mem_ri(Mnemonic::kStd, 8, 14, 64));
    EXPECT_EQ(i.mn, Mnemonic::kStd);
    EXPECT_EQ(i.rd, 8);
    EXPECT_EQ(i.rs1, 14);
    EXPECT_EQ(i.simm13, 64);
  }
}

TEST(EncodeRoundtrip, AllArithMnemonicsRoundTrip) {
  const Mnemonic ms[] = {
      Mnemonic::kAdd, Mnemonic::kAddcc, Mnemonic::kAddx, Mnemonic::kAddxcc,
      Mnemonic::kSub, Mnemonic::kSubcc, Mnemonic::kSubx, Mnemonic::kSubxcc,
      Mnemonic::kAnd, Mnemonic::kAndcc, Mnemonic::kAndn, Mnemonic::kAndncc,
      Mnemonic::kOr, Mnemonic::kOrcc, Mnemonic::kOrn, Mnemonic::kOrncc,
      Mnemonic::kXor, Mnemonic::kXorcc, Mnemonic::kXnor, Mnemonic::kXnorcc,
      Mnemonic::kSll, Mnemonic::kSrl, Mnemonic::kSra,
      Mnemonic::kTaddcc, Mnemonic::kTsubcc, Mnemonic::kTaddcctv,
      Mnemonic::kTsubcctv, Mnemonic::kMulscc,
      Mnemonic::kUmul, Mnemonic::kUmulcc, Mnemonic::kSmul, Mnemonic::kSmulcc,
      Mnemonic::kUdiv, Mnemonic::kUdivcc, Mnemonic::kSdiv, Mnemonic::kSdivcc,
      Mnemonic::kSave, Mnemonic::kRestore, Mnemonic::kJmpl, Mnemonic::kFlush,
  };
  for (const Mnemonic m : ms) {
    EXPECT_EQ(decode(encode_arith_rr(m, 5, 6, 7)).mn, m);
    EXPECT_EQ(decode(encode_arith_ri(m, 5, 6, 42)).mn, m);
  }
}

TEST(EncodeRoundtrip, AllMemMnemonicsRoundTrip) {
  const Mnemonic plain[] = {
      Mnemonic::kLd, Mnemonic::kLdub, Mnemonic::kLduh, Mnemonic::kLdd,
      Mnemonic::kLdsb, Mnemonic::kLdsh, Mnemonic::kSt, Mnemonic::kStb,
      Mnemonic::kSth, Mnemonic::kStd, Mnemonic::kLdstub, Mnemonic::kSwap,
  };
  for (const Mnemonic m : plain) {
    EXPECT_EQ(decode(encode_mem_rr(m, 2, 3, 4)).mn, m);
    EXPECT_EQ(decode(encode_mem_ri(m, 2, 3, -8)).mn, m);
  }
  const Mnemonic alt[] = {
      Mnemonic::kLda, Mnemonic::kLduba, Mnemonic::kLduha, Mnemonic::kLdda,
      Mnemonic::kLdsba, Mnemonic::kLdsha, Mnemonic::kSta, Mnemonic::kStba,
      Mnemonic::kStha, Mnemonic::kStda, Mnemonic::kLdstuba, Mnemonic::kSwapa,
  };
  for (const Mnemonic m : alt) {
    const Instruction i = decode(encode_mem_rr(m, 2, 3, 4, 0x8a));
    EXPECT_EQ(i.mn, m);
    EXPECT_EQ(i.asi, 0x8a);
  }
}

}  // namespace
}  // namespace la::isa
