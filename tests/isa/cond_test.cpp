// Exhaustive check of integer condition evaluation over all 16 conditions
// and all 16 flag combinations against the V8 manual's truth table.
#include <gtest/gtest.h>

#include "isa/isa.hpp"

namespace la::isa {
namespace {

struct Flags {
  bool n, z, v, c;
};

// Reference implementation straight from the manual's boolean formulas.
bool reference(Cond cond, Flags f) {
  switch (cond) {
    case Cond::kA: return true;
    case Cond::kN: return false;
    case Cond::kNe: return !f.z;
    case Cond::kE: return f.z;
    case Cond::kG: return !(f.z || (f.n != f.v));
    case Cond::kLe: return f.z || (f.n != f.v);
    case Cond::kGe: return !(f.n != f.v);
    case Cond::kL: return f.n != f.v;
    case Cond::kGu: return !(f.c || f.z);
    case Cond::kLeu: return f.c || f.z;
    case Cond::kCc: return !f.c;
    case Cond::kCs: return f.c;
    case Cond::kPos: return !f.n;
    case Cond::kNeg: return f.n;
    case Cond::kVc: return !f.v;
    case Cond::kVs: return f.v;
  }
  return false;
}

TEST(Cond, ExhaustiveAgainstManual) {
  for (unsigned cc = 0; cc < 16; ++cc) {
    for (unsigned fl = 0; fl < 16; ++fl) {
      const Flags f{(fl & 8) != 0, (fl & 4) != 0, (fl & 2) != 0,
                    (fl & 1) != 0};
      const Cond cond = static_cast<Cond>(cc);
      EXPECT_EQ(eval_cond(cond, f.n, f.z, f.v, f.c), reference(cond, f))
          << "cond=" << cc << " flags=" << fl;
    }
  }
}

TEST(Cond, ComplementPairs) {
  // Conditions 1..7 are the complements of 9..15 (cond ^ 8).
  for (unsigned cc = 1; cc < 8; ++cc) {
    for (unsigned fl = 0; fl < 16; ++fl) {
      const bool n = (fl & 8) != 0, z = (fl & 4) != 0, v = (fl & 2) != 0,
                 c = (fl & 1) != 0;
      EXPECT_NE(eval_cond(static_cast<Cond>(cc), n, z, v, c),
                eval_cond(static_cast<Cond>(cc | 8), n, z, v, c));
    }
  }
}

}  // namespace
}  // namespace la::isa
