#include "isa/disasm.hpp"

#include <gtest/gtest.h>

#include "isa/encode.hpp"

namespace la::isa {
namespace {

TEST(Disasm, Nop) {
  EXPECT_EQ(disassemble_word(encode_nop()), "nop");
}

TEST(Disasm, ThreeOperandArith) {
  EXPECT_EQ(disassemble_word(encode_arith_rr(Mnemonic::kAdd, 3, 1, 2)),
            "add %g1, %g2, %g3");
  EXPECT_EQ(disassemble_word(encode_arith_ri(Mnemonic::kSubcc, 9, 8, -4)),
            "subcc %o0, -4, %o1");
}

TEST(Disasm, LoadStore) {
  EXPECT_EQ(disassemble_word(encode_mem_ri(Mnemonic::kLd, 2, 1, 8)),
            "ld [%g1 + 8], %g2");
  EXPECT_EQ(disassemble_word(encode_mem_ri(Mnemonic::kSt, 2, 14, -16)),
            "st %g2, [%sp - 16]");
  EXPECT_EQ(disassemble_word(encode_mem_rr(Mnemonic::kLdd, 4, 1, 2)),
            "ldd [%g1 + %g2], %g4");
}

TEST(Disasm, BranchWithTarget) {
  // bne,a with pc=0x1000, disp=+4 words -> target 0x1010
  const u32 w = encode_branch(Cond::kNe, true, 4);
  EXPECT_EQ(disassemble_word(w, 0x1000), "bne,a 0x00001010");
}

TEST(Disasm, CallTarget) {
  EXPECT_EQ(disassemble_word(encode_call(4), 0x2000), "call 0x00002010");
}

TEST(Disasm, RetAndRetl) {
  EXPECT_EQ(disassemble_word(encode_arith_ri(Mnemonic::kJmpl, 0, 31, 8)),
            "ret");
  EXPECT_EQ(disassemble_word(encode_arith_ri(Mnemonic::kJmpl, 0, 15, 8)),
            "retl");
}

TEST(Disasm, SpecialRegisters) {
  EXPECT_EQ(disassemble_word(encode_arith_rr(Mnemonic::kRdpsr, 1, 0, 0)),
            "rd %psr, %g1");
  EXPECT_EQ(disassemble_word(encode_arith_ri(Mnemonic::kWrwim, 0, 2, 0)),
            "wr %g2, 0, %wim");
}

TEST(Disasm, InvalidBecomesWordDirective) {
  // op=2 op3=0x09 is a hole.
  const u32 w = (2u << 30) | (0x09u << 19);
  const std::string s = disassemble_word(w);
  EXPECT_NE(s.find(".word"), std::string::npos);
  EXPECT_NE(s.find("invalid"), std::string::npos);
}

TEST(Disasm, Ticc) {
  EXPECT_EQ(disassemble_word(encode_ticc(Cond::kA, 0, 3)), "ta 3");
}

}  // namespace
}  // namespace la::isa
