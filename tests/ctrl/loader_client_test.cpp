// Host-side control software: program packetization and client failure
// behaviour on dead/terrible channels.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "ctrl/loader.hpp"
#include "sasm/assembler.hpp"

namespace la::ctrl {
namespace {

sasm::Image image_of_size(std::size_t bytes) {
  std::string src = "    .org 0x40000100\n_start:\n    .skip " +
                    std::to_string(bytes) + ", 0x5a\n";
  return sasm::assemble_or_throw(src);
}

TEST(Loader, SingleChunkForSmallImage) {
  const auto chunks = packetize(image_of_size(100), 1024);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].total_packets, 1);
  EXPECT_EQ(chunks[0].sequence, 0);
  EXPECT_EQ(chunks[0].address, 0x40000100u);
  EXPECT_EQ(chunks[0].data.size(), 100u);
  EXPECT_EQ(chunks[0].data[0], 0x5a);
}

TEST(Loader, ChunkMathIsExact) {
  const auto chunks = packetize(image_of_size(2500), 1024);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].data.size(), 1024u);
  EXPECT_EQ(chunks[1].data.size(), 1024u);
  EXPECT_EQ(chunks[2].data.size(), 452u);
  EXPECT_EQ(chunks[1].address, 0x40000100u + 1024);
  EXPECT_EQ(chunks[2].address, 0x40000100u + 2048);
  for (const auto& c : chunks) EXPECT_EQ(c.total_packets, 3);
}

TEST(Loader, ExactMultipleBoundary) {
  const auto chunks = packetize(image_of_size(2048), 1024);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1].data.size(), 1024u);
}

TEST(Loader, TooManyPacketsRejected) {
  EXPECT_THROW(packetize(image_of_size(256 * 64), 64),
               std::invalid_argument);
  // 255 * 64 exactly fits.
  EXPECT_EQ(packetize(image_of_size(255 * 64), 64).size(), 255u);
}

TEST(Loader, DegenerateArgumentsRejected) {
  EXPECT_THROW(packetize(image_of_size(10), 0), std::invalid_argument);
  sasm::Image empty;
  EXPECT_THROW(packetize(empty, 64), std::invalid_argument);
}

TEST(Loader, SerializedChunkParsesBack) {
  const auto chunks = packetize(image_of_size(300), 128);
  for (const auto& c : chunks) {
    const Bytes wire = c.serialize();
    ByteReader r(wire);
    EXPECT_EQ(r.read_u8(),
              static_cast<u8>(net::CommandCode::kLoadProgram));
    const auto back = net::LoadProgramCmd::parse(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->sequence, c.sequence);
    EXPECT_EQ(back->address, c.address);
    EXPECT_EQ(back->data, c.data);
  }
}

TEST(Client, GivesUpOnDeadChannel) {
  sim::LiquidSystem node;
  node.run(100);
  ClientConfig cfg;
  cfg.uplink.drop = 1.0;  // nothing gets through
  cfg.max_retries = 2;
  cfg.pump_steps = 10;
  LiquidClient client(node, cfg);
  EXPECT_FALSE(client.status().has_value());
  EXPECT_GT(client.stats().gave_up, 0u);
  EXPECT_FALSE(client.start(0x40000100));
  EXPECT_FALSE(client.read_memory(0x40000100, 1).has_value());
}

TEST(Client, DeadDownlinkAlsoGivesUpButNodeActed) {
  sim::LiquidSystem node;
  node.run(100);
  ClientConfig cfg;
  cfg.downlink.drop = 1.0;  // commands arrive, responses vanish
  cfg.max_retries = 2;
  cfg.pump_steps = 10;
  LiquidClient client(node, cfg);
  EXPECT_FALSE(client.status().has_value());
  // The node *did* process the commands: responses were generated and lost.
  EXPECT_GT(node.controller().stats().commands, 0u);
}

TEST(Client, RestartCommandResetsNode) {
  sim::LiquidSystem node;
  node.run(100);
  LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set result, %g1
      mov 1, %g2
      st %g2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
  ASSERT_TRUE(client.run_program(img));
  ASSERT_TRUE(client.restart());
  const auto s = client.status();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, net::LeonState::kIdle);
  // And the node can run again after the restart.
  ASSERT_TRUE(client.run_program(img));
}

}  // namespace
}  // namespace la::ctrl
