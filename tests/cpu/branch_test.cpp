// Delayed control transfer: delay slots, annulment, call/jmpl linkage.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"

namespace la::test {
namespace {

TEST(Branch, DelaySlotExecutesOnTakenBranch) {
  TestCpu c(R"(
      mov 0, %g1
      ba over
      mov 1, %g1        ! delay slot: must execute
      mov 2, %g1        ! skipped
  over:
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 1u);
}

TEST(Branch, AnnulledSlotOnUntakenConditional) {
  TestCpu c(R"(
      cmp %g0, 0          ! Z=1
      bne,a target        ! not taken, a=1 -> delay slot annulled
      mov 1, %g1          ! must NOT execute
      mov 2, %g2
  target:
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0u);
  EXPECT_EQ(c.g(2), 2u);
}

TEST(Branch, TakenConditionalWithAnnulExecutesSlot) {
  TestCpu c(R"(
      cmp %g0, 0
      be,a target         ! taken, a=1 -> delay slot EXECUTES
      mov 1, %g1
      mov 2, %g1          ! skipped
  target:
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 1u);
}

TEST(Branch, BranchAlwaysAnnulledSkipsSlot) {
  TestCpu c(R"(
      ba,a target         ! ba with a=1 annuls its delay slot
      mov 1, %g1          ! must NOT execute
      mov 2, %g1
  target:
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0u);
}

TEST(Branch, BranchNeverIsNop) {
  TestCpu c(R"(
      bn target
      mov 1, %g1          ! delay slot of untaken bn executes (a=0)
      mov 2, %g2
  target:
      mov 3, %g3
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 1u);
  EXPECT_EQ(c.g(2), 2u);
  EXPECT_EQ(c.g(3), 3u);
}

TEST(Branch, ConditionalLoop) {
  TestCpu c(R"(
      mov 0, %g1
      mov 0, %g2
  loop:
      add %g2, %g1, %g2   ! g2 += g1
      add %g1, 1, %g1
      cmp %g1, 10
      bl loop
      nop
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 10u);
  EXPECT_EQ(c.g(2), 45u);
}

TEST(Branch, UnsignedConditions) {
  TestCpu c(R"(
      set 0x80000000, %g1
      cmp %g1, 1
      bgu upos            ! unsigned: 0x80000000 > 1
      nop
      mov 0, %g2
      ba join
      nop
  upos:
      mov 1, %g2
  join:
      cmp %g1, 1
      bg spos             ! signed: 0x80000000 < 1, not taken
      nop
      mov 0, %g3
      ba done
      nop
  spos:
      mov 1, %g3
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 1u);
  EXPECT_EQ(c.g(3), 0u);
}

TEST(Branch, CallWritesO7) {
  TestCpu c(R"(
      .org 0x100
  _start:
      call func
      nop
      mov 7, %g2
  done: ba done
      nop
  func:
      mov 1, %g1
      retl
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 1u);
  EXPECT_EQ(c.g(2), 7u);
  EXPECT_EQ(c.o(7), 0x100u);  // pc of the call itself
}

TEST(Branch, JmplIndirect) {
  TestCpu c(R"(
      set target, %g1
      jmpl %g1, %g5       ! g5 = pc of jmpl
      nop
      mov 9, %g2          ! skipped
  target:
      mov 1, %g3
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0u);
  EXPECT_EQ(c.g(3), 1u);
  EXPECT_EQ(c.g(5), c.image().symbol("target") - 12);
}

TEST(Branch, BackToBackCti) {
  // A CTI in the delay slot of another CTI (a "DCTI couple"): the first
  // transfer happens, its delay-slot CTI redirects the following flow.
  TestCpu c(R"(
      ba a
      ba b
      nop
  a:  mov 1, %g1          ! executed: target of first ba
      ba done
      nop
  b:  mov 2, %g2          ! executed: target of second ba (after one insn at a)
  done: ba done
      nop
  )");
  // pc sequence: ba a; ba b (slot); a: mov; b: mov2 ... per V8 DCTI rules.
  c.run_to("done");
  EXPECT_EQ(c.g(1), 1u);
  EXPECT_EQ(c.g(2), 2u);
}

}  // namespace
}  // namespace la::test
