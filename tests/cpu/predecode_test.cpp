// Predecode-mirror invalidation: self-modifying code must behave
// identically with the host fast paths (predecoded I-cache line mirror,
// word-keyed decode cache) on and off — including the architecturally
// stale case, where a store to the line the PC is executing from is NOT
// visible until the line is flushed (LEON caches snoop nothing).
#include <gtest/gtest.h>

#include <string>

#include "pipeline_test_util.hpp"

namespace la::test {
namespace {

/// Self-modifying kernel.  Pass 1 executes `patch:` as `add %g5, 1, %g5`,
/// stores the word at `newins:` (`add %g5, 10, %g5`) over it, optionally
/// flushes the patched line, and loops; pass 2 re-executes `patch:` and
/// exits.  Final %g5: 2 when the second pass fetched the stale cached
/// instruction, 11 when it fetched the patched one.
std::string smc_kernel(bool with_flush) {
  return std::string(R"(
      .org 0x40000100
  _start:
      mov 0, %g5
      mov 0, %g6
      set patch, %o0
      set newins, %o1
      ld [%o1], %o2
  patch:
      add %g5, 1, %g5
      cmp %g6, 1
      be done
      nop
      mov 1, %g6
      st %o2, [%o0]
  )") + (with_flush ? "    flush %o0\n" : "") + R"(
      ba patch
      nop
  newins:
      add %g5, 10, %g5
  done: ba done
      nop
  )";
}

void expect_identical(PipeSys& fast, PipeSys& slow) {
  const cpu::CpuState& a = fast.pipe().state();
  const cpu::CpuState& b = slow.pipe().state();
  EXPECT_EQ(a.pc, b.pc);
  EXPECT_EQ(a.npc, b.npc);
  EXPECT_EQ(a.psr.pack(), b.psr.pack());
  for (u8 r = 0; r < 32; ++r) EXPECT_EQ(a.reg(r), b.reg(r)) << "reg " << +r;
  EXPECT_EQ(fast.clock(), slow.clock());

  const cpu::PipelineStats& sa = fast.pipe().stats();
  const cpu::PipelineStats& sb = slow.pipe().stats();
  EXPECT_EQ(sa.instructions, sb.instructions);
  EXPECT_EQ(sa.annulled, sb.annulled);
  EXPECT_EQ(sa.traps, sb.traps);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.icache_stall, sb.icache_stall);
  EXPECT_EQ(sa.dcache_stall, sb.dcache_stall);
  EXPECT_EQ(sa.store_stall, sb.store_stall);
  EXPECT_EQ(sa.loads, sb.loads);
  EXPECT_EQ(sa.stores, sb.stores);
  EXPECT_EQ(sa.branches, sb.branches);
  EXPECT_EQ(sa.taken_branches, sb.taken_branches);
  EXPECT_EQ(sa.calls, sb.calls);
  EXPECT_EQ(sa.muldiv, sb.muldiv);

  const auto cmp_cache = [](const cache::CacheStats& x,
                            const cache::CacheStats& y) {
    EXPECT_EQ(x.read_hits, y.read_hits);
    EXPECT_EQ(x.read_misses, y.read_misses);
    EXPECT_EQ(x.write_hits, y.write_hits);
    EXPECT_EQ(x.write_misses, y.write_misses);
    EXPECT_EQ(x.evictions, y.evictions);
    EXPECT_EQ(x.writebacks, y.writebacks);
  };
  cmp_cache(fast.pipe().icache().stats(), slow.pipe().icache().stats());
  cmp_cache(fast.pipe().dcache().stats(), slow.pipe().dcache().stats());
}

cpu::PipelineConfig with_fast(cpu::PipelineConfig cfg, bool fast) {
  cfg.host_fast_paths = fast;
  cfg.cpu.host_decode_cache = fast;
  return cfg;
}

/// Run the kernel under fast and slow paths, assert both agree with each
/// other AND with the architecturally expected %g5.
void check_smc(bool with_flush, const cpu::PipelineConfig& base,
               u32 expect_g5) {
  const std::string src = smc_kernel(with_flush);
  PipeSys fast(src, with_fast(base, true));
  PipeSys slow(src, with_fast(base, false));
  fast.run_to("done");
  slow.run_to("done");
  EXPECT_EQ(fast.g(5), expect_g5);
  EXPECT_EQ(slow.g(5), expect_g5);
  expect_identical(fast, slow);
}

TEST(Predecode, SmcStaleWithoutFlushCacheOn) {
  // The patched line stays resident, so pass 2 executes the old
  // instruction: the mirror must be exactly as stale as the I-cache.
  check_smc(/*with_flush=*/false, cpu::PipelineConfig{}, 2);
}

TEST(Predecode, SmcVisibleAfterFlushCacheOn) {
  // `flush` invalidates the patched I-line; the refill re-reads memory
  // and must re-predecode the line (a stale mirror here would execute
  // the old instruction only on the fast path).
  check_smc(/*with_flush=*/true, cpu::PipelineConfig{}, 11);
}

TEST(Predecode, SmcVisibleImmediatelyCacheOff) {
  // No caches: every fetch goes to memory, so the store is visible on
  // the very next execution of the line, flush or not.
  cpu::PipelineConfig nocache;
  nocache.icache_enabled = false;
  nocache.dcache_enabled = false;
  nocache.write_buffer_depth = 0;
  check_smc(/*with_flush=*/false, nocache, 11);
  check_smc(/*with_flush=*/true, nocache, 11);
}

TEST(Predecode, SmcStaleWithTinyCache) {
  // 128 B / 16 B-line I-cache: the patch loop still fits in four lines,
  // but cross-check under the geometry the fuzz rotation uses.
  cpu::PipelineConfig tiny;
  tiny.icache.size_bytes = 128;
  tiny.icache.line_bytes = 16;
  tiny.dcache.size_bytes = 128;
  tiny.dcache.line_bytes = 16;
  check_smc(/*with_flush=*/false, tiny, 2);
  check_smc(/*with_flush=*/true, tiny, 11);
}

}  // namespace
}  // namespace la::test
