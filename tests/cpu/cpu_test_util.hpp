// Shared harness for CPU tests: assemble a source string, load it into a
// flat RAM, and run the functional integer unit until a label is reached.
#pragma once

#include <gtest/gtest.h>

#include <string_view>

#include "common/bits.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "sasm/assembler.hpp"

namespace la::test {

class TestCpu {
 public:
  explicit TestCpu(std::string_view source, cpu::CpuConfig cfg = {})
      : img_(sasm::assemble_or_throw(source)),
        mem_(kMemBytes, static_cast<Addr>(align_down(img_.base, 0x10000))),
        iu_(cfg, mem_) {
    mem_.load(img_.base, img_.data);
    iu_.reset(img_.entry);
  }

  /// Run until the PC reaches `label` (or `max` steps elapse) and assert
  /// the label was reached without entering error mode.
  void run_to(std::string_view label, u64 max = 100000) {
    const Addr halt = img_.symbol(label);
    iu_.run(max, halt);
    ASSERT_FALSE(iu_.state().error_mode)
        << "CPU entered error mode, tt=" << int{iu_.state().tbr_tt()};
    ASSERT_EQ(iu_.state().pc, halt) << "did not reach label " << label;
  }

  u32 reg(u8 r) const { return iu_.state().reg(r); }
  u32 g(unsigned n) const { return reg(static_cast<u8>(n)); }
  u32 o(unsigned n) const { return reg(static_cast<u8>(8 + n)); }
  u32 l(unsigned n) const { return reg(static_cast<u8>(16 + n)); }
  u32 in(unsigned n) const { return reg(static_cast<u8>(24 + n)); }

  const sasm::Image& image() const { return img_; }
  cpu::FlatMemory& mem() { return mem_; }
  cpu::IntegerUnit& iu() { return iu_; }
  const cpu::Psr& psr() const { return iu_.state().psr; }

 private:
  static constexpr std::size_t kMemBytes = 2u << 20;

  sasm::Image img_;
  cpu::FlatMemory mem_;
  cpu::IntegerUnit iu_;
};

/// Standard prologue: supervisor mode with traps enabled (PIL=10, CWP=0).
inline constexpr std::string_view kEnableTraps =
    "    wr %g0, 0xaa0, %psr   ! S=1 ET=1 PIL=10 CWP=0\n";

}  // namespace la::test
