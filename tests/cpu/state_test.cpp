// Architectural state plumbing: PSR pack/unpack and register-window
// aliasing invariants.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cpu/state.hpp"

namespace la::cpu {
namespace {

TEST(Psr, PackUnpackRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    Psr p;
    p.n = rng.chance(0.5);
    p.z = rng.chance(0.5);
    p.v = rng.chance(0.5);
    p.c = rng.chance(0.5);
    p.ec = rng.chance(0.5);
    p.ef = rng.chance(0.5);
    p.pil = static_cast<u8>(rng.below(16));
    p.s = rng.chance(0.5);
    p.ps = rng.chance(0.5);
    p.et = rng.chance(0.5);
    p.cwp = static_cast<u8>(rng.below(32));
    Psr q;
    q.unpack(p.pack());
    EXPECT_EQ(q.pack(), p.pack());
    EXPECT_EQ(q.pil, p.pil);
    EXPECT_EQ(q.cwp, p.cwp);
  }
}

TEST(Psr, ImplVerFieldsConstant) {
  Psr p;
  p.unpack(0);  // attempt to zero everything
  EXPECT_EQ(p.pack() >> 24, (Psr::kImpl << 4) | Psr::kVer);
}

TEST(RegisterFile, G0AlwaysZero) {
  RegisterFile rf(8);
  rf.set(0, 0, 0xffffffff);
  EXPECT_EQ(rf.get(0, 0), 0u);
  EXPECT_EQ(rf.get(5, 0), 0u);
}

TEST(RegisterFile, GlobalsSharedAcrossWindows) {
  RegisterFile rf(8);
  rf.set(0, 1, 111);
  for (unsigned w = 0; w < 8; ++w) EXPECT_EQ(rf.get(w, 1), 111u);
}

TEST(RegisterFile, InsAliasNextWindowsOuts) {
  // ins(w) == outs((w+1) mod N), for every window and register.
  for (const unsigned nw : {4u, 8u, 32u}) {
    RegisterFile rf(nw);
    for (unsigned w = 0; w < nw; ++w) {
      for (u8 r = 0; r < 8; ++r) {
        const u32 v = w * 100 + r + 1;
        rf.set(w, static_cast<u8>(24 + r), v);  // write %iN of window w
        EXPECT_EQ(rf.get((w + 1) % nw, static_cast<u8>(8 + r)), v)
            << "nw=" << nw << " w=" << w << " r=" << int{r};
      }
    }
  }
}

TEST(RegisterFile, LocalsArePrivate) {
  RegisterFile rf(8);
  for (unsigned w = 0; w < 8; ++w) {
    rf.set(w, 16, w + 1);  // %l0
  }
  for (unsigned w = 0; w < 8; ++w) {
    EXPECT_EQ(rf.get(w, 16), w + 1);
  }
}

TEST(RegisterFile, FullWalkIsConsistent) {
  // Write a unique value through every (window, reg) port, then read the
  // whole file back through the aliasing map and require consistency.
  Rng rng(9);
  RegisterFile rf(8);
  // Model: 8 globals + 8*16 window slots.
  std::vector<u32> shadow(8 + 8 * 16, 0);
  const auto slot = [&](unsigned w, u8 r) -> int {
    if (r == 0) return -1;
    if (r < 8) return r;
    if (r < 16) return 8 + static_cast<int>(w * 16 + (r - 8));
    if (r < 24) return 8 + static_cast<int>(w * 16 + 8 + (r - 16));
    return 8 + static_cast<int>(((w + 1) % 8) * 16 + (r - 24));
  };
  for (int i = 0; i < 20000; ++i) {
    const unsigned w = rng.below(8);
    const u8 r = static_cast<u8>(rng.below(32));
    if (rng.chance(0.5)) {
      const u32 v = rng.next_u32();
      rf.set(w, r, v);
      if (slot(w, r) >= 0) shadow[static_cast<std::size_t>(slot(w, r))] = v;
    } else {
      const u32 expect =
          slot(w, r) < 0 ? 0u
                         : shadow[static_cast<std::size_t>(slot(w, r))];
      ASSERT_EQ(rf.get(w, r), expect) << "w=" << w << " r=" << int{r};
    }
  }
}

TEST(CpuState, TbrTtField) {
  CpuState st;
  st.tbr = 0x40020000;
  st.set_tbr_tt(0x85);
  EXPECT_EQ(st.tbr_tt(), 0x85);
  EXPECT_EQ(st.tbr & 0xfffff000u, 0x40020000u);  // base preserved
  EXPECT_EQ(st.tbr & 0xfu, 0u);                  // low bits zero
}

}  // namespace
}  // namespace la::cpu
