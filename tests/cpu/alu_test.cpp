// ALU semantics of the functional integer unit: arithmetic, logic, shifts,
// condition codes, and tagged arithmetic.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"

namespace la::test {
namespace {

TEST(Alu, BasicArithmetic) {
  TestCpu c(R"(
      mov 10, %g1
      mov 3, %g2
      add %g1, %g2, %g3
      sub %g1, %g2, %g4
      add %g1, -5, %g5
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 13u);
  EXPECT_EQ(c.g(4), 7u);
  EXPECT_EQ(c.g(5), 5u);
}

TEST(Alu, G0IsAlwaysZero) {
  TestCpu c(R"(
      mov 42, %g0
      add %g0, %g0, %g1
      or %g0, 7, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(0), 0u);
  EXPECT_EQ(c.g(1), 0u);
  EXPECT_EQ(c.g(2), 7u);
}

TEST(Alu, LogicOps) {
  TestCpu c(R"(
      set 0xff00ff00, %g1
      set 0x0ff00ff0, %g2
      and %g1, %g2, %g3
      or %g1, %g2, %g4
      xor %g1, %g2, %g5
      andn %g1, %g2, %g6
      orn %g1, %g2, %g7
      xnor %g1, %g2, %o0
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0xff00ff00u & 0x0ff00ff0u);
  EXPECT_EQ(c.g(4), 0xff00ff00u | 0x0ff00ff0u);
  EXPECT_EQ(c.g(5), 0xff00ff00u ^ 0x0ff00ff0u);
  EXPECT_EQ(c.g(6), 0xff00ff00u & ~0x0ff00ff0u);
  EXPECT_EQ(c.g(7), 0xff00ff00u | ~0x0ff00ff0u);
  EXPECT_EQ(c.o(0), 0xff00ff00u ^ ~0x0ff00ff0u);
}

TEST(Alu, Shifts) {
  TestCpu c(R"(
      set 0x80000001, %g1
      sll %g1, 4, %g2
      srl %g1, 4, %g3
      sra %g1, 4, %g4
      mov 36, %g5          ! shift counts use only the low 5 bits
      sll %g1, %g5, %g6
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0x00000010u);
  EXPECT_EQ(c.g(3), 0x08000000u);
  EXPECT_EQ(c.g(4), 0xf8000000u);
  EXPECT_EQ(c.g(6), 0x80000001u << 4);  // 36 & 31 == 4
}

TEST(Alu, AddccFlags) {
  // 0x7fffffff + 1 overflows: N=1 V=1 Z=0 C=0.
  TestCpu c(R"(
      set 0x7fffffff, %g1
      addcc %g1, 1, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0x80000000u);
  EXPECT_TRUE(c.psr().n);
  EXPECT_FALSE(c.psr().z);
  EXPECT_TRUE(c.psr().v);
  EXPECT_FALSE(c.psr().c);
}

TEST(Alu, AddccCarry) {
  // 0xffffffff + 1 = 0 with carry out: Z=1 C=1 V=0.
  TestCpu c(R"(
      set 0xffffffff, %g1
      addcc %g1, 1, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0u);
  EXPECT_TRUE(c.psr().z);
  EXPECT_TRUE(c.psr().c);
  EXPECT_FALSE(c.psr().v);
  EXPECT_FALSE(c.psr().n);
}

TEST(Alu, SubccBorrowAndOverflow) {
  // 0 - 1: borrow (C=1), negative.
  TestCpu c(R"(
      subcc %g0, 1, %g1
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0xffffffffu);
  EXPECT_TRUE(c.psr().c);
  EXPECT_TRUE(c.psr().n);
  EXPECT_FALSE(c.psr().v);

  // INT_MIN - 1 overflows.
  TestCpu d(R"(
      set 0x80000000, %g1
      subcc %g1, 1, %g2
  done: ba done
      nop
  )");
  d.run_to("done");
  EXPECT_EQ(d.g(2), 0x7fffffffu);
  EXPECT_TRUE(d.psr().v);
}

TEST(Alu, AddxSubxUseCarry) {
  // 64-bit add: 0x00000001_ffffffff + 1 via addcc/addx.
  TestCpu c(R"(
      set 0xffffffff, %g1   ! low
      mov 1, %g2            ! high
      addcc %g1, 1, %g3     ! low sum, sets C
      addx %g2, 0, %g4      ! high sum + carry
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0u);
  EXPECT_EQ(c.g(4), 2u);
}

TEST(Alu, SethiLoadsUpper22) {
  TestCpu c(R"(
      sethi %hi(0xdeadbeef), %g1
      or %g1, %lo(0xdeadbeef), %g1
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0xdeadbeefu);
}

TEST(Alu, TaddccSetsTagOverflow) {
  // Operands with nonzero low 2 bits set V.
  TestCpu c(R"(
      mov 5, %g1           ! tag bits 01
      taddcc %g1, 4, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 9u);
  EXPECT_TRUE(c.psr().v);

  TestCpu d(R"(
      mov 4, %g1           ! clean tags
      taddcc %g1, 8, %g2
  done: ba done
      nop
  )");
  d.run_to("done");
  EXPECT_EQ(d.g(2), 12u);
  EXPECT_FALSE(d.psr().v);
}

TEST(Alu, YRegisterReadWrite) {
  TestCpu c(R"(
      set 0xcafebabe, %g1
      wr %g0, %g1, %y
      rd %y, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0xcafebabeu);
}

TEST(Alu, WrIsXorOfOperands) {
  // wr rs1, op2, %y writes rs1 XOR op2 (a classic SPARC trap for the
  // unwary — the manual really does specify xor).
  TestCpu c(R"(
      mov 0xf0, %g1
      wr %g1, 0x0f, %y
      rd %y, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0xffu);
}

TEST(Alu, AsrReadWrite) {
  TestCpu c(R"(
      mov 99, %g1
      wr %g1, 0, %asr17
      rd %asr17, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 99u);
}

}  // namespace
}  // namespace la::test
