// The runtime library's window spill/fill machinery under deep call
// trees, on both CPU models and across window counts — the workload shape
// LEON's C compiler actually produces.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"
#include "pipeline_test_util.hpp"
#include "sasm/runtime.hpp"

namespace la::test {
namespace {

/// Recursive fib with real stack frames (save/restore per call).
std::string fib_program(unsigned n) {
  std::string s = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      mov )" + std::to_string(n) + R"(, %o0
      call fib
      nop
      set result, %g2
      st %o0, [%g2]
  done: ba done
      nop

  fib:                        ! int fib(int n): n < 2 ? n : f(n-1)+f(n-2)
      save %sp, -96, %sp
      cmp %i0, 2
      bl fib_base
      nop
      sub %i0, 1, %o0
      call fib
      nop
      mov %o0, %l0
      sub %i0, 2, %o0
      call fib
      nop
      add %l0, %o0, %i0
  fib_base:
      ret
      restore

      .align 4
  result:
      .skip 4
  )";
  return s;
}

u32 fib_ref(u32 n) { return n < 2 ? n : fib_ref(n - 1) + fib_ref(n - 2); }

TEST(RuntimeWindows, DeepRecursionOnFunctionalModel) {
  sasm::rt::RuntimeOptions opt;
  TestCpu c(fib_program(12) + sasm::rt::runtime_source(opt));
  c.run_to("done", 2000000);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("result")), fib_ref(12));
  EXPECT_EQ(c.mem().word_at(opt.fault_word), 0u);  // no unexpected traps
}

TEST(RuntimeWindows, DeepRecursionOnTimedPipeline) {
  sasm::rt::RuntimeOptions opt;
  PipeSys s(fib_program(12) + sasm::rt::runtime_source(opt));
  s.run_to("done", 2000000);
  EXPECT_EQ(s.sram().backdoor_word(s.image().symbol("result")), fib_ref(12));
  EXPECT_GT(s.pipe().stats().traps, 10u);  // spills/fills really happened
}

class RuntimeWindowCounts : public ::testing::TestWithParam<unsigned> {};

TEST_P(RuntimeWindowCounts, FibCorrectForAnyWindowCount) {
  const unsigned nw = GetParam();
  sasm::rt::RuntimeOptions opt;
  opt.nwindows = nw;
  cpu::CpuConfig cfg;
  cfg.nwindows = nw;
  TestCpu c(fib_program(11) + sasm::rt::runtime_source(opt), cfg);
  c.run_to("done", 4000000);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("result")), fib_ref(11))
      << "nwindows=" << nw;
  EXPECT_EQ(c.mem().word_at(opt.fault_word), 0u);
}

INSTANTIATE_TEST_SUITE_P(WindowCounts, RuntimeWindowCounts,
                         ::testing::Values(4u, 5u, 6u, 8u, 16u, 32u));

TEST(RuntimeWindows, FewerWindowsMeansMoreTraps) {
  // Same program, 4 vs 8 windows: the 4-window machine must spill/fill
  // much more often — the cost the nwindows axis of the liquid space
  // trades against area.
  auto traps_with = [](unsigned nw) {
    sasm::rt::RuntimeOptions opt;
    opt.nwindows = nw;
    cpu::PipelineConfig pcfg;
    pcfg.cpu.nwindows = nw;
    PipeSys s(fib_program(12) + sasm::rt::runtime_source(opt), pcfg);
    s.run_to("done", 4000000);
    EXPECT_EQ(s.sram().backdoor_word(s.image().symbol("result")),
              fib_ref(12));
    return s.pipe().stats().traps;
  };
  const u64 traps4 = traps_with(4);
  const u64 traps8 = traps_with(8);
  EXPECT_GT(traps4, traps8 * 2);
}

TEST(RuntimeWindows, MutualRecursionAcrossManyFrames) {
  // is_even/is_odd mutual recursion 30 deep: every window boundary gets
  // crossed repeatedly in both directions.
  const std::string prog = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      mov 30, %o0
      call is_even
      nop
      set result, %g2
      st %o0, [%g2]
  done: ba done
      nop

  is_even:                    ! returns 1 if n even
      save %sp, -96, %sp
      cmp %i0, 0
      bne even_rec
      nop
      mov 1, %i0
      ret
      restore
  even_rec:
      sub %i0, 1, %o0
      call is_odd
      nop
      mov %o0, %i0
      ret
      restore

  is_odd:
      save %sp, -96, %sp
      cmp %i0, 0
      bne odd_rec
      nop
      mov 0, %i0
      ret
      restore
  odd_rec:
      sub %i0, 1, %o0
      call is_even
      nop
      mov %o0, %i0
      ret
      restore

      .align 4
  result:
      .skip 4
  )";
  sasm::rt::RuntimeOptions opt;
  opt.nwindows = 4;
  cpu::CpuConfig cfg;
  cfg.nwindows = 4;
  TestCpu c(prog + sasm::rt::runtime_source(opt), cfg);
  c.run_to("done", 2000000);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("result")), 1u);
}

TEST(RuntimeWindows, UnexpectedTrapRecordsTt) {
  const std::string prog = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      ta 9                   ! -> tt 0x89: routed to rt_unexpected
      nop
  done: ba done
      nop
  )";
  sasm::rt::RuntimeOptions opt;
  TestCpu c(prog + sasm::rt::runtime_source(opt));
  c.iu().run(20000, c.image().symbol("done"));
  // The default handler spins after recording the trap type.
  EXPECT_EQ(c.mem().word_at(opt.fault_word), 0x89u);
  EXPECT_FALSE(c.iu().state().error_mode);
}

TEST(RuntimeWindows, CustomHandlerRouting) {
  const std::string prog = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      ta 5                   ! tt 0x85 -> my_handler
      nop
  after:
      set result, %g2
      st %g7, [%g2]
  done: ba done
      nop
  my_handler:
      mov 123, %g7
      jmp %l2                ! skip the ta
      rett %l2 + 4
      .align 4
  result:
      .skip 4
  )";
  sasm::rt::RuntimeOptions opt;
  opt.custom_handlers[0x85] = "my_handler";
  TestCpu c(prog + sasm::rt::runtime_source(opt));
  c.run_to("done", 50000);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("result")), 123u);
}

}  // namespace
}  // namespace la::test
