// Multiply, divide, MULScc multiply-step, and the Y register.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"

namespace la::test {
namespace {

TEST(MulDiv, UmulProducesY) {
  TestCpu c(R"(
      set 0x10000, %g1
      set 0x10000, %g2
      umul %g1, %g2, %g3    ! 2^32: low = 0, Y = 1
      rd %y, %g4
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0u);
  EXPECT_EQ(c.g(4), 1u);
}

TEST(MulDiv, SmulSignExtendsIntoY) {
  TestCpu c(R"(
      mov -2, %g1
      mov 3, %g2
      smul %g1, %g2, %g3    ! -6: Y = 0xffffffff
      rd %y, %g4
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), static_cast<u32>(-6));
  EXPECT_EQ(c.g(4), 0xffffffffu);
}

TEST(MulDiv, UmulccFlagsFromLow32) {
  TestCpu c(R"(
      set 0x80000000, %g1
      mov 1, %g2
      umulcc %g1, %g2, %g3
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_TRUE(c.psr().n);
  EXPECT_FALSE(c.psr().z);
}

TEST(MulDiv, UdivBasic) {
  TestCpu c(R"(
      wr %g0, 0, %y
      mov 100, %g1
      udiv %g1, 7, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 14u);
}

TEST(MulDiv, UdivUsesYAsHighWord) {
  // dividend = (1 << 32) | 0 = 4294967296; / 2 = 2147483648.
  TestCpu c(R"(
      mov 1, %g1
      wr %g0, %g1, %y
      mov 0, %g2
      udiv %g2, 2, %g3
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0x80000000u);
}

TEST(MulDiv, UdivOverflowSaturates) {
  // dividend = (4 << 32); / 2 = 2^33 overflows -> 0xffffffff, V set by cc.
  TestCpu c(R"(
      mov 4, %g1
      wr %g0, %g1, %y
      udivcc %g0, 2, %g3
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0xffffffffu);
  EXPECT_TRUE(c.psr().v);
}

TEST(MulDiv, SdivNegative) {
  TestCpu c(R"(
      wr %g0, 0xaa0, %psr
      set 0xffffffff, %g1   ! Y = sign extension of -100
      wr %g0, %g1, %y
      mov -100, %g2
      sdiv %g2, 7, %g3      ! -14 (truncating)
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), static_cast<u32>(-14));
}

TEST(MulDiv, DivisionByZeroTraps) {
  TestCpu c(R"(
      mov 10, %g1
      udiv %g1, %g0, %g2
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x2a);
}

TEST(MulDiv, MulsccComputesProduct) {
  // Classic 32x32 multiply via 32 MULScc steps + final shift-correct:
  // multiply 7 * 9 = 63 (small operands keep it simple).
  // Sequence per the V8 manual's B.18 recipe for unsigned multiply of
  // the value in %o0 by the multiplier in %y.
  TestCpu c(R"(
      mov 9, %g1
      wr %g0, %g1, %y       ! multiplier in Y
      mov 7, %o0            ! multiplicand
      andcc %g0, %g0, %o4   ! clear partial product and icc
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %o0, %o4
      mulscc %o4, %g0, %o4  ! final shift step
      rd %y, %o5            ! low 32 bits of the product
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.o(5), 63u);
}

TEST(MulDiv, NoHardwareMulTrapsIllegal) {
  cpu::CpuConfig cfg;
  cfg.has_mul = false;
  TestCpu c(R"(
      mov 2, %g1
      umul %g1, %g1, %g2
  )",
            cfg);
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x02);
}

TEST(MulDiv, LatencyCharged) {
  cpu::CpuConfig cfg;
  cfg.mul_latency = 5;
  TestCpu c(R"(
      umul %g0, %g0, %g1
  done: ba done
      nop
  )",
            cfg);
  const Cycles before = c.iu().cycle_count();
  const auto r = c.iu().step();
  EXPECT_EQ(r.cycles, 5u);
  EXPECT_EQ(c.iu().cycle_count() - before, 5u);
}

}  // namespace
}  // namespace la::test
