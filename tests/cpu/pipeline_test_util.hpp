// Harness for timed-pipeline tests: SRAM-backed AHB system with APB
// peripherals, assembled program, shared clock.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "bus/apb.hpp"
#include "bus/peripherals.hpp"
#include "cpu/leon_pipeline.hpp"
#include "mem/memory_map.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"

namespace la::test {

inline bool sram_and_rom_cacheable(Addr a) {
  return a < 0x80000000;  // everything below the APB window
}

class PipeSys {
 public:
  explicit PipeSys(std::string_view source, cpu::PipelineConfig cfg = {})
      : img_(sasm::assemble_or_throw(source)),
        sram_(mem::map::kSramBase, 1u << 20),
        bridge_(mem::map::kApbBase),
        cyc_([this] { return clock_; }) {
    bus_.attach(mem::map::kSramBase, 1u << 20, &sram_);
    bridge_.attach(mem::map::kGpioOffset, mem::map::kDeviceSize, &gpio_);
    bridge_.attach(mem::map::kCycleCounterOffset, mem::map::kDeviceSize,
                   &cyc_);
    bus_.attach(mem::map::kApbBase, mem::map::kApbSize, &bridge_);
    const bool ok = sram_.backdoor_write(img_.base, img_.data);
    EXPECT_TRUE(ok);
    pipe_ = std::make_unique<cpu::LeonPipeline>(cfg, bus_, &clock_,
                                                &sram_and_rom_cacheable);
    pipe_->reset(img_.entry);
  }

  void run_to(std::string_view label, u64 max = 2000000) {
    const Addr halt = img_.symbol(label);
    pipe_->run(max, halt);
    ASSERT_FALSE(pipe_->state().error_mode)
        << "pipeline entered error mode, tt=" << int{pipe_->state().tbr_tt()};
    ASSERT_EQ(pipe_->state().pc, halt) << "did not reach " << label;
  }

  u32 g(unsigned n) const { return pipe_->state().reg(static_cast<u8>(n)); }
  u32 o(unsigned n) const {
    return pipe_->state().reg(static_cast<u8>(8 + n));
  }

  cpu::LeonPipeline& pipe() { return *pipe_; }
  mem::Sram& sram() { return sram_; }
  bus::AhbBus& bus() { return bus_; }
  bus::CycleCounter& counter() { return cyc_; }
  const sasm::Image& image() const { return img_; }
  Cycles clock() const { return clock_; }

 private:
  sasm::Image img_;
  Cycles clock_ = 0;
  bus::AhbBus bus_;
  mem::Sram sram_;
  bus::ApbBridge bridge_;
  bus::GpioPort gpio_;
  bus::CycleCounter cyc_;
  std::unique_ptr<cpu::LeonPipeline> pipe_;
};

}  // namespace la::test
