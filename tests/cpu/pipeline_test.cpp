// The timed LEON pipeline: functional correctness on the AHB system plus
// the cache/bus timing behaviours the paper's experiment depends on.
#include <gtest/gtest.h>

#include "pipeline_test_util.hpp"

namespace la::test {
namespace {

// The paper's array-access kernel (Fig 7), parameterized by bound.
std::string fig7_kernel(u32 bound) {
  std::string s = R"(
      .org 0x40000100
  _start:
      set count, %o0
      set 0, %o1
      set )" + std::to_string(bound) + R"(, %o2
  loop:
      and %o1, 1023, %o3
      sll %o3, 2, %o3        ! count is an int array: byte offset = idx*4
      ld [%o0 + %o3], %o4
      add %o1, 32, %o1
      cmp %o1, %o2
      bl loop
      nop
  done:
      ba done
      nop
      .align 32
  count:
      .skip 4096
  )";
  return s;
}

TEST(Pipeline, ExecutesBasicProgram) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      mov 10, %g1
      mov 32, %g2
      add %g1, %g2, %g3
      set buf, %g4
      st %g3, [%g4]
      ld [%g4], %g5
  done: ba done
      nop
      .align 4
  buf:  .skip 8
  )");
  s.run_to("done");
  EXPECT_EQ(s.g(3), 42u);
  EXPECT_EQ(s.g(5), 42u);
  EXPECT_EQ(s.sram().backdoor_word(s.image().symbol("buf")), 42u);
}

TEST(Pipeline, CyclesAdvanceTheSharedClock) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      nop
      nop
  done: ba done
      nop
  )");
  s.run_to("done");
  EXPECT_GT(s.clock(), 0u);
  EXPECT_EQ(s.clock(), s.pipe().stats().cycles);
}

TEST(Pipeline, IcacheWarmLoopHasNoFetchStalls) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      mov 100, %g1
  loop:
      subcc %g1, 1, %g1
      bne loop
      nop
  done: ba done
      nop
  )");
  s.run_to("done");
  const auto& st = s.pipe().stats();
  // The loop is 3 instructions in at most 2 lines: a handful of fills,
  // then hits forever.
  EXPECT_LE(s.pipe().icache().stats().read_misses, 3u);
  EXPECT_GT(s.pipe().icache().stats().read_hits, 250u);
  EXPECT_LT(st.icache_stall, 100u);
}

TEST(Pipeline, DcacheMissesCostCycles) {
  // Two runs of the Fig 7 kernel: with a 1 KB D-cache (all conflict
  // misses) and a 4 KB D-cache (all hits after warm-up).  The 4 KB run
  // must be substantially faster — the paper's headline observation.
  cpu::PipelineConfig small;
  small.dcache.size_bytes = 1024;
  PipeSys s1(fig7_kernel(100000), small);
  s1.run_to("done");

  cpu::PipelineConfig big;
  big.dcache.size_bytes = 4096;
  PipeSys s4(fig7_kernel(100000), big);
  s4.run_to("done");

  EXPECT_GT(s1.clock(), s4.clock() + s4.clock() / 4);
  // 1 KB: every iteration misses; 4 KB: only the 32 cold misses.
  EXPECT_EQ(s4.pipe().dcache().stats().read_misses, 32u);
  EXPECT_GT(s1.pipe().dcache().stats().read_misses, 3000u);
}

TEST(Pipeline, DcacheDisabledIsSlowerThanWarmCache) {
  // A 4 KB cache holds the kernel's whole working set -> hits dominate and
  // beat uncached accesses.  (A 1 KB cache on this kernel misses on every
  // access and is *worse* than uncached — line fills cost 8-beat bursts —
  // which is exactly why the paper wants the cache right-sized.)
  cpu::PipelineConfig on;
  on.dcache.size_bytes = 4096;
  PipeSys a(fig7_kernel(32000), on);
  a.run_to("done");

  cpu::PipelineConfig off;
  off.dcache_enabled = false;
  PipeSys b(fig7_kernel(32000), off);
  b.run_to("done");

  EXPECT_GT(b.clock(), a.clock());
  EXPECT_EQ(b.pipe().dcache().stats().accesses(), 0u);

  cpu::PipelineConfig tiny;
  tiny.dcache.size_bytes = 1024;
  PipeSys c(fig7_kernel(32000), tiny);
  c.run_to("done");
  EXPECT_GT(c.clock(), b.clock());  // thrashing cache loses to uncached
}

TEST(Pipeline, WriteBufferHidesStoreLatency) {
  const std::string prog = R"(
      .org 0x40000100
  _start:
      set buf, %g1
      mov 200, %g2
  loop:
      st %g2, [%g1]
      add %g1, 4, %g1
      subcc %g2, 1, %g2
      bne loop
      nop
  done: ba done
      nop
      .align 4
  buf:  .skip 1024
  )";
  cpu::PipelineConfig buffered;
  buffered.write_buffer_depth = 1;
  PipeSys a(prog, buffered);
  a.run_to("done");

  cpu::PipelineConfig sync;
  sync.write_buffer_depth = 0;
  PipeSys b(prog, sync);
  b.run_to("done");

  EXPECT_LT(a.clock(), b.clock());
}

TEST(Pipeline, FlushMakesBackdoorWritesVisible) {
  // The boot-ROM polling scenario: the CPU caches a word, leon_ctrl
  // rewrites it behind the cache, and only a FLUSH lets the CPU see it.
  PipeSys s(R"(
      .org 0x40000100
  _start:
      set mbox, %g1
      ld [%g1], %g2        ! caches the line (value 0)
  spin1:
      ba spin1
      nop
  resume:
      ld [%g1], %g3        ! stale: still served from the cache
      flush %g1
      ld [%g1], %g4        ! fresh after the flush
  done: ba done
      nop
      .align 32
  mbox: .word 0
  )");
  s.run_to("spin1");
  EXPECT_EQ(s.g(2), 0u);
  // External circuitry writes behind the processor's back.
  s.sram().backdoor_write_word(s.image().symbol("mbox"), 77);
  // Redirect the CPU to the resume sequence (test backdoor).
  s.pipe().state().pc = s.image().symbol("resume");
  s.pipe().state().npc = s.pipe().state().pc + 4;
  s.run_to("done");
  EXPECT_EQ(s.g(3), 0u);   // stale read
  EXPECT_EQ(s.g(4), 77u);  // post-flush read
}

TEST(Pipeline, CacheControlRegisterViaAsi) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      lda [%g0 + %g0] 2, %g1   ! read CCR
      set 0x00600000, %g2      ! FI|FD
      sta %g2, [%g0 + %g0] 2   ! flush both caches
  done: ba done
      nop
  )");
  s.run_to("done");
  EXPECT_EQ(s.g(1), 0xfu);  // both caches enabled
  // Flush happened: the I-cache only holds lines refetched after the sta.
  EXPECT_LE(s.pipe().icache().valid_lines(), 2u);
}

TEST(Pipeline, UncachedPeripheralAccess) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      set 0x80000400, %g1     ! GPIO out
      mov 0xff, %g2
      st %g2, [%g1]
      ld [%g1], %g3
  done: ba done
      nop
  )");
  s.run_to("done");
  EXPECT_EQ(s.g(3), 0xffu);
  EXPECT_EQ(s.pipe().dcache().stats().accesses(), 0u);  // never cached
}

TEST(Pipeline, CycleCounterMeasuresProgramSection) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]           ! start counting
      mov 50, %g3
  loop:
      subcc %g3, 1, %g3
      bne loop
      nop
      st %g0, [%g1]           ! stop
      ld [%g1 + 4], %g4       ! measured cycles
  done: ba done
      nop
  )");
  s.run_to("done");
  EXPECT_GT(s.g(4), 100u);          // ~150 instructions worth of cycles
  EXPECT_LT(s.g(4), 2000u);
  EXPECT_EQ(s.g(4), s.counter().measured());
}

TEST(Pipeline, StoreToUnmappedTraps) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      set 0x20000000, %g1
      st %g0, [%g1]
  )");
  s.pipe().run(10);
  EXPECT_TRUE(s.pipe().state().error_mode);
  EXPECT_EQ(s.pipe().state().tbr_tt(), 0x09);
}

TEST(Pipeline, TrapsWorkOnTimedModel) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      set 0x40001000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0xaa0, %psr
      nop
      ta 2
      nop
  after: ba after
      nop
      .org 0x40001820          ! tt = 0x82
  handler:
      mov 55, %g7
      jmp %l2
      rett %l2 + 4
  )");
  s.run_to("after");
  EXPECT_EQ(s.g(7), 55u);
  EXPECT_TRUE(s.pipe().state().psr.et);
}

TEST(Pipeline, InstructionMixAccounting) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      set buf, %g1           ! sethi + or
      mov 3, %g2
  loop:
      ld [%g1], %g3          ! 3 loads
      st %g3, [%g1 + 4]      ! 3 stores
      umul %g3, %g2, %g4     ! 3 multiplies
      subcc %g2, 1, %g2
      bne loop               ! 3 branches, 2 taken
      nop
      call f                 ! 1 call
      nop
  done: ba done
      nop
  f:
      retl                   ! jmpl: counted as a call-class transfer
      nop
      .align 4
  buf:  .skip 8
  )");
  s.run_to("done");
  const auto& st = s.pipe().stats();
  EXPECT_EQ(st.loads, 3u);
  EXPECT_EQ(st.stores, 3u);
  EXPECT_EQ(st.muldiv, 3u);
  EXPECT_EQ(st.branches, 3u);
  EXPECT_EQ(st.taken_branches, 2u);
  EXPECT_EQ(st.calls, 2u);  // call + retl(jmpl)
}

TEST(Pipeline, AnnulledSlotsCountedSeparately) {
  PipeSys s(R"(
      .org 0x40000100
  _start:
      ba,a skip
      mov 1, %g1
  skip:
  done: ba done
      nop
  )");
  s.run_to("done");
  EXPECT_EQ(s.g(1), 0u);
  EXPECT_EQ(s.pipe().stats().annulled, 1u);
}

}  // namespace
}  // namespace la::test
