// Loads, stores, sign extension, doubleword ops, atomics, and alignment.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"

namespace la::test {
namespace {

TEST(MemoryOps, WordStoreLoad) {
  TestCpu c(R"(
      set buf, %g1
      set 0xcafef00d, %g2
      st %g2, [%g1]
      ld [%g1], %g3
  done: ba done
      nop
      .align 4
  buf:  .skip 64
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0xcafef00du);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("buf")), 0xcafef00du);
}

TEST(MemoryOps, ByteAndHalfSignExtension) {
  TestCpu c(R"(
      set buf, %g1
      ldub [%g1], %g2      ! 0x80 zero-extended
      ldsb [%g1], %g3      ! 0x80 sign-extended
      lduh [%g1 + 2], %g4  ! 0x8001 zero-extended
      ldsh [%g1 + 2], %g5  ! 0x8001 sign-extended
  done: ba done
      nop
      .align 4
  buf:  .byte 0x80, 0x00
      .half 0x8001
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0x80u);
  EXPECT_EQ(c.g(3), 0xffffff80u);
  EXPECT_EQ(c.g(4), 0x8001u);
  EXPECT_EQ(c.g(5), 0xffff8001u);
}

TEST(MemoryOps, BigEndianByteOrder) {
  TestCpu c(R"(
      set buf, %g1
      set 0x11223344, %g2
      st %g2, [%g1]
      ldub [%g1], %g3       ! most significant byte at lowest address
      ldub [%g1 + 3], %g4
  done: ba done
      nop
      .align 4
  buf:  .skip 8
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(3), 0x11u);
  EXPECT_EQ(c.g(4), 0x44u);
}

TEST(MemoryOps, DoublewordPair) {
  TestCpu c(R"(
      set buf, %g1
      ldd [%g1], %g2        ! g2 = first word, g3 = second
      set dst, %g4
      std %g2, [%g4]
  done: ba done
      nop
      .align 8
  buf:  .word 0x01020304, 0x05060708
      .align 8
  dst:  .skip 8
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0x01020304u);
  EXPECT_EQ(c.g(3), 0x05060708u);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("dst")), 0x01020304u);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("dst") + 4), 0x05060708u);
}

TEST(MemoryOps, LddOddRdIsIllegal) {
  // ldd with odd rd must raise illegal_instruction; with traps disabled
  // the CPU enters error mode.
  TestCpu c(R"(
      set buf, %g1
      ldd [%g1], %g3        ! odd rd
      .align 8
  buf:  .skip 8
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
}

TEST(MemoryOps, MisalignedWordTraps) {
  TestCpu c(R"(
      set buf, %g1
      ld [%g1 + 1], %g2
      .align 4
  buf:  .skip 8
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x07);  // recorded even in error mode
}

TEST(MemoryOps, MisalignedHalfTraps) {
  TestCpu c(R"(
      set buf, %g1
      lduh [%g1 + 1], %g2
      .align 4
  buf:  .skip 8
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
}

TEST(MemoryOps, LdstubReadsThenSetsFF) {
  TestCpu c(R"(
      set lock, %g1
      ldstub [%g1], %g2     ! acquire: old value 0
      ldstub [%g1], %g3     ! second acquire sees 0xff
  done: ba done
      nop
      .align 4
  lock: .byte 0
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0u);
  EXPECT_EQ(c.g(3), 0xffu);
}

TEST(MemoryOps, SwapExchanges) {
  TestCpu c(R"(
      set buf, %g1
      mov 111, %g2
      swap [%g1], %g2
  done: ba done
      nop
      .align 4
  buf:  .word 222
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 222u);
  EXPECT_EQ(c.mem().word_at(c.image().symbol("buf")), 111u);
}

TEST(MemoryOps, UnmappedAccessFaults) {
  // FlatMemory covers 2 MiB from the image base; far beyond it faults.
  TestCpu c(R"(
      set 0x0fff0000, %g1
      ld [%g1], %g2
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x09);  // data_access_exception
}

TEST(MemoryOps, AlternateSpaceRequiresSupervisor) {
  // Drop to user mode, then try sta: privileged_instruction.
  TestCpu c(R"(
      wr %g0, 0x20, %psr    ! S=0 ET=1
      nop
      set buf, %g1
      sta %g2, [%g1 + %g0] 11
      .align 4
  buf:  .skip 8
  )");
  u8 seen_tt = 0;
  for (int i = 0; i < 20 && !seen_tt; ++i) {
    const auto r = c.iu().step();
    if (r.trapped) seen_tt = r.tt;
  }
  EXPECT_EQ(seen_tt, 0x03);
}

TEST(MemoryOps, StackFrameStyleAccess) {
  TestCpu c(R"(
      set stacktop, %sp
      sub %sp, 96, %sp
      mov 42, %g1
      st %g1, [%sp + 64]
      ld [%sp + 64], %g2
  done: ba done
      nop
      .skip 256
      .align 8
  stacktop:
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 42u);
}

}  // namespace
}  // namespace la::test
