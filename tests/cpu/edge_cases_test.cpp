// Directed edge cases pinned against the V8 manual: trap-on-overflow
// semantics, alignment traps for every access size, %g0-pair doubleword
// loads, privilege transitions, and condition-code preservation.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"

namespace la::test {
namespace {

TEST(EdgeCases, TaddcctvTrapsWithoutModifyingState) {
  TestCpu c(R"(
      mov 5, %g1            ! tagged bits set -> overflow
      mov 77, %g2           ! pre-existing value in the would-be rd
      addcc %g0, 1, %g0     ! icc := known state (Z=0,N=0,V=0,C=0)
      taddcctv %g1, 3, %g2
  )");
  u8 tt = 0;
  for (int i = 0; i < 10 && !tt; ++i) {
    const auto r = c.iu().step();
    if (r.trapped) tt = r.tt;
  }
  EXPECT_EQ(tt, 0x0a);  // tag_overflow
  EXPECT_EQ(c.g(2), 77u);       // rd untouched
  EXPECT_FALSE(c.psr().v);      // icc untouched
  EXPECT_FALSE(c.psr().z);
}

TEST(EdgeCases, TsubcctvCleanOperandsDoNotTrap) {
  TestCpu c(R"(
      mov 8, %g1
      tsubcctv %g1, 4, %g2
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(2), 4u);
}

TEST(EdgeCases, SwapMisalignedTraps) {
  TestCpu c(R"(
      set buf, %g1
      swap [%g1 + 2], %g2
      .align 4
  buf:  .skip 8
  )");
  c.iu().run(10);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x07);
}

TEST(EdgeCases, JmplToMisalignedAddressTraps) {
  TestCpu c(R"(
      set 0x40000102, %g1
      jmpl %g1, %g0
      nop
  )");
  c.iu().run(10);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x07);
}

TEST(EdgeCases, RettWithTrapsEnabledIsIllegal) {
  TestCpu c(R"(
      wr %g0, 0xa0, %psr   ! S=1 ET=1
      nop
      rett %g0 + 4
  )");
  u8 tt = 0;
  for (int i = 0; i < 10 && !tt; ++i) {
    const auto r = c.iu().step();
    if (r.trapped) tt = r.tt;
  }
  EXPECT_EQ(tt, 0x02);  // illegal_instruction (supervisor, ET=1)
}

TEST(EdgeCases, LddIntoG0PairDiscardsHighWord) {
  TestCpu c(R"(
      set buf, %g2
      ldd [%g2], %g0       ! rd=0: high word -> %g0 (lost), low -> %g1
  done: ba done
      nop
      .align 8
  buf:  .word 0x11111111, 0x22222222
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(0), 0u);
  EXPECT_EQ(c.g(1), 0x22222222u);
}

TEST(EdgeCases, NonCcOpsPreserveIcc) {
  TestCpu c(R"(
      subcc %g0, 1, %g0    ! N=1 C=1
      add %g1, 5, %g1
      umul %g1, %g1, %g2
      sll %g2, 3, %g2
      ldub [%g3 + dummy], %g4
  done: ba done
      nop
  dummy: .byte 1
      .align 4
  )");
  c.run_to("done");
  EXPECT_TRUE(c.psr().n);
  EXPECT_TRUE(c.psr().c);
}

TEST(EdgeCases, UserModeCannotWritePsr) {
  TestCpu c(R"(
      wr %g0, 0x20, %psr   ! drop to user, traps on
      nop
      wr %g0, 0xa0, %psr   ! attempt to re-enter supervisor
  )");
  u8 tt = 0;
  for (int i = 0; i < 10 && !tt; ++i) {
    const auto r = c.iu().step();
    if (r.trapped) tt = r.tt;
  }
  EXPECT_EQ(tt, 0x03);  // privileged_instruction
}

TEST(EdgeCases, SupervisorBitReadableFromPsr) {
  TestCpu c(R"(
      rd %psr, %g1
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ((c.g(1) >> 7) & 1u, 1u);  // S bit after reset
}

TEST(EdgeCases, TiccRegisterPlusImmediateForm) {
  TestCpu c(R"(
      mov 0x40, %g1
      ta %g1 + 5           ! trap number (0x40 + 5) & 0x7f = 0x45
  )");
  c.iu().run(10);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x80 + 0x45);
}

TEST(EdgeCases, BackwardBranchWithNegativeDisplacement) {
  TestCpu c(R"(
      mov 3, %g1
      ba fwd
      nop
  back:
      subcc %g1, 1, %g1
  fwd:
      bne back
      nop
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0u);
}

TEST(EdgeCases, CallReturnAddressIsCallSite) {
  TestCpu c(R"(
      .org 0x40000100
  _start:
      call f
      mov 7, %o0           ! delay slot executes before f
  done: ba done
      nop
  f:
      add %o7, 0, %g1      ! capture return address
      retl
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0x40000100u);
  EXPECT_EQ(c.o(0), 7u);
}

TEST(EdgeCases, SethiDoesNotTouchLowBits) {
  TestCpu c(R"(
      sethi %hi(0xfffffc00), %g1
      sethi 1, %g2          ! raw imm22 form: g2 = 1 << 10
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 0xfffffc00u);
  EXPECT_EQ(c.g(2), 1u << 10);
}

TEST(EdgeCases, FlagsAfterUmulccZeroResult) {
  TestCpu c(R"(
      set 0x10000, %g1
      set 0x10000, %g2
      umulcc %g1, %g2, %g3  ! low 32 bits are zero -> Z set
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_TRUE(c.psr().z);
  EXPECT_FALSE(c.psr().n);
}

TEST(EdgeCases, StoreDoubleOddRdIllegal) {
  TestCpu c(R"(
      set buf, %g2
      std %g3, [%g2]       ! odd rd
      .align 8
  buf:  .skip 8
  )");
  c.iu().run(10);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x02);
}

}  // namespace
}  // namespace la::test
