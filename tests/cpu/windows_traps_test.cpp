// Register windows, SAVE/RESTORE, WIM, trap entry/exit, Ticc, interrupts.
#include <gtest/gtest.h>

#include "cpu_test_util.hpp"

namespace la::test {
namespace {

TEST(Windows, OutsBecomeIns) {
  TestCpu c(R"(
      mov 41, %o0
      save %sp, -96, %sp
      add %i0, 1, %i0      ! caller's %o0 is callee's %i0
      restore %i0, 0, %o0  ! result back into caller's %o0 via restore
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.o(0), 42u);
}

TEST(Windows, LocalsArePrivatePerWindow) {
  TestCpu c(R"(
      mov 1, %l0
      save %sp, -96, %sp
      mov 2, %l0
      save %sp, -96, %sp
      mov 3, %l0
      restore
      mov %l0, %g1         ! middle window's local
      restore
      mov %l0, %g2         ! outer window's local
  done: ba done
      nop
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(1), 2u);
  EXPECT_EQ(c.g(2), 1u);
}

TEST(Windows, CwpDecrementsOnSaveModulo) {
  cpu::CpuConfig cfg;
  cfg.nwindows = 4;
  TestCpu c(R"(
      save
      save
      save
  done: ba done
      nop
  )",
            cfg);
  c.run_to("done");
  EXPECT_EQ(c.psr().cwp, (0u + 4 - 3) % 4);
}

TEST(Windows, SaveIntoWimWindowOverflows) {
  // WIM marks window 7 (with nwindows=8, cwp=0): first save hits it.
  TestCpu c(R"(
      wr %g0, 0x80, %wim   ! invalid window = 7
      save
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);  // ET=0 -> error mode
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x05);
}

TEST(Windows, RestoreIntoWimWindowUnderflows) {
  TestCpu c(R"(
      wr %g0, 2, %wim      ! invalid window = 1
      restore
  )");
  c.iu().run(10);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x06);
}

TEST(Windows, WimBitsAboveNwindowsReadZero) {
  cpu::CpuConfig cfg;
  cfg.nwindows = 4;
  TestCpu c(R"(
      set 0xffffffff, %g1
      wr %g1, 0, %wim
      rd %wim, %g2
  done: ba done
      nop
  )",
            cfg);
  c.run_to("done");
  EXPECT_EQ(c.g(2), 0xfu);
}

TEST(Traps, TiccVectorsThroughTbr) {
  // Install a trap "table" at 0x1000: handler for tt 0x80+3 = 0x83 lives
  // at 0x1000 + 0x83*16 = 0x1830.
  TestCpu c(R"(
      .org 0
  _start:
      set 0x1000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0xaa0, %psr  ! enable traps
      nop
      ta 3
      nop
  after:
      ba after
      nop

      .org 0x1830          ! handler for tt = 0x83
  handler:
      mov 99, %g7
  hdone: ba hdone
      nop
  )");
  c.run_to("hdone");
  EXPECT_EQ(c.g(7), 99u);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x83);
  EXPECT_FALSE(c.psr().et);      // traps disabled in handler
  EXPECT_TRUE(c.psr().s);
  EXPECT_EQ(c.psr().cwp, 7u);    // decremented from 0 (mod 8)
}

TEST(Traps, TrapSavesPcNpcInNewWindowLocals) {
  TestCpu c(R"(
      set 0x1000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0xaa0, %psr
      nop
  trap_site:
      ta 0
      nop

      .org 0x1800          ! tt = 0x80
  handler:
      mov %l1, %g2         ! saved pc
      mov %l2, %g3         ! saved npc
  hdone: ba hdone
      nop
  )");
  c.run_to("hdone");
  EXPECT_EQ(c.g(2), c.image().symbol("trap_site"));
  EXPECT_EQ(c.g(3), c.image().symbol("trap_site") + 4);
}

TEST(Traps, RettReturnsAndReenables) {
  TestCpu c(R"(
      set 0x1000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0xaa0, %psr
      nop
      ta 1
      mov 5, %g4           ! delay slot of ta: runs after return (npc)
  after:
      mov 6, %g5
  done: ba done
      nop

      .org 0x1810          ! tt = 0x81
  handler:
      mov 7, %g6
      jmpl %l1, %g0        ! retry path: return to trapped pc? no — skip:
      rett %l2             ! jmp l1 + rett l2 resumes at pc. For a Ticc we
                           ! want l2 (npc): use jmp %l2; rett %l2+4 instead
  )");
  // The handler above is intentionally the *classic* "retry" sequence:
  // jmp %l1; rett %l2 re-executes the trapping instruction. For Ticc that
  // would loop forever... but the second time around the condition codes
  // are unchanged, so `ta` traps again; we bound the run and then check
  // that the handler really did run and the trap return machinery works.
  c.iu().run(60);
  EXPECT_EQ(c.g(6), 7u);          // handler executed
  EXPECT_FALSE(c.iu().state().error_mode);
}

TEST(Traps, RettSkipSequenceResumesAfterTicc) {
  TestCpu c(R"(
      set 0x1000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0xaa0, %psr
      nop
      ta 1
      mov 5, %g4           ! delay-slot instruction (npc target)
      mov 6, %g5
  done: ba done
      nop

      .org 0x1810
  handler:
      mov 7, %g6
      jmp %l2              ! skip the trapping instruction: return to npc
      rett %l2 + 4
  )");
  c.run_to("done");
  EXPECT_EQ(c.g(4), 5u);
  EXPECT_EQ(c.g(5), 6u);
  EXPECT_EQ(c.g(6), 7u);
  EXPECT_TRUE(c.psr().et);        // rett re-enabled traps
  EXPECT_EQ(c.psr().cwp, 0u);     // window restored
}

TEST(Traps, IllegalInstructionTt) {
  TestCpu c(R"(
      unimp 0
  )");
  c.iu().run(5);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x02);
}

TEST(Traps, PrivilegedFromUserMode) {
  TestCpu c(R"(
      wr %g0, 0x20, %psr   ! S=0 ET=1
      nop
      rd %psr, %g1         ! privileged in user mode
  )");
  u8 tt = 0;
  for (int i = 0; i < 10 && !tt; ++i) {
    const auto r = c.iu().step();
    if (r.trapped) tt = r.tt;
  }
  EXPECT_EQ(tt, 0x03);
}

TEST(Traps, InterruptDeliveredAbovePil) {
  TestCpu c(R"(
      set 0x1000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0x5a0, %psr  ! S=1 ET=1 PIL=5
      nop
  spin:
      ba spin
      nop

      .org 0x1000 + 0x1b * 16   ! interrupt level 11 -> tt 0x1b
  handler:
      mov 1, %g7
  hdone: ba hdone
      nop
  )");
  c.iu().run(5);
  c.iu().set_irq(11);
  c.run_to("hdone", 100);
  EXPECT_EQ(c.g(7), 1u);
}

TEST(Traps, InterruptMaskedAtOrBelowPil) {
  TestCpu c(R"(
      wr %g0, 0x5a0, %psr  ! PIL=5
      nop
  spin:
      ba spin
      nop
  )");
  c.iu().run(5);
  c.iu().set_irq(4);  // below PIL: must be ignored
  c.iu().run(50);
  EXPECT_FALSE(c.iu().state().error_mode);
  // Still inside the two-instruction spin loop, no trap vectored.
  const Addr spin = c.image().symbol("spin");
  EXPECT_TRUE(c.iu().state().pc == spin || c.iu().state().pc == spin + 4);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0u);
}

TEST(Traps, Level15NonMaskable) {
  TestCpu c(R"(
      set 0x1000, %g1
      wr %g1, 0, %tbr
      wr %g0, 0xfa0, %psr  ! PIL=15
      nop
  spin:
      ba spin
      nop

      .org 0x1000 + 0x1f * 16
  handler:
      mov 1, %g7
  hdone: ba hdone
      nop
  )");
  c.iu().run(5);
  c.iu().set_irq(15);
  c.run_to("hdone", 100);
  EXPECT_EQ(c.g(7), 1u);
}

TEST(Traps, WrpsrInvalidCwpIsIllegal) {
  cpu::CpuConfig cfg;
  cfg.nwindows = 4;
  TestCpu c(R"(
      wr %g0, 0x87, %psr   ! CWP=7 but only 4 windows
  )",
            cfg);
  c.iu().run(5);
  EXPECT_TRUE(c.iu().state().error_mode);
  EXPECT_EQ(c.iu().state().tbr_tt(), 0x02);
}

}  // namespace
}  // namespace la::test
