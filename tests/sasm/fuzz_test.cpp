// Robustness: the assembler must never crash or hang on arbitrary input —
// it returns diagnostics.  Three generations of garbage: random bytes,
// random tokens, and mutated valid programs.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "sasm/assembler.hpp"

namespace la::sasm {
namespace {

TEST(AsmFuzz, RandomBytesNeverCrash) {
  Rng rng(0xbad5eed);
  Assembler as;
  for (int i = 0; i < 2000; ++i) {
    std::string src;
    const u32 len = rng.below(200);
    for (u32 j = 0; j < len; ++j) {
      // Printable-ish ASCII plus newlines; occasional raw bytes.
      const u32 pick = rng.below(100);
      if (pick < 10) src.push_back('\n');
      else if (pick < 95) src.push_back(static_cast<char>(rng.between(32, 126)));
      else src.push_back(static_cast<char>(rng.next_u32() & 0xff));
    }
    const AsmResult r = as.assemble(src);  // must not throw
    if (!r.ok) {
      EXPECT_FALSE(r.errors.empty());
    }
  }
  SUCCEED();
}

TEST(AsmFuzz, RandomTokenSoupNeverCrashes) {
  Rng rng(0xf00d);
  static const char* tokens[] = {
      "add",    "%g1",  "%sp",   ",",      "[",     "]",    "+",
      "-",      "0x40", "4096",  "label:", ".word", ".org", "%hi(",
      ")",      "ba",   "set",   "%y",     "wr",    "rd",   "nop",
      "ld",     "st",   "!c",    ";",      "save",  "umul", "%asr17",
      ".align", "8",    ".skip", "\"s\"",  "=",     "tst",  "%lo(x)",
  };
  Assembler as;
  for (int i = 0; i < 2000; ++i) {
    std::string src;
    const u32 n = rng.below(60);
    for (u32 j = 0; j < n; ++j) {
      src += tokens[rng.below(std::size(tokens))];
      src += rng.chance(0.3) ? "\n" : " ";
    }
    as.assemble(src);  // must not throw
  }
  SUCCEED();
}

TEST(AsmFuzz, MutatedValidProgramsNeverCrash) {
  const std::string base = R"(
      .org 0x40000100
  _start:
      set 0x12345678, %g1
      ld [%g1 + 8], %g2
  loop:
      subcc %g2, 1, %g2
      bne loop
      nop
      st %g2, [%g1]
      jmp 0x40
      nop
  data:
      .word 1, 2, 3
      .asciz "hello"
  )";
  Rng rng(0x3141);
  Assembler as;
  for (int i = 0; i < 2000; ++i) {
    std::string src = base;
    const u32 mutations = 1 + rng.below(5);
    for (u32 m = 0; m < mutations; ++m) {
      const u32 pos = rng.below(static_cast<u32>(src.size()));
      switch (rng.below(3)) {
        case 0: src[pos] = static_cast<char>(rng.between(32, 126)); break;
        case 1: src.erase(pos, 1); break;
        default: src.insert(pos, 1, static_cast<char>(rng.between(32, 126)));
      }
    }
    as.assemble(src);  // must not throw
  }
  SUCCEED();
}

TEST(AsmFuzz, PathologicalStructuresReportErrors) {
  Assembler as;
  // Deeply nested parentheses.
  std::string nested = ".word ";
  for (int i = 0; i < 200; ++i) nested += "(1+";
  nested += "1";
  for (int i = 0; i < 200; ++i) nested += ")";
  EXPECT_TRUE(as.assemble(nested + "\n").ok);

  // Unbalanced version must error, not crash.
  EXPECT_FALSE(as.assemble(".word ((((1\n").ok);

  // Giant .skip is accepted (memory-bounded by the value).
  EXPECT_TRUE(as.assemble(".skip 65536\n").ok);

  // Huge org forward then backward.
  EXPECT_TRUE(as.assemble(".org 0x1000\nnop\n.org 0x10\nnop\n").ok);
}

}  // namespace
}  // namespace la::sasm
