// S-record serialization: round trips, checksum verification, hostile
// input.
#include "sasm/srec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sasm/assembler.hpp"

namespace la::sasm {
namespace {

Image sample_image() {
  return assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0xdeadbeef, %g1
      st %g1, [%g0 + 0x40]
      jmp 0x40
      nop
      .byte 1, 2, 3
      .align 4
      .word 0xcafef00d
  )");
}

TEST(Srec, RoundTripPreservesImage) {
  const Image img = sample_image();
  const std::string text = to_srec(img);
  const SrecResult back = from_srec(text);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.image.base, img.base);
  EXPECT_EQ(back.image.entry, img.entry);
  EXPECT_EQ(back.image.data, img.data);
}

TEST(Srec, WellFormedRecords) {
  const std::string text = to_srec(sample_image(), "hdr", 16);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.substr(0, 2), "S0");
  EXPECT_NE(text.find("\nS3"), std::string::npos);
  EXPECT_NE(text.find("\nS7"), std::string::npos);
  // Every line is even-length hex after the type.
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line = std::string_view(text).substr(pos, nl - pos);
    EXPECT_EQ(line[0], 'S');
    EXPECT_EQ((line.size() - 2) % 2, 0u);
    pos = nl + 1;
  }
}

TEST(Srec, RecordSizeVariations) {
  const Image img = sample_image();
  for (const unsigned n : {1u, 7u, 32u, 250u}) {
    const SrecResult back = from_srec(to_srec(img, "x", n));
    ASSERT_TRUE(back.ok) << "bytes_per_record=" << n << ": " << back.error;
    EXPECT_EQ(back.image.data, img.data);
  }
}

TEST(Srec, ChecksumCorruptionDetected) {
  std::string text = to_srec(sample_image());
  // Flip one data nibble in the first S3 record.
  const std::size_t p = text.find("\nS3") + 12;
  text[p] = text[p] == '0' ? '1' : '0';
  const SrecResult back = from_srec(text);
  EXPECT_FALSE(back.ok);
  EXPECT_NE(back.error.find("checksum"), std::string::npos);
}

TEST(Srec, AcceptsS1AndS9Flavour) {
  // Hand-built 16-bit flavour: S1 with 2 data bytes at 0x1000 (0xAB 0xCD).
  // count=2+2+1=5; sum=05+10+00+AB+CD=0x18D -> low byte 0x8D -> ~ =0x72.
  const std::string text =
      "S1051000ABCD72\n"
      "S9031000EC\n";
  const SrecResult back = from_srec(text);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.image.base, 0x1000u);
  ASSERT_EQ(back.image.data.size(), 2u);
  EXPECT_EQ(back.image.data[0], 0xab);
  EXPECT_EQ(back.image.data[1], 0xcd);
  EXPECT_EQ(back.image.entry, 0x1000u);
}

TEST(Srec, GapsZeroFilled) {
  Image img;
  img.base = 0x100;
  img.data = {0xaa};
  img.entry = 0x100;
  std::string text = to_srec(img);
  // Append a second distant data record by serializing another image and
  // splicing its S3 line in before the S7.
  Image img2;
  img2.base = 0x140;
  img2.data = {0xbb};
  img2.entry = 0x140;
  const std::string text2 = to_srec(img2);
  const std::string s3b = text2.substr(text2.find("S3"),
                                       text2.find("\nS7") + 1 -
                                           text2.find("S3"));
  text.insert(text.find("S7"), s3b);
  const SrecResult back = from_srec(text);
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.image.base, 0x100u);
  EXPECT_EQ(back.image.data.size(), 0x41u);
  EXPECT_EQ(back.image.data[0], 0xaa);
  EXPECT_EQ(back.image.data[0x20], 0x00);  // gap
  EXPECT_EQ(back.image.data[0x40], 0xbb);
}

static constexpr char kJunkChars[] = "0123456789ABCDEFabcdefS37 \r";

TEST(Srec, HostileInputNeverCrashes) {
  Rng rng(42);
  for (int i = 0; i < 3000; ++i) {
    std::string junk;
    const u32 len = rng.below(120);
    for (u32 j = 0; j < len; ++j) {
      const u32 pick = rng.below(10);
      if (pick < 2) junk.push_back('S');
      else if (pick < 4) junk.push_back('\n');
      else junk.push_back(kJunkChars[rng.below(sizeof(kJunkChars) - 1)]);
    }
    from_srec(junk);  // must not throw
  }
  EXPECT_FALSE(from_srec("").ok);
  EXPECT_FALSE(from_srec("S").ok);
  EXPECT_FALSE(from_srec("Sx\n").ok);
  EXPECT_FALSE(from_srec("S305ZZZZ00FF\n").ok);
}

}  // namespace
}  // namespace la::sasm
