#include "sasm/assembler.hpp"

#include <gtest/gtest.h>

#include "isa/decode.hpp"
#include "isa/encode.hpp"

namespace la::sasm {
namespace {

using isa::Cond;
using isa::Mnemonic;

TEST(Assembler, SingleInstruction) {
  const Image img = assemble_or_throw("add %g1, %g2, %g3\n");
  ASSERT_EQ(img.data.size(), 4u);
  EXPECT_EQ(img.word_at(0), isa::encode_arith_rr(Mnemonic::kAdd, 3, 1, 2));
}

TEST(Assembler, OrgAndLabels) {
  const Image img = assemble_or_throw(R"(
      .org 0x1000
  _start:
      nop
  loop:
      ba loop
      nop
  )");
  EXPECT_EQ(img.base, 0x1000u);
  EXPECT_EQ(img.entry, 0x1000u);
  EXPECT_EQ(img.symbol("loop"), 0x1004u);
  // ba loop at 0x1004: disp = 0
  EXPECT_EQ(img.word_at(0x1004), isa::encode_branch(Cond::kA, false, 0));
}

TEST(Assembler, ForwardReferences) {
  const Image img = assemble_or_throw(R"(
      b target
      nop
      nop
  target:
      nop
  )");
  // b at 0, target at 12 -> disp = 3 words
  EXPECT_EQ(img.word_at(0), isa::encode_branch(Cond::kA, false, 3));
}

TEST(Assembler, SetExpandsToSethiOr) {
  const Image img = assemble_or_throw("set 0x12345678, %g1\n");
  ASSERT_EQ(img.data.size(), 8u);
  EXPECT_EQ(img.word_at(0), isa::encode_sethi(1, 0x12345678u >> 10));
  EXPECT_EQ(img.word_at(4),
            isa::encode_arith_ri(Mnemonic::kOr, 1, 1, 0x278));
}

TEST(Assembler, SethiHiLoPair) {
  const Image img = assemble_or_throw(R"(
      value = 0xdeadbeef
      sethi %hi(value), %g1
      or %g1, %lo(value), %g1
  )");
  EXPECT_EQ(img.word_at(0), isa::encode_sethi(1, 0xdeadbeefu >> 10));
  EXPECT_EQ(img.word_at(4),
            isa::encode_arith_ri(Mnemonic::kOr, 1, 1, 0xdeadbeefu & 0x3ff));
}

TEST(Assembler, MemoryOperands) {
  const Image img = assemble_or_throw(R"(
      ld [%g1 + 8], %g2
      ld [%g1 - 8], %g2
      ld [%g1 + %g2], %g3
      ld [%g1], %g2
      st %g2, [%sp]
      ldd [%o0], %g4
      std %g4, [%o0 + 8]
      ldub [%l0 + 1], %l1
      ldstub [%g1], %g2
      swap [%g1], %g2
  )");
  EXPECT_EQ(img.word_at(0), isa::encode_mem_ri(Mnemonic::kLd, 2, 1, 8));
  EXPECT_EQ(img.word_at(4), isa::encode_mem_ri(Mnemonic::kLd, 2, 1, -8));
  EXPECT_EQ(img.word_at(8), isa::encode_mem_rr(Mnemonic::kLd, 3, 1, 2));
  EXPECT_EQ(img.word_at(12), isa::encode_mem_rr(Mnemonic::kLd, 2, 1, 0));
  EXPECT_EQ(img.word_at(16), isa::encode_mem_rr(Mnemonic::kSt, 2, 14, 0));
  EXPECT_EQ(img.word_at(20), isa::encode_mem_rr(Mnemonic::kLdd, 4, 8, 0));
  EXPECT_EQ(img.word_at(24), isa::encode_mem_ri(Mnemonic::kStd, 4, 8, 8));
  EXPECT_EQ(img.word_at(28), isa::encode_mem_ri(Mnemonic::kLdub, 17, 16, 1));
  EXPECT_EQ(img.word_at(32), isa::encode_mem_rr(Mnemonic::kLdstub, 2, 1, 0));
  EXPECT_EQ(img.word_at(36), isa::encode_mem_rr(Mnemonic::kSwap, 2, 1, 0));
}

TEST(Assembler, SyntheticInstructions) {
  const Image img = assemble_or_throw(R"(
      nop
      mov 5, %g1
      mov %g1, %g2
      cmp %g1, 10
      tst %g3
      clr %g4
      inc %g5
      inc 8, %g5
      dec %g6
      not %g7
      neg %o0
      btst 4, %o1
      bset 2, %o2
      ret
      retl
  )");
  EXPECT_EQ(img.word_at(0), isa::encode_nop());
  EXPECT_EQ(img.word_at(4), isa::encode_arith_ri(Mnemonic::kOr, 1, 0, 5));
  EXPECT_EQ(img.word_at(8), isa::encode_arith_rr(Mnemonic::kOr, 2, 0, 1));
  EXPECT_EQ(img.word_at(12), isa::encode_arith_ri(Mnemonic::kSubcc, 0, 1, 10));
  EXPECT_EQ(img.word_at(16), isa::encode_arith_rr(Mnemonic::kOrcc, 0, 0, 3));
  EXPECT_EQ(img.word_at(20), isa::encode_arith_rr(Mnemonic::kOr, 4, 0, 0));
  EXPECT_EQ(img.word_at(24), isa::encode_arith_ri(Mnemonic::kAdd, 5, 5, 1));
  EXPECT_EQ(img.word_at(28), isa::encode_arith_ri(Mnemonic::kAdd, 5, 5, 8));
  EXPECT_EQ(img.word_at(32), isa::encode_arith_ri(Mnemonic::kSub, 6, 6, 1));
  EXPECT_EQ(img.word_at(36), isa::encode_arith_rr(Mnemonic::kXnor, 7, 7, 0));
  EXPECT_EQ(img.word_at(40), isa::encode_arith_rr(Mnemonic::kSub, 8, 0, 8));
  EXPECT_EQ(img.word_at(44), isa::encode_arith_ri(Mnemonic::kAndcc, 0, 9, 4));
  EXPECT_EQ(img.word_at(48), isa::encode_arith_ri(Mnemonic::kOr, 10, 10, 2));
  EXPECT_EQ(img.word_at(52), isa::encode_arith_ri(Mnemonic::kJmpl, 0, 31, 8));
  EXPECT_EQ(img.word_at(56), isa::encode_arith_ri(Mnemonic::kJmpl, 0, 15, 8));
}

TEST(Assembler, BranchVariantsAndAnnul) {
  const Image img = assemble_or_throw(R"(
  top:
      bne top
      be,a top
      bgu top
      bcc top
      bneg,a top
  )");
  EXPECT_EQ(isa::decode(img.word_at(0)).cond, Cond::kNe);
  EXPECT_FALSE(isa::decode(img.word_at(0)).annul);
  EXPECT_EQ(isa::decode(img.word_at(4)).cond, Cond::kE);
  EXPECT_TRUE(isa::decode(img.word_at(4)).annul);
  EXPECT_EQ(isa::decode(img.word_at(8)).cond, Cond::kGu);
  EXPECT_EQ(isa::decode(img.word_at(12)).cond, Cond::kCc);
  EXPECT_EQ(isa::decode(img.word_at(16)).cond, Cond::kNeg);
  EXPECT_TRUE(isa::decode(img.word_at(16)).annul);
}

TEST(Assembler, CallAndJmp) {
  const Image img = assemble_or_throw(R"(
      .org 0x100
      call func
      nop
      jmp %o7 + 8
      nop
  func:
      retl
      nop
  )");
  // call at 0x100, func at 0x110 -> disp 4
  EXPECT_EQ(img.word_at(0x100), isa::encode_call(4));
  EXPECT_EQ(img.word_at(0x108),
            isa::encode_arith_ri(Mnemonic::kJmpl, 0, 15, 8));
}

TEST(Assembler, DataDirectives) {
  const Image img = assemble_or_throw(R"(
      .org 0x2000
      .word 0xdeadbeef, 1, 2
      .half 0xbeef, 7
      .byte 1, 2, 3
      .align 4
      .ascii "hi"
      .asciz "ok"
      .skip 3, 0xaa
  )");
  EXPECT_EQ(img.word_at(0x2000), 0xdeadbeefu);
  EXPECT_EQ(img.word_at(0x2004), 1u);
  EXPECT_EQ(img.word_at(0x2008), 2u);
  EXPECT_EQ(img.data[0x200c - 0x2000], 0xbe);
  EXPECT_EQ(img.data[0x200d - 0x2000], 0xef);
  EXPECT_EQ(img.data[0x2010 - 0x2000], 1);
  EXPECT_EQ(img.data[0x2012 - 0x2000], 3);
  // .align pads to 0x2014
  EXPECT_EQ(img.data[0x2014 - 0x2000], 'h');
  EXPECT_EQ(img.data[0x2016 - 0x2000], 'o');
  EXPECT_EQ(img.data[0x2018 - 0x2000], 0);  // asciz terminator
  EXPECT_EQ(img.data[0x2019 - 0x2000], 0xaa);
  EXPECT_EQ(img.data.size(), 0x1cu);
}

TEST(Assembler, EquAndExpressions) {
  const Image img = assemble_or_throw(R"(
      BASE = 0x1000
      .equ SIZE, 256
      .org BASE
      .word BASE + SIZE * 2
      .word (BASE + SIZE) / 2
      .word -1
  )");
  EXPECT_EQ(img.word_at(0x1000), 0x1000u + 512u);
  EXPECT_EQ(img.word_at(0x1004), (0x1000u + 256u) / 2);
  EXPECT_EQ(img.word_at(0x1008), 0xffffffffu);
}

TEST(Assembler, SpecialRegisterInstructions) {
  const Image img = assemble_or_throw(R"(
      rd %psr, %g1
      wr %g1, 0x20, %psr
      rd %y, %g2
      wr %g0, %g2, %y
      rd %wim, %g3
      wr %g0, 2, %wim
      rd %tbr, %g4
      wr %g4, 0, %tbr
      rd %asr17, %g5
      wr %g5, 0, %asr17
  )");
  EXPECT_EQ(isa::decode(img.word_at(0)).mn, Mnemonic::kRdpsr);
  EXPECT_EQ(isa::decode(img.word_at(4)).mn, Mnemonic::kWrpsr);
  EXPECT_EQ(isa::decode(img.word_at(8)).mn, Mnemonic::kRdy);
  EXPECT_EQ(isa::decode(img.word_at(12)).mn, Mnemonic::kWry);
  EXPECT_EQ(isa::decode(img.word_at(16)).mn, Mnemonic::kRdwim);
  EXPECT_EQ(isa::decode(img.word_at(20)).mn, Mnemonic::kWrwim);
  EXPECT_EQ(isa::decode(img.word_at(24)).mn, Mnemonic::kRdtbr);
  EXPECT_EQ(isa::decode(img.word_at(28)).mn, Mnemonic::kWrtbr);
  EXPECT_EQ(isa::decode(img.word_at(32)).mn, Mnemonic::kRdasr);
  EXPECT_EQ(isa::decode(img.word_at(32)).rs1, 17);
  EXPECT_EQ(isa::decode(img.word_at(36)).mn, Mnemonic::kWrasr);
  EXPECT_EQ(isa::decode(img.word_at(36)).rd, 17);
}

TEST(Assembler, SaveRestoreForms) {
  const Image img = assemble_or_throw(R"(
      save %sp, -96, %sp
      restore
      save
      restore %g0, %g0, %g0
  )");
  EXPECT_EQ(img.word_at(0),
            isa::encode_arith_ri(Mnemonic::kSave, 14, 14, -96));
  EXPECT_EQ(img.word_at(4), isa::encode_arith_rr(Mnemonic::kRestore, 0, 0, 0));
  EXPECT_EQ(img.word_at(8), isa::encode_arith_rr(Mnemonic::kSave, 0, 0, 0));
}

TEST(Assembler, TrapInstructions) {
  const Image img = assemble_or_throw(R"(
      ta 3
      tne 0x10
  )");
  EXPECT_EQ(img.word_at(0), isa::encode_ticc(Cond::kA, 0, 3));
  EXPECT_EQ(img.word_at(4), isa::encode_ticc(Cond::kNe, 0, 0x10));
}

TEST(Assembler, StatementSeparators) {
  const Image img = assemble_or_throw("nop; nop; nop\n");
  EXPECT_EQ(img.data.size(), 12u);
}

TEST(Assembler, CurrentLocationSymbol) {
  const Image img = assemble_or_throw(R"(
      .org 0x400
      .word .
      .word .
  )");
  EXPECT_EQ(img.word_at(0x400), 0x400u);
  EXPECT_EQ(img.word_at(0x404), 0x404u);
}

TEST(Assembler, PaperKernelAssembles) {
  // The Fig 7 array-access kernel as we express it in assembly.
  const Image img = assemble_or_throw(R"(
      .org 0x40000000
  _start:
      set count, %o0
      set 0, %o1             ! i
      set 1000000, %o2       ! bound
  loop:
      and %o1, 1023, %o3     ! address = i % 1024
      ld [%o0 + %o3], %o4    ! x = count[address]
      add %o1, 32, %o1       ! i += 32
      cmp %o1, %o2
      bl loop
      nop
  done:
      ba done
      nop
      .align 32
  count:
      .skip 4096
  )");
  EXPECT_EQ(img.entry, 0x40000000u);
  EXPECT_GT(img.symbol("count"), img.symbol("loop"));
  EXPECT_EQ(img.symbol("count") % 32, 0u);
}

}  // namespace
}  // namespace la::sasm
