// The runtime blob itself: assembles cleanly, lays out the trap table
// correctly, and honours its options.
#include <gtest/gtest.h>

#include "isa/decode.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"

namespace la::sasm::rt {
namespace {

Image assembled(const RuntimeOptions& opt = {}) {
  return assemble_or_throw("    .org 0x40000100\n_start:\n    nop\n" +
                           runtime_source(opt));
}

TEST(RuntimeSource, AssemblesWithDefaults) {
  const Image img = assembled();
  EXPECT_NE(img.symbols.find("trap_table"), img.symbols.end());
  EXPECT_NE(img.symbols.find("rt_init"), img.symbols.end());
  EXPECT_NE(img.symbols.find("rt_window_overflow"), img.symbols.end());
  EXPECT_NE(img.symbols.find("rt_window_underflow"), img.symbols.end());
  EXPECT_NE(img.symbols.find("rt_umul"), img.symbols.end());
}

TEST(RuntimeSource, TableIsAlignedAndDense) {
  RuntimeOptions opt;
  const Image img = assembled(opt);
  EXPECT_EQ(img.symbol("trap_table"), opt.trap_table_base);
  EXPECT_EQ(opt.trap_table_base & 0xfffu, 0u);
  // Every entry begins with a branch (op=0, op2=2).
  for (unsigned tt = 0; tt < 256; ++tt) {
    const u32 w = img.word_at(opt.trap_table_base + tt * 16);
    const auto ins = isa::decode(w);
    EXPECT_EQ(ins.mn, isa::Mnemonic::kBicc) << "tt " << tt;
    EXPECT_EQ(ins.cond, isa::Cond::kA) << "tt " << tt;
  }
}

TEST(RuntimeSource, WindowEntriesPointAtHandlers) {
  RuntimeOptions opt;
  const Image img = assembled(opt);
  const auto target_of = [&](unsigned tt) {
    const Addr entry = opt.trap_table_base + tt * 16;
    const auto ins = isa::decode(img.word_at(entry));
    return entry + (static_cast<u32>(ins.disp) << 2);
  };
  EXPECT_EQ(target_of(0x05), img.symbol("rt_window_overflow"));
  EXPECT_EQ(target_of(0x06), img.symbol("rt_window_underflow"));
  EXPECT_EQ(target_of(0x02), img.symbol("rt_unexpected"));
  EXPECT_EQ(target_of(0x80), img.symbol("rt_unexpected"));
}

TEST(RuntimeSource, CustomHandlerOverridesEntry) {
  RuntimeOptions opt;
  opt.custom_handlers[0x18] = "_start";  // any existing label
  const Image img = assembled(opt);
  const Addr entry = opt.trap_table_base + 0x18 * 16;
  const auto ins = isa::decode(img.word_at(entry));
  EXPECT_EQ(entry + (static_cast<u32>(ins.disp) << 2), img.symbol("_start"));
}

TEST(RuntimeSource, OptionsChangeAddresses) {
  RuntimeOptions opt;
  opt.trap_table_base = 0x40040000;
  opt.stack_top = 0x400f0000;
  opt.fault_word = 0x40000040;
  const Image img = assembled(opt);
  EXPECT_EQ(img.symbol("trap_table"), 0x40040000u);
}

TEST(RuntimeSource, RotationShiftsMatchWindowCount) {
  // The overflow handler embeds the nwindows-1 shift; check it changes.
  RuntimeOptions a, b;
  a.nwindows = 8;
  b.nwindows = 16;
  const std::string sa = runtime_source(a);
  const std::string sb = runtime_source(b);
  EXPECT_NE(sa.find("sll %g1, 7"), std::string::npos);
  EXPECT_NE(sb.find("sll %g1, 15"), std::string::npos);
}

}  // namespace
}  // namespace la::sasm::rt
