#include "sasm/lexer.hpp"

#include <gtest/gtest.h>

namespace la::sasm {
namespace {

TEST(Lexer, RegistersAndAliases) {
  const auto t = tokenize("%g0 %o7 %l3 %i6 %sp %fp %r17");
  ASSERT_EQ(t.size(), 8u);  // 7 regs + end
  EXPECT_EQ(t[0].kind, TokKind::kReg);
  EXPECT_EQ(t[0].value, 0u);
  EXPECT_EQ(t[1].value, 15u);
  EXPECT_EQ(t[2].value, 19u);
  EXPECT_EQ(t[3].value, 30u);
  EXPECT_EQ(t[4].value, 14u);  // %sp = %o6
  EXPECT_EQ(t[5].value, 30u);  // %fp = %i6
  EXPECT_EQ(t[6].value, 17u);
}

TEST(Lexer, SpecialRegisters) {
  const auto t = tokenize("%y %psr %wim %tbr %asr17");
  ASSERT_EQ(t.size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t[i].kind, TokKind::kSpecial);
  EXPECT_EQ(t[4].text, "asr");
  EXPECT_EQ(t[4].value, 17u);
}

TEST(Lexer, HiLo) {
  const auto t = tokenize("%hi(x) %lo(x)");
  EXPECT_EQ(t[0].kind, TokKind::kHiLo);
  EXPECT_EQ(t[0].text, "hi");
  EXPECT_EQ(t[4].kind, TokKind::kHiLo);
  EXPECT_EQ(t[4].text, "lo");
}

TEST(Lexer, NumberBases) {
  const auto t = tokenize("42 0x2a 0b101010 052 0");
  EXPECT_EQ(t[0].value, 42u);
  EXPECT_EQ(t[1].value, 42u);
  EXPECT_EQ(t[2].value, 42u);
  EXPECT_EQ(t[3].value, 42u);  // octal
  EXPECT_EQ(t[4].value, 0u);
}

TEST(Lexer, CommentsIgnored) {
  EXPECT_EQ(tokenize("nop ! comment , with tokens").size(), 2u);
  EXPECT_EQ(tokenize("# whole line").size(), 1u);
  EXPECT_EQ(tokenize("").size(), 1u);
}

TEST(Lexer, StringEscapes) {
  const auto t = tokenize(R"(.ascii "a\n\t\"b\\")");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].kind, TokKind::kString);
  EXPECT_EQ(t[1].text, "a\n\t\"b\\");
}

TEST(Lexer, PunctuationStream) {
  const auto t = tokenize("[%g1 + 4], %g2");
  ASSERT_EQ(t.size(), 8u);
  EXPECT_EQ(t[0].text, "[");
  EXPECT_EQ(t[2].text, "+");
  EXPECT_EQ(t[4].text, "]");
  EXPECT_EQ(t[5].text, ",");
}

TEST(Lexer, ErrorsThrow) {
  EXPECT_THROW(tokenize("%q5"), std::runtime_error);
  EXPECT_THROW(tokenize("0xzz"), std::runtime_error);
  EXPECT_THROW(tokenize("\"unterminated"), std::runtime_error);
  EXPECT_THROW(tokenize("a @ b"), std::runtime_error);
  EXPECT_THROW(tokenize("%asr99"), std::runtime_error);
}

TEST(Lexer, ColumnsAreOneBased) {
  const auto t = tokenize("  add %g1");
  EXPECT_EQ(t[0].col, 3u);
  EXPECT_EQ(t[1].col, 7u);
}

}  // namespace
}  // namespace la::sasm
