// The assembler must report problems as diagnostics with line numbers,
// never crash, and never produce an image when anything failed.
#include <gtest/gtest.h>

#include "sasm/assembler.hpp"

namespace la::sasm {
namespace {

AsmResult asm_of(std::string_view src) {
  Assembler a;
  return a.assemble(src);
}

TEST(AsmErrors, UnknownMnemonic) {
  const AsmResult r = asm_of("frobnicate %g1, %g2, %g3\n");
  ASSERT_FALSE(r.ok);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 1u);
  EXPECT_NE(r.errors[0].message.find("frobnicate"), std::string::npos);
}

TEST(AsmErrors, UndefinedSymbol) {
  const AsmResult r = asm_of("ba nowhere\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.errors[0].message.find("nowhere"), std::string::npos);
}

TEST(AsmErrors, RedefinedLabel) {
  const AsmResult r = asm_of("x: nop\nx: nop\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_NE(r.errors[0].message.find("redefined"), std::string::npos);
}

TEST(AsmErrors, ImmediateOutOfRange) {
  EXPECT_FALSE(asm_of("add %g1, 5000, %g2\n").ok);
  EXPECT_FALSE(asm_of("add %g1, -5000, %g2\n").ok);
  // Boundary values are fine.
  EXPECT_TRUE(asm_of("add %g1, 4095, %g2\nadd %g1, -4096, %g2\n").ok);
}

TEST(AsmErrors, BranchTargetUnaligned) {
  const AsmResult r = asm_of(R"(
      .org 0x100
      ba x
      nop
      .byte 1
  x:  nop
  )");
  EXPECT_FALSE(r.ok);
}

TEST(AsmErrors, TrapNumberRange) {
  EXPECT_FALSE(asm_of("ta 128\n").ok);
  EXPECT_TRUE(asm_of("ta 127\n").ok);
}

TEST(AsmErrors, MultipleErrorsAllReported) {
  const AsmResult r = asm_of("bogus1\nnop\nbogus2\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errors.size(), 2u);
  EXPECT_EQ(r.errors[0].line, 1u);
  EXPECT_EQ(r.errors[1].line, 3u);
}

TEST(AsmErrors, TrailingGarbage) {
  EXPECT_FALSE(asm_of("nop nop\n").ok);
  EXPECT_FALSE(asm_of("add %g1, %g2, %g3, %g4\n").ok);
}

TEST(AsmErrors, BadDirectives) {
  EXPECT_FALSE(asm_of(".bogus 1\n").ok);
  EXPECT_FALSE(asm_of(".align 3\n").ok);  // not a power of two
  EXPECT_FALSE(asm_of(".ascii 42\n").ok);
  EXPECT_FALSE(asm_of(".byte 300\n").ok);
}

TEST(AsmErrors, OrgNeedsBackwardSymbols) {
  // .org with a forward reference cannot be sized in pass 1.
  EXPECT_FALSE(asm_of(".org later\nlater: nop\n").ok);
  // Backward reference is fine.
  EXPECT_TRUE(asm_of("before = 0x100\n.org before\nnop\n").ok);
}

TEST(AsmErrors, SethiRangeCheck) {
  EXPECT_FALSE(asm_of("sethi 0x400000, %g1\n").ok);
  EXPECT_TRUE(asm_of("sethi 0x3fffff, %g1\n").ok);
}

TEST(AsmErrors, ExpressionDivisionByZero) {
  EXPECT_FALSE(asm_of(".word 1/0\n").ok);
}

TEST(AsmErrors, LexerErrorsCarryLineNumbers) {
  const AsmResult r = asm_of("nop\n%qq\n");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.errors[0].line, 2u);
}

TEST(AsmErrors, FailedAssemblyYieldsNoImage) {
  const AsmResult r = asm_of("bogus\n");
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.image.data.empty());
  EXPECT_THROW(assemble_or_throw("bogus\n"), std::runtime_error);
}

}  // namespace
}  // namespace la::sasm
