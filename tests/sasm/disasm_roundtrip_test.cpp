// Property: the disassembler's output is valid sasm input, and
// re-assembling it reproduces the original encoding bit-for-bit.
// This locks the three tools (decoder, disassembler, assembler) together.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "isa/decode.hpp"
#include "isa/disasm.hpp"
#include "sasm/assembler.hpp"

namespace la::sasm {
namespace {

/// Mnemonics whose text form cannot round-trip standalone (branch/call
/// displacements render as absolute targets that need a matching .org,
/// handled separately below), plus the FP/CP op spaces the disassembler
/// prints as comments.
bool reassemblable_inline(const isa::Instruction& ins) {
  using M = isa::Mnemonic;
  switch (ins.mn) {
    case M::kFpop1: case M::kFpop2: case M::kCpop1: case M::kCpop2:
    case M::kLdf: case M::kLdfsr: case M::kLddf: case M::kStf:
    case M::kStfsr: case M::kStdfq: case M::kStdf:
    case M::kLdc: case M::kLdcsr: case M::kLddc: case M::kStc:
    case M::kStcsr: case M::kStdcq: case M::kStdc:
    case M::kFbfcc: case M::kCbccc:  // FP/CP branch condition mnemonics
    case M::kInvalid:                // are not (and need not be) parsed
      return false;
    // Alternate-space ops disassemble with a decimal ASI suffix the
    // assembler accepts only in the reg+reg form; with i=1 they are
    // invalid anyway (decode rejects), so all decoded ones round-trip.
    default:
      return true;
  }
}

TEST(DisasmRoundtrip, RandomWordsReassembleIdentically) {
  Rng rng(0x50a5c);
  Assembler as;
  int checked = 0;
  for (int i = 0; i < 60000 && checked < 12000; ++i) {
    const u32 w = rng.next_u32();
    const isa::Instruction ins = isa::decode(w);
    if (!ins.valid() || !reassemblable_inline(ins)) continue;

    // Anchor at a fixed pc so branch/call targets render resolvably.
    const Addr pc = 0x40000000;
    const std::string text = isa::disassemble(ins, pc);
    const std::string src =
        "    .org 0x40000000\n    " + text + "\n";
    const AsmResult r = as.assemble(src);
    ASSERT_TRUE(r.ok) << "word " << hex32(w) << " -> '" << text
                      << "'\n" << r.error_text();
    const u32 back = r.image.word_at(pc);
    // Compare decoded fields (reserved don't-care bits may differ for a
    // handful of encodings; the decode must agree completely).
    const isa::Instruction again = isa::decode(back);
    ASSERT_EQ(again.mn, ins.mn) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.rd, ins.rd) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.rs1, ins.rs1) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.rs2, ins.rs2) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.imm, ins.imm) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.simm13, ins.simm13) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.imm22, ins.imm22) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.cond, ins.cond) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.annul, ins.annul) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.disp, ins.disp) << hex32(w) << " -> " << text;
    ASSERT_EQ(again.asi, ins.asi) << hex32(w) << " -> " << text;
    ++checked;
  }
  EXPECT_GE(checked, 12000);
}

TEST(DisasmRoundtrip, WholeProgramListingReassembles) {
  // Assemble a real program, disassemble the image, re-assemble the
  // listing, and require identical bytes.
  const char* src = R"(
      .org 0x40000000
  _start:
      save %sp, -96, %sp
      set 0x12345678, %g1
      ld [%g1 + 8], %g2
      addcc %g2, -1, %g2
      bne,a _start
      st %g2, [%g1 + 8]
      umul %g2, %g1, %g3
      rd %y, %g4
      wr %g4, 0xff, %y
      ldd [%g1], %o0
      std %o0, [%g1 + 16]
      ldstub [%g1 + 3], %o2
      swap [%g1 + 4], %o3
      ta 3
      restore
      ret
      nop
  )";
  const Image img = assemble_or_throw(src);

  std::string listing = "    .org 0x40000000\n";
  for (Addr a = img.base; a < img.end(); a += 4) {
    listing += "    " + isa::disassemble_word(img.word_at(a), a) + "\n";
  }
  const Image again = assemble_or_throw(listing);
  ASSERT_EQ(again.data.size(), img.data.size());
  for (Addr a = img.base; a < img.end(); a += 4) {
    EXPECT_EQ(again.word_at(a), img.word_at(a)) << "at " << hex32(a);
  }
}

}  // namespace
}  // namespace la::sasm
