// APB bridge and the LEON peripherals.
#include <gtest/gtest.h>

#include "bus/apb.hpp"
#include "bus/peripherals.hpp"

namespace la::bus {
namespace {

struct ApbFixture : ::testing::Test {
  ApbFixture() : bridge(0x80000000), cyc([this] { return clock; }) {
    bridge.attach(0x100, 0x100, &uart);
    bridge.attach(0x200, 0x100, &timer);
    bridge.attach(0x300, 0x100, &irq);
    bridge.attach(0x400, 0x100, &gpio);
    bridge.attach(0x500, 0x100, &cyc);
    bus.attach(0x80000000, 0x100000, &bridge);
  }

  u32 rd(Addr a) {
    u32 v = 0;
    bus.read32(Master::kCpuData, a, v);
    return v;
  }
  void wr(Addr a, u32 v) { bus.write32(Master::kCpuData, a, v); }

  Cycles clock = 0;
  AhbBus bus;
  ApbBridge bridge;
  Uart uart;
  LeonTimer timer{8};
  IrqController irq;
  GpioPort gpio;
  CycleCounter cyc;
};

TEST_F(ApbFixture, UartTransmitCollects) {
  for (char c : std::string("FPX")) wr(0x80000100, static_cast<u32>(c));
  EXPECT_EQ(uart.tx_log(), "FPX");
  EXPECT_EQ(rd(0x80000104) & 1u, 1u);  // TX always ready
}

TEST_F(ApbFixture, UartReceivePath) {
  EXPECT_EQ(rd(0x80000104) & 2u, 0u);  // no RX data
  uart.host_send("ok");
  EXPECT_EQ(rd(0x80000104) & 2u, 2u);
  EXPECT_EQ(rd(0x80000100), u32{'o'});
  EXPECT_EQ(rd(0x80000100), u32{'k'});
  EXPECT_EQ(rd(0x80000104) & 2u, 0u);  // drained
}

TEST_F(ApbFixture, TimerCountsDownAndReloads) {
  wr(0x80000204, 100);  // reload
  wr(0x80000200, 10);   // counter
  wr(0x80000208, LeonTimer::kCtrlEnable | LeonTimer::kCtrlAutoReload);
  timer.advance(5);
  EXPECT_EQ(rd(0x80000200), 5u);
  timer.advance(6);  // crosses zero -> reload to 100
  EXPECT_EQ(rd(0x80000200), 100u);
  EXPECT_EQ(timer.underflows(), 1u);
}

TEST_F(ApbFixture, TimerOneShotStops) {
  wr(0x80000200, 3);
  wr(0x80000208, LeonTimer::kCtrlEnable);
  timer.advance(10);
  EXPECT_FALSE(timer.enabled());
  EXPECT_EQ(rd(0x80000200), 0u);
  EXPECT_EQ(timer.underflows(), 1u);
}

TEST_F(ApbFixture, TimerRaisesIrqThroughController) {
  u8 cpu_level = 0;
  IrqController ic([&](u8 l) { cpu_level = l; });
  LeonTimer t2(9, [&](u8 l) { ic.raise(l); });
  t2.write(reg::kTimerCounter, 1);
  t2.write(reg::kTimerCtrl,
           LeonTimer::kCtrlEnable | LeonTimer::kCtrlIrqEnable);
  t2.advance(5);
  EXPECT_EQ(cpu_level, 9u);
  ic.clear(9);
  EXPECT_EQ(cpu_level, 0u);
}

TEST_F(ApbFixture, IrqPriorityAndMask) {
  u8 cpu_level = 0;
  IrqController ic([&](u8 l) { cpu_level = l; });
  ic.raise(3);
  ic.raise(11);
  EXPECT_EQ(cpu_level, 11u);  // highest pending wins
  ic.write(reg::kIrqMask, ~(1u << 11));  // mask level 11
  EXPECT_EQ(cpu_level, 3u);
  ic.write(reg::kIrqClear, 1u << 3);
  EXPECT_EQ(cpu_level, 0u);
  EXPECT_EQ(ic.pending(), 1u << 11);  // still latched, just masked
}

TEST_F(ApbFixture, IrqForceRegister) {
  wr(0x80000308, 1u << 5);
  EXPECT_EQ(rd(0x80000300), 1u << 5);
}

TEST_F(ApbFixture, GpioHistory) {
  wr(0x80000400, 0x1);
  wr(0x80000400, 0x3);
  EXPECT_EQ(gpio.out(), 0x3u);
  ASSERT_EQ(gpio.history().size(), 2u);
  gpio.set_in(0xaa);
  EXPECT_EQ(rd(0x80000404), 0xaau);
}

TEST_F(ApbFixture, CycleCounterMeasuresWindow) {
  clock = 100;
  wr(0x80000500, CycleCounter::kStart);
  clock = 350;
  wr(0x80000500, CycleCounter::kStop);
  EXPECT_EQ(rd(0x80000504), 250u);
  // Accumulates across start/stop pairs.
  clock = 400;
  wr(0x80000500, CycleCounter::kStart);
  clock = 410;
  wr(0x80000500, CycleCounter::kStop);
  EXPECT_EQ(rd(0x80000504), 260u);
  wr(0x80000500, CycleCounter::kReset);
  EXPECT_EQ(rd(0x80000504), 0u);
}

TEST_F(ApbFixture, UnmappedApbOffsetErrors) {
  u32 v = 0;
  AhbTransfer t;
  t.addr = 0x80000900;
  t.data = &v;
  bus.transfer(Master::kCpuData, t);
  EXPECT_TRUE(t.error);
}

TEST_F(ApbFixture, ApbCostsMoreThanZero) {
  const Cycles c = bus.write32(Master::kCpuData, 0x80000400, 1);
  EXPECT_GE(c, 3u);  // 1 AHB addr + 2 APB cycles
  EXPECT_GT(bridge.apb_cycles(), 0u);
}

}  // namespace
}  // namespace la::bus
