// AHB bus: decode, error responses, burst accounting, stats.
#include "bus/ahb.hpp"

#include <gtest/gtest.h>

#include "mem/sram.hpp"

namespace la::bus {
namespace {

TEST(AhbBus, ReadWriteRoundTrip) {
  mem::Sram sram(0x1000, 4096);
  AhbBus bus;
  bus.attach(0x1000, 4096, &sram);

  ASSERT_GT(bus.write32(Master::kCpuData, 0x1100, 0xdeadbeef), 0u);
  u32 v = 0;
  ASSERT_GT(bus.read32(Master::kCpuData, 0x1100, v), 0u);
  EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(AhbBus, UnmappedAddressErrors) {
  AhbBus bus;
  u32 v = 0;
  AhbTransfer t;
  t.addr = 0x5000;
  t.data = &v;
  const Cycles c = bus.transfer(Master::kCpuData, t);
  EXPECT_TRUE(t.error);
  EXPECT_EQ(c, 3u);  // 1 addr + 2-cycle ERROR response
  EXPECT_EQ(bus.stats().unmapped, 1u);
}

TEST(AhbBus, OverlappingAttachRejected) {
  mem::Sram a(0x0, 4096), b(0x800, 4096);
  AhbBus bus;
  bus.attach(0x0, 4096, &a);
  EXPECT_THROW(bus.attach(0x800, 4096, &b), std::logic_error);
}

TEST(AhbBus, BurstIsCheaperThanSingles) {
  mem::Sram sram(0, 65536);
  AhbBus bus;
  bus.attach(0, 65536, &sram);

  u32 buf[8] = {};
  AhbTransfer burst;
  burst.addr = 0x100;
  burst.beats = 8;
  burst.burst = HBurst::kIncr8;
  burst.data = buf;
  const Cycles burst_cost = bus.transfer(Master::kCpuData, burst);

  Cycles singles_cost = 0;
  for (int i = 0; i < 8; ++i) {
    u32 v;
    singles_cost += bus.read32(Master::kCpuData, 0x200 + 4 * i, v);
  }
  // The burst pays one address phase; singles pay eight.
  EXPECT_EQ(singles_cost - burst_cost, 7u);
}

TEST(AhbBus, SubWordBeats) {
  mem::Sram sram(0, 4096);
  AhbBus bus;
  bus.attach(0, 4096, &sram);
  u32 w = 0x11223344;
  AhbTransfer t;
  t.addr = 0x10;
  t.write = true;
  t.data = &w;
  bus.transfer(Master::kCpuData, t);

  u32 b = 0;
  AhbTransfer rb;
  rb.addr = 0x11;
  rb.beat_bytes = 1;
  rb.data = &b;
  bus.transfer(Master::kCpuData, rb);
  EXPECT_EQ(b, 0x22u);

  u32 h = 0xbeef;
  AhbTransfer wh;
  wh.addr = 0x12;
  wh.write = true;
  wh.beat_bytes = 2;
  wh.data = &h;
  bus.transfer(Master::kCpuData, wh);
  u32 v;
  bus.read32(Master::kCpuData, 0x10, v);
  EXPECT_EQ(v, 0x1122beefu);
}

TEST(AhbBus, PerMasterStats) {
  mem::Sram sram(0, 4096);
  AhbBus bus;
  bus.attach(0, 4096, &sram);
  u32 v;
  bus.read32(Master::kCpuInstr, 0, v);
  bus.read32(Master::kCpuInstr, 4, v);
  bus.write32(Master::kCpuData, 8, 1);
  EXPECT_EQ(bus.stats().of(Master::kCpuInstr).transfers, 2u);
  EXPECT_EQ(bus.stats().of(Master::kCpuData).transfers, 1u);
  EXPECT_EQ(bus.stats().of(Master::kDma).transfers, 0u);
  EXPECT_GT(bus.stats().total_cycles(), 0u);
  bus.reset_stats();
  EXPECT_EQ(bus.stats().total_cycles(), 0u);
}

TEST(AhbBus, DebugAccessBypassesTiming) {
  mem::Sram sram(0, 4096);
  AhbBus bus;
  bus.attach(0, 4096, &sram);
  ASSERT_TRUE(bus.debug_write(0x20, 4, 0xcafef00dull));
  u64 v = 0;
  ASSERT_TRUE(bus.debug_read(0x20, 4, v));
  EXPECT_EQ(v, 0xcafef00dull);
  // No stats recorded for debug traffic.
  EXPECT_EQ(bus.stats().total_cycles(), 0u);
  // Out of range fails.
  EXPECT_FALSE(bus.debug_read(0x9000, 4, v));
}

TEST(AhbBus, SramRangeErrorMidBurst) {
  mem::Sram sram(0, 64);
  AhbBus bus;
  bus.attach(0, 4096, &sram);  // window larger than the device
  u32 buf[8] = {};
  AhbTransfer t;
  t.addr = 48;
  t.beats = 8;  // runs off the 64-byte SRAM
  t.burst = HBurst::kIncr8;
  t.data = buf;
  bus.transfer(Master::kCpuData, t);
  EXPECT_TRUE(t.error);
}

}  // namespace
}  // namespace la::bus
