// The APB watchdog: arm/advance/trip/kick semantics and the register
// interface leon_ctrl and diagnostics read it through.
#include <gtest/gtest.h>

#include "bus/watchdog.hpp"

namespace la::bus {
namespace {

TEST(Watchdog, DisarmedNeverTrips) {
  Watchdog w;
  int trips = 0;
  w.set_on_trip([&] { ++trips; });
  w.advance(1'000'000);
  EXPECT_FALSE(w.tripped());
  EXPECT_EQ(trips, 0);
}

TEST(Watchdog, TripsExactlyOnceWhenBudgetExpires) {
  Watchdog w;
  int trips = 0;
  w.set_on_trip([&] { ++trips; });
  w.arm(100);
  EXPECT_TRUE(w.armed());
  w.advance(99);
  EXPECT_FALSE(w.tripped());
  EXPECT_EQ(w.remaining(), 1u);
  w.advance(1);
  EXPECT_TRUE(w.tripped());
  EXPECT_FALSE(w.armed());  // a tripped watchdog has fired; no double trip
  w.advance(500);
  EXPECT_EQ(trips, 1);
  EXPECT_EQ(w.stats().trips, 1u);
}

TEST(Watchdog, DisarmBeforeExpiryCancels) {
  Watchdog w;
  int trips = 0;
  w.set_on_trip([&] { ++trips; });
  w.arm(100);
  w.advance(60);
  w.disarm();
  w.advance(1000);
  EXPECT_FALSE(w.tripped());
  EXPECT_EQ(trips, 0);
}

TEST(Watchdog, KickRefillsTheBudget) {
  Watchdog w;
  w.arm(100);
  w.advance(80);
  EXPECT_EQ(w.remaining(), 20u);
  w.kick();
  EXPECT_EQ(w.remaining(), 100u);
  EXPECT_EQ(w.stats().kicks, 1u);
  w.advance(99);
  EXPECT_FALSE(w.tripped());
}

TEST(Watchdog, RearmAfterTripClearsTrippedState) {
  Watchdog w;
  w.arm(10);
  w.advance(10);
  ASSERT_TRUE(w.tripped());
  w.arm(50);
  EXPECT_TRUE(w.armed());
  EXPECT_FALSE(w.tripped());
  w.advance(49);
  EXPECT_FALSE(w.tripped());
  w.advance(1);
  EXPECT_TRUE(w.tripped());
  EXPECT_EQ(w.stats().trips, 2u);
}

TEST(Watchdog, RegisterInterface) {
  Watchdog w;
  w.write(reg::kWdogBudget, 200);
  w.write(reg::kWdogCtrl, Watchdog::kCtrlArm);
  EXPECT_EQ(w.read(reg::kWdogStatus) & 1u, 1u);  // armed
  w.advance(150);
  w.write(reg::kWdogCtrl, Watchdog::kCtrlKick);
  EXPECT_EQ(w.remaining(), 200u);
  w.advance(200);
  EXPECT_EQ(w.read(reg::kWdogStatus) & 2u, 2u);  // tripped
  EXPECT_EQ(w.read(reg::kWdogTrips), 1u);
  w.write(reg::kWdogCtrl, Watchdog::kCtrlDisarm);
  EXPECT_EQ(w.read(reg::kWdogStatus) & 1u, 0u);
}

}  // namespace
}  // namespace la::bus
