// SystemSnapshot unit tests: round-trip fidelity, versioning/corruption
// rejection, cross-configuration restore, wedge-flag capture, and the
// warm-start pool.  The heavy identity grid (run N == snapshot@k + restore
// + run N-k across seeds x fast paths x recorder) lives in
// tests/property/snapshot_identity_test.cpp.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"
#include "sim/snapshot.hpp"

namespace la::test {
namespace {

sasm::Image work_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      mov 300, %o1
      mov 0, %o2
  loop:
      add %o2, %o1, %o2
      subcc %o1, 1, %o1
      bne loop
      nop
      set result, %g1
      st %o2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

/// Boot a node and drive it into the middle of a running program so the
/// snapshot captures non-trivial state (dirty caches, armed watchdog,
/// in-flight run timing).
sim::LiquidSystem& mid_run_node(sim::LiquidSystem& node) {
  node.run(300);
  ctrl::LiquidClient client(node);
  EXPECT_TRUE(client.load_program(work_program()));
  EXPECT_TRUE(client.start(0x40000100));
  node.run(200);  // into the loop, well before completion
  return node;
}

TEST(SystemSnapshot, ResnapshotOfRestoreIsBitIdentical) {
  sim::SystemConfig cfg;
  cfg.watchdog_budget = 1'000'000;
  sim::LiquidSystem a(cfg);
  mid_run_node(a);

  const sim::SystemSnapshot snap = a.snapshot();
  ASSERT_FALSE(snap.empty());
  ASSERT_TRUE(sim::SystemSnapshot::validate(snap.data));

  sim::LiquidSystem b(cfg);
  std::string err;
  ASSERT_TRUE(b.restore(snap, &err)) << err;
  EXPECT_EQ(b.now(), a.now());
  EXPECT_EQ(b.cpu().state().pc, a.cpu().state().pc);
  EXPECT_EQ(b.controller().state(), a.controller().state());
  EXPECT_EQ(b.snapshot().data, snap.data);
}

TEST(SystemSnapshot, SerializeDeserializeRoundTrip) {
  sim::LiquidSystem a;
  a.run(500);
  const sim::SystemSnapshot snap = a.snapshot();

  // Cross-process simulation: only the bytes travel.
  Bytes wire = snap.serialize();
  auto back = sim::SystemSnapshot::deserialize(std::move(wire));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->data, snap.data);

  sim::LiquidSystem b;
  ASSERT_TRUE(b.restore(*back));
  EXPECT_EQ(b.snapshot().data, snap.data);
}

TEST(SystemSnapshot, RestoredRunMatchesStraightRun) {
  sim::SystemConfig cfg;
  sim::LiquidSystem a(cfg);
  mid_run_node(a);
  const sim::SystemSnapshot snap = a.snapshot();

  sim::LiquidSystem b(cfg);
  ASSERT_TRUE(b.restore(snap));

  a.run(5'000);
  b.run(5'000);
  EXPECT_EQ(a.snapshot().data, b.snapshot().data);
  EXPECT_EQ(a.controller().state(), net::LeonState::kDone);
  EXPECT_EQ(b.controller().state(), net::LeonState::kDone);
  const u32 result = work_program().symbol("result");
  EXPECT_EQ(a.sram().backdoor_word(result), b.sram().backdoor_word(result));
  EXPECT_NE(a.sram().backdoor_word(result), 0u);
}

TEST(SystemSnapshot, WedgeFlagSurvivesRestore) {
  sim::LiquidSystem a;
  a.run(300);
  a.cpu().set_wedged(true);
  const sim::SystemSnapshot snap = a.snapshot();

  sim::LiquidSystem b;
  ASSERT_TRUE(b.restore(snap));
  EXPECT_TRUE(b.cpu().wedged());
}

TEST(SystemSnapshot, CrossesHostFastPathConfigurations) {
  sim::SystemConfig fast;
  fast.fast_run_loop = true;
  fast.pipeline.host_fast_paths = true;
  sim::LiquidSystem a(fast);
  mid_run_node(a);
  const sim::SystemSnapshot snap = a.snapshot();

  sim::SystemConfig slow;
  slow.fast_run_loop = false;
  slow.pipeline.host_fast_paths = false;
  slow.pipeline.cpu.host_decode_cache = false;
  sim::LiquidSystem b(slow);
  std::string err;
  ASSERT_TRUE(b.restore(snap, &err)) << err;
  // Host knobs are not architectural: the recapture is bit-identical even
  // though b runs the reference paths.
  EXPECT_EQ(b.snapshot().data, snap.data);
}

TEST(SystemSnapshot, AdoptsSnapshotPipelineArchitecture) {
  sim::SystemConfig big;
  big.pipeline.dcache.size_bytes = 4096;
  sim::LiquidSystem a(big);
  a.run(400);
  const sim::SystemSnapshot snap = a.snapshot();

  sim::SystemConfig small;  // restoring node booted a different bitstream
  small.pipeline.dcache.size_bytes = 1024;
  sim::LiquidSystem b(small);
  ASSERT_TRUE(b.restore(snap));
  EXPECT_EQ(b.cpu().config().dcache.size_bytes, 4096u);
  EXPECT_EQ(b.snapshot().data, snap.data);
}

TEST(SystemSnapshot, RejectsCorruptionAndVersionSkew) {
  sim::LiquidSystem a;
  a.run(100);
  const sim::SystemSnapshot good = a.snapshot();

  std::string err;
  Bytes flipped = good.data;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(sim::SystemSnapshot::validate(flipped, &err));
  EXPECT_EQ(err, "snapshot checksum mismatch");

  Bytes bad_magic = good.data;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(sim::SystemSnapshot::validate(bad_magic, &err));
  EXPECT_EQ(err, "bad snapshot magic");

  Bytes future = good.data;
  future[4] = 0x7f;  // version bytes are little-endian at offset 4
  EXPECT_FALSE(sim::SystemSnapshot::validate(future, &err));
  EXPECT_EQ(err, "unsupported snapshot version");

  EXPECT_FALSE(sim::SystemSnapshot::deserialize(Bytes{1, 2, 3}).has_value());
}

TEST(SystemSnapshot, RejectsMismatchedPlatform) {
  sim::SystemConfig cfg;
  cfg.sdram_size = 1u << 22;
  sim::LiquidSystem a(cfg);
  a.run(100);
  const sim::SystemSnapshot snap = a.snapshot();

  sim::SystemConfig other;
  other.sdram_size = 1u << 21;
  sim::LiquidSystem b(other);
  std::string err;
  EXPECT_FALSE(b.restore(snap, &err));
  EXPECT_EQ(err, "snapshot platform config does not match this system");
}

TEST(SnapshotPool, FirstWriterWinsAndCountsHits) {
  sim::LiquidSystem a;
  a.run(100);
  sim::SnapshotPool pool;
  EXPECT_EQ(pool.get("boot|k1"), nullptr);

  pool.put("boot|k1", a.snapshot());
  a.run(100);
  pool.put("boot|k1", a.snapshot());  // later capture must NOT replace
  EXPECT_EQ(pool.size(), 1u);

  auto sp = pool.get("boot|k1");
  ASSERT_NE(sp, nullptr);
  sim::LiquidSystem b;
  ASSERT_TRUE(b.restore(*sp));

  const auto st = pool.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_GT(pool.bytes(), 0u);
}

}  // namespace
}  // namespace la::test
