// The debug monitor: breakpoints, watchpoints, history, inspection.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/monitor.hpp"
#include "sim/report.hpp"

namespace la::sim {
namespace {

struct MonFixture : ::testing::Test {
  MonFixture() : mon(node) {
    node.run(100);
    img = sasm::assemble_or_throw(R"(
        .org 0x40000100
    _start:
        mov 0, %g1
        mov 10, %g2
    loop:
        add %g1, %g2, %g1
        set counter, %g3
        st %g1, [%g3]
        subcc %g2, 1, %g2
        bne loop
        nop
    finish:
        jmp 0x40
        nop
        .align 4
    counter:
        .skip 4
    )");
    ctrl::LiquidClient client(node);
    EXPECT_TRUE(client.load_program(img));
    // Inject the Start command directly (no pumping): leon_ctrl plants the
    // mailbox and reconnects, but not a single CPU step runs — the monitor
    // is in full control of execution from here.
    net::UdpDatagram d;
    d.src_ip = net::make_ip(10, 0, 0, 9);
    d.src_port = 9;
    d.dst_ip = node.config().node_ip;
    d.dst_port = node.config().node_port;
    d.payload = net::StartCmd{img.entry}.serialize();
    node.ingress_frame(net::build_udp_packet(d));
    EXPECT_EQ(node.controller().state(), net::LeonState::kRunning);
  }

  LiquidSystem node;
  Monitor mon;
  sasm::Image img;
};

TEST_F(MonFixture, BreakpointStopsBeforeInstruction) {
  const Addr target = img.symbol("finish");
  mon.add_breakpoint(target);
  const auto stop = mon.cont(100000);
  EXPECT_EQ(stop.reason, Monitor::StopReason::kBreakpoint);
  EXPECT_EQ(stop.pc, target);
  // The loop ran to completion: g1 = 10+9+...+1 = 55.
  EXPECT_EQ(node.cpu().state().reg(1), 55u);
}

TEST_F(MonFixture, WriteWatchpointFiresOnFirstStore) {
  const Addr counter = img.symbol("counter");
  mon.add_watchpoint(counter, counter + 3, Monitor::Watch::kWrite);
  const auto stop = mon.cont(100000);
  EXPECT_EQ(stop.reason, Monitor::StopReason::kWatchpoint);
  EXPECT_EQ(stop.access, counter);
  EXPECT_EQ(*mon.read_word(counter), 10u);  // first iteration's store
}

TEST_F(MonFixture, ReadWatchpointIgnoresWrites) {
  const Addr counter = img.symbol("counter");
  mon.add_watchpoint(counter, counter + 3, Monitor::Watch::kRead);
  mon.add_breakpoint(img.symbol("finish"));
  const auto stop = mon.cont(100000);
  // The program only writes: we reach the breakpoint instead.
  EXPECT_EQ(stop.reason, Monitor::StopReason::kBreakpoint);
}

TEST_F(MonFixture, ContinueAfterBreakpointMakesProgress) {
  const Addr loop = img.symbol("loop");
  mon.add_breakpoint(loop);
  const auto s1 = mon.cont(100000);
  ASSERT_EQ(s1.reason, Monitor::StopReason::kBreakpoint);
  const u32 g2_first = node.cpu().state().reg(2);
  const auto s2 = mon.cont(100000);
  ASSERT_EQ(s2.reason, Monitor::StopReason::kBreakpoint);
  EXPECT_EQ(node.cpu().state().reg(2), g2_first - 1);  // one iteration later
}

TEST_F(MonFixture, StepLimitReported) {
  const auto stop = mon.cont(5);
  EXPECT_EQ(stop.reason, Monitor::StopReason::kStepLimit);
  EXPECT_EQ(stop.steps, 5u);
}

TEST_F(MonFixture, HistoryHoldsRecentInstructions) {
  mon.add_breakpoint(img.symbol("finish"));
  mon.cont(100000);
  const auto hist = mon.history(8);
  ASSERT_EQ(hist.size(), 8u);
  // The final entries are the last loop iteration + fallthrough.
  bool saw_bne = false;
  for (const auto& [pc, text] : hist) {
    if (text.rfind("bne", 0) == 0) saw_bne = true;
  }
  EXPECT_TRUE(saw_bne);
}

TEST_F(MonFixture, DisassembleAroundShowsProgram) {
  const std::string text =
      mon.disassemble_around(img.symbol("loop"), 1, 2);
  EXPECT_NE(text.find("=> 40000108"), std::string::npos);
  EXPECT_NE(text.find("add %g1, %g2, %g1"), std::string::npos);
}

TEST_F(MonFixture, RegisterDumpContainsState) {
  mon.cont(3);
  const std::string regs = mon.registers();
  EXPECT_NE(regs.find("pc="), std::string::npos);
  EXPECT_NE(regs.find("%g2="), std::string::npos);
  EXPECT_NE(regs.find("cwp="), std::string::npos);
}

TEST_F(MonFixture, ReadWordUnmappedIsNullopt) {
  EXPECT_FALSE(mon.read_word(0x20000000).has_value());
  EXPECT_TRUE(mon.read_word(img.entry).has_value());
}

TEST_F(MonFixture, ErrorModeReported) {
  // Poke an illegal instruction at the loop head and run into it.
  node.sram().backdoor_write_word(img.symbol("loop"), 0x00000000);  // unimp
  node.cpu().flush_caches();
  const auto stop = mon.cont(100000);
  EXPECT_EQ(stop.reason, Monitor::StopReason::kErrorMode);
}

TEST_F(MonFixture, SystemReportMentionsEverything) {
  mon.cont(50);
  const std::string rep = system_report(node);
  for (const char* key :
       {"cpu:", "icache", "dcache", "ahb:", "sdram-ctrl", "wrappers",
        "leon_ctrl"}) {
    EXPECT_NE(rep.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace la::sim
