// Golden test: system_report() moved from reading component stats structs
// directly to reading a metrics-registry snapshot.  The text is consumed
// by humans and scraped by harnesses, so the refactor must be
// byte-for-byte invisible.  This file keeps a copy of the original
// direct-stats formatter and diffs it against the snapshot-driven one
// after a real program run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"
#include "sim/report.hpp"

namespace la::sim {
namespace {

void line(std::string& out, const char* fmt, auto... args) {
  char buf[200];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
  out += '\n';
}

void cache_block(std::string& out, const char* name, const cache::Cache& c) {
  const auto& s = c.stats();
  line(out, "  %s: %uB line=%u ways=%u", name, c.config().size_bytes,
       c.config().line_bytes, c.config().ways);
  line(out,
       "    reads %llu (%llu miss)  writes %llu (%llu miss)  "
       "missrate %.2f%%  evictions %llu",
       (unsigned long long)s.reads(), (unsigned long long)s.read_misses,
       (unsigned long long)s.writes(), (unsigned long long)s.write_misses,
       100.0 * s.miss_ratio(), (unsigned long long)s.evictions);
}

/// The pre-registry system_report(), verbatim: the reference rendering.
std::string legacy_report(LiquidSystem& sys) {
  std::string out;
  line(out, "=== liquid system report @ cycle %llu ===",
       (unsigned long long)sys.now());

  const auto& pst = sys.cpu().stats();
  line(out,
       "cpu: %llu instructions, %llu annulled, %llu traps, %llu cycles "
       "(CPI %.2f)",
       (unsigned long long)pst.instructions,
       (unsigned long long)pst.annulled, (unsigned long long)pst.traps,
       (unsigned long long)pst.cycles,
       pst.instructions ? static_cast<double>(pst.cycles) / pst.instructions
                        : 0.0);
  line(out, "  stalls: icache %llu, dcache %llu, store-buffer %llu cycles",
       (unsigned long long)pst.icache_stall,
       (unsigned long long)pst.dcache_stall,
       (unsigned long long)pst.store_stall);
  line(out,
       "  mix: %llu loads, %llu stores, %llu branches (%llu taken), "
       "%llu calls, %llu mul/div",
       (unsigned long long)pst.loads, (unsigned long long)pst.stores,
       (unsigned long long)pst.branches,
       (unsigned long long)pst.taken_branches,
       (unsigned long long)pst.calls, (unsigned long long)pst.muldiv);

  cache_block(out, "icache", sys.cpu().icache());
  cache_block(out, "dcache", sys.cpu().dcache());

  const auto& ahb = sys.ahb().stats();
  line(out, "ahb: instr %llu transfers, data %llu transfers, %llu unmapped",
       (unsigned long long)ahb.of(bus::Master::kCpuInstr).transfers,
       (unsigned long long)ahb.of(bus::Master::kCpuData).transfers,
       (unsigned long long)ahb.unmapped);

  const auto& sd = sys.sdram_controller().stats();
  line(out, "sdram-ctrl: %llu handshakes (%llu words64), %llu wait cycles",
       (unsigned long long)sd.total_handshakes(),
       (unsigned long long)(sd.words[0] + sd.words[1] + sd.words[2]),
       (unsigned long long)sd.wait_cycles);
  const auto& ad = sys.sdram_adapter().stats();
  line(out,
       "  adapter: %llu read hs, %llu write hs, %llu rmw reads, "
       "%llu wasted words",
       (unsigned long long)ad.read_handshakes,
       (unsigned long long)ad.write_handshakes,
       (unsigned long long)ad.rmw_reads,
       (unsigned long long)ad.wasted_words64);

  const auto& w = sys.wrappers().stats();
  line(out,
       "wrappers: %llu datagrams in / %llu out, %llu bad IP, "
       "%llu wrong-addr",
       (unsigned long long)w.datagrams_in,
       (unsigned long long)w.datagrams_out, (unsigned long long)w.ip_bad,
       (unsigned long long)w.ip_wrong_addr);

  const auto& lc = sys.controller().stats();
  line(out,
       "leon_ctrl: %llu commands (%llu bad), %llu chunks "
       "(%llu dup), %llu runs (%llu completed), last run %llu cycles",
       (unsigned long long)lc.commands, (unsigned long long)lc.bad_commands,
       (unsigned long long)lc.chunks_loaded,
       (unsigned long long)lc.duplicate_chunks,
       (unsigned long long)lc.programs_started,
       (unsigned long long)lc.programs_completed,
       (unsigned long long)sys.controller().last_run_cycles());
  return out;
}

constexpr const char* kKernel = R"(
    .org 0x40000100
_start:
    set data, %o0
    mov 0, %o1
loop:
    ld [%o0 + %o1], %o2
    st %o2, [%o0 + %o1]
    add %o1, 4, %o1
    cmp %o1, 512
    bl loop
    nop
    jmp 0x40
    nop
    .align 32
data:
    .skip 4096
)";

TEST(ReportGolden, SnapshotDrivenTextMatchesLegacyByteForByte) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);
  const auto img = sasm::assemble_or_throw(kKernel);
  ASSERT_TRUE(client.run_program(img));

  const std::string expected = legacy_report(sys);
  const std::string actual = system_report(sys);
  EXPECT_EQ(actual, expected);
  // The run produced real traffic, so the golden is not vacuous.
  EXPECT_NE(expected.find("cpu: "), std::string::npos);
  EXPECT_GT(sys.cpu().stats().instructions, 100u);
}

TEST(ReportGolden, FreshSystemMatchesToo) {
  // All-zero counters exercise every %llu with 0 and the 0.00 CPI branch.
  sim::LiquidSystem sys;
  EXPECT_EQ(system_report(sys), legacy_report(sys));
}

TEST(ReportGolden, JsonCarriesTheSameNumbers) {
  sim::LiquidSystem sys;
  sys.run(500);
  const auto snap = sys.metrics_snapshot();
  const std::string json = system_report_json(sys);
  char needle[64];
  std::snprintf(needle, sizeof(needle), "\"cpu.instructions\":%llu",
                (unsigned long long)snap.value_u64("cpu.instructions"));
  EXPECT_NE(json.find(needle), std::string::npos);
}

/// The JSON shape as frozen in this PR: `{"cycle":..,"metrics":{..}` plus
/// an optional `"histograms"` section, 2-space indent, names in map order,
/// numbers via metrics::append_json_number.  Harnesses parse this output
/// (lsim --metrics-json), so drift is a break even when the text report
/// stays stable — this is the JSON sibling of legacy_report().
std::string golden_json(const metrics::Snapshot& snap) {
  std::string out = "{\n  \"cycle\":";
  metrics::append_json_number(out, static_cast<double>(snap.cycle));
  out += ",\n  \"metrics\":{";
  bool first = true;
  for (const auto& [name, v] : snap.values) {
    if (!first) out += ',';
    first = false;
    out += "\n    ";
    metrics::append_json_string(out, name);
    out += ':';
    metrics::append_json_number(out, v);
  }
  out += "\n  }";
  bool any_hist = false;
  for (const auto& [name, h] : snap.histograms) {
    if (h.count != 0) any_hist = true;
  }
  if (any_hist) {
    out += ",\n  \"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
      if (h.count == 0) continue;
      if (!first) out += ',';
      first = false;
      out += "\n    ";
      metrics::append_json_string(out, name);
      out += ":{\n      \"count\":";
      metrics::append_json_number(out, static_cast<double>(h.count));
      out += ",\n      \"mean\":";
      metrics::append_json_number(out, h.mean);
      out += ",\n      \"stddev\":";
      metrics::append_json_number(out, h.stddev);
      out += ",\n      \"min\":";
      metrics::append_json_number(out, h.min);
      out += ",\n      \"max\":";
      metrics::append_json_number(out, h.max);
      out += ",\n      \"buckets\":[";
      std::size_t last = h.buckets.size();
      while (last > 0 && h.buckets[last - 1] == 0) --last;
      for (std::size_t i = 0; i < last; ++i) {
        if (i) out += ',';
        metrics::append_json_number(out, static_cast<double>(h.buckets[i]));
      }
      out += "]\n    }";
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

TEST(ReportGolden, JsonMatchesFrozenShapeAfterRealRun) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);
  const auto img = sasm::assemble_or_throw(kKernel);
  ASSERT_TRUE(client.run_program(img));

  const auto snap = sys.metrics_snapshot();
  EXPECT_EQ(system_report_json(sys), golden_json(snap));
  // Anchored to ground truth, not just self-consistent: the snapshot
  // numbers are the component counters the legacy text report reads.
  EXPECT_EQ(snap.value_u64("cpu.instructions"),
            sys.cpu().stats().instructions);
  EXPECT_EQ(snap.value_u64("cache.d.read_hits"),
            sys.cpu().dcache().stats().read_hits);
  EXPECT_GT(snap.value_u64("cpu.instructions"), 100u);
}

TEST(ReportGolden, JsonMatchesFrozenShapeOnFreshSystem) {
  sim::LiquidSystem sys;
  EXPECT_EQ(system_report_json(sys), golden_json(sys.metrics_snapshot()));
}

}  // namespace
}  // namespace la::sim
