// The debug shell's command engine, scripted.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/debug_shell.hpp"

namespace la::sim {
namespace {

struct ShellFixture : ::testing::Test {
  ShellFixture() {
    node.run(100);
    img = sasm::assemble_or_throw(R"(
        .org 0x40000100
    _start:
        mov 5, %g1
    loop:
        subcc %g1, 1, %g1
        bne loop
        nop
        set value, %g2
        st %g1, [%g2]
    finish:
        jmp 0x40
        nop
        .align 4
    value:
        .word 0xabcd1234
    )");
    ctrl::LiquidClient client(node);
    EXPECT_TRUE(client.load_program(img));
    net::UdpDatagram d;
    d.src_ip = net::make_ip(10, 0, 0, 9);
    d.src_port = 9;
    d.dst_ip = node.config().node_ip;
    d.dst_port = node.config().node_port;
    d.payload = net::StartCmd{img.entry}.serialize();
    node.ingress_frame(net::build_udp_packet(d));
    shell = std::make_unique<DebugShell>(node, &img);
  }

  LiquidSystem node;
  sasm::Image img;
  std::unique_ptr<DebugShell> shell;
};

TEST_F(ShellFixture, HelpAndUnknown) {
  EXPECT_NE(shell->execute("help").find("regs"), std::string::npos);
  EXPECT_NE(shell->execute("wat").find("unknown command"),
            std::string::npos);
  EXPECT_EQ(shell->execute(""), "");
}

TEST_F(ShellFixture, BreakBySymbolThenContinue) {
  EXPECT_NE(shell->execute("b finish").find("breakpoint at 0x"),
            std::string::npos);
  const std::string out = shell->execute("c");
  EXPECT_NE(out.find("breakpoint at"), std::string::npos);
  EXPECT_EQ(node.cpu().state().pc, img.symbol("finish"));
  EXPECT_EQ(node.cpu().state().reg(1), 0u);  // loop finished
}

TEST_F(ShellFixture, StepShowsDisassembly) {
  const std::string out = shell->execute("s 3");
  EXPECT_NE(out.find(":"), std::string::npos);  // "pc: mnemonic"
}

TEST_F(ShellFixture, ExamineMemoryBySymbol) {
  const std::string out = shell->execute("x value 1");
  EXPECT_NE(out.find("abcd1234"), std::string::npos);
}

TEST_F(ShellFixture, ExamineUnmapped) {
  EXPECT_NE(shell->execute("x 0x20000000").find("<unmapped>"),
            std::string::npos);
}

TEST_F(ShellFixture, WatchpointBySymbol) {
  EXPECT_NE(shell->execute("w value").find("watching"), std::string::npos);
  const std::string out = shell->execute("c");
  EXPECT_NE(out.find("watchpoint hit"), std::string::npos);
  // The store wrote zero over the initial word.
  EXPECT_NE(shell->execute("x value 1").find("00000000"),
            std::string::npos);
}

TEST_F(ShellFixture, RegsAndReport) {
  shell->execute("s 2");
  EXPECT_NE(shell->execute("regs").find("pc="), std::string::npos);
  EXPECT_NE(shell->execute("report").find("dcache"), std::string::npos);
}

TEST_F(ShellFixture, HistoryAfterSteps) {
  EXPECT_NE(shell->execute("hist").find("no history"), std::string::npos);
  shell->execute("s 5");
  const std::string out = shell->execute("hist 3");
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST_F(ShellFixture, SymResolution) {
  EXPECT_NE(shell->execute("sym loop").find("loop = 0x"),
            std::string::npos);
  EXPECT_NE(shell->execute("sym nope").find("not found"),
            std::string::npos);
}

TEST_F(ShellFixture, DeleteBreakpoint) {
  shell->execute("b finish");
  shell->execute("d finish");
  const std::string out = shell->execute("c 200000");
  // No breakpoint left: runs to the step limit (spinning in the ROM).
  EXPECT_NE(out.find("step limit"), std::string::npos);
}

TEST_F(ShellFixture, QuitSetsFlag) {
  EXPECT_FALSE(shell->quit_requested());
  EXPECT_NE(shell->execute("q").find("bye"), std::string::npos);
  EXPECT_TRUE(shell->quit_requested());
}

TEST_F(ShellFixture, BadAddressesRejected) {
  EXPECT_NE(shell->execute("b").find("bad or missing"), std::string::npos);
  EXPECT_NE(shell->execute("x zzz").find("bad or missing"),
            std::string::npos);
}

}  // namespace
}  // namespace la::sim
