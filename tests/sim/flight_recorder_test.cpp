// FlightRecorder: the ring itself (wrap, sampling, dump shape) and the
// system-level black box — a watchdog trip freezes the node's last
// moments, wedge PC and error transition included.
#include "sim/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::sim {
namespace {

TEST(FlightRecorder, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 16u);  // floor
  EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(20).capacity(), 32u);
  EXPECT_EQ(FlightRecorder(4096).capacity(), 4096u);
}

TEST(FlightRecorder, RingWrapKeepsTheNewestEvents) {
  FlightRecorder r(16, 0);
  for (u64 i = 0; i < 20; ++i) {
    r.record(i, FlightEventKind::kNote, i, 0);
  }
  EXPECT_EQ(r.total_recorded(), 20u);
  const auto evs = r.events();
  ASSERT_EQ(evs.size(), 16u);
  EXPECT_EQ(evs.front().a, 4u);   // oldest survivor
  EXPECT_EQ(evs.back().a, 19u);   // newest
  // The dump owns up to what fell off the end.
  const std::string j = r.to_json("manual", 20, 0);
  EXPECT_NE(j.find("\"dropped\":4"), std::string::npos);
  EXPECT_NE(j.find("\"total_recorded\":20"), std::string::npos);
}

TEST(FlightRecorder, RetireSamplingRecordsEveryNth) {
  FlightRecorder r(64, 4);
  for (u64 i = 1; i <= 12; ++i) r.record_retire(i, 0x100 + i * 4, 0);
  const auto evs = r.events();
  ASSERT_EQ(evs.size(), 3u);  // calls 4, 8, 12
  EXPECT_EQ(evs[0].cycle, 4u);
  EXPECT_EQ(evs[1].cycle, 8u);
  EXPECT_EQ(evs[2].cycle, 12u);
  EXPECT_EQ(evs[0].kind, FlightEventKind::kRetire);
}

TEST(FlightRecorder, ZeroSampleDisablesRetiresButNotEvents) {
  FlightRecorder r(16, 0);
  for (u64 i = 0; i < 100; ++i) r.record_retire(i, 0x100, 0);
  EXPECT_EQ(r.total_recorded(), 0u);
  r.record(5, FlightEventKind::kTrap, 0x104, 0x2a);
  ASSERT_EQ(r.events().size(), 1u);
  EXPECT_EQ(r.events()[0].kind, FlightEventKind::kTrap);
}

TEST(FlightRecorder, DumpNamesKindsAndHexValues) {
  FlightRecorder r(16, 0);
  r.record(7, FlightEventKind::kBusError, 0xdeadbeef, 0);
  const std::string j = r.to_json("divergence", 9, 0);
  EXPECT_NE(j.find("\"reason\":\"divergence\""), std::string::npos);
  EXPECT_NE(j.find("\"cycle\":9"), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"bus_error\""), std::string::npos);
  EXPECT_NE(j.find("\"a\":\"0xdeadbeef\""), std::string::npos);
}

TEST(FlightRecorder, ClearResetsRingAndSamplingPhase) {
  FlightRecorder r(16, 4);
  for (u64 i = 1; i <= 4; ++i) r.record_retire(i, 0x100, 0);
  EXPECT_EQ(r.total_recorded(), 1u);
  r.clear();
  EXPECT_EQ(r.total_recorded(), 0u);
  EXPECT_TRUE(r.events().empty());
  // The countdown restarts: the next sample lands on the 4th call again.
  for (u64 i = 1; i <= 3; ++i) r.record_retire(i, 0x100, 0);
  EXPECT_EQ(r.total_recorded(), 0u);
  r.record_retire(4, 0x100, 0);
  EXPECT_EQ(r.total_recorded(), 1u);
}

// System-level black box: a program that never returns blows the watchdog
// budget; the auto-dump taken at the error transition must show the stuck
// PC, the watchdog event, and the leon_ctrl transition into kError.
TEST(FlightRecorderSystem, WatchdogTripAutoDumpsTheLastMoments) {
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
  spin: ba spin
      nop
  )");

  SystemConfig cfg;
  cfg.watchdog_budget = 20'000;
  cfg.flight_recorder = true;
  LiquidSystem node(cfg);
  node.run(300);
  ASSERT_NE(node.flight_recorder(), nullptr);

  ctrl::LiquidClient client(node);
  const ctrl::Status run = client.run_program(img, 2'000'000);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().node_code, net::err::kWatchdogTrip);

  const std::string& dump = node.last_flight_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\":\"watchdog\""), std::string::npos)
      << dump.substr(0, 200);
  EXPECT_NE(dump.find("\"kind\":\"watchdog\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"ctrl_state\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"retire\""), std::string::npos);
  // The watchdog event's PC is inside the two-instruction spin loop.
  char pc_hex[32];
  bool pc_found = false;
  for (Addr pc = img.symbol("spin"); pc <= img.symbol("spin") + 4; pc += 4) {
    std::snprintf(pc_hex, sizeof(pc_hex), "\"a\":\"0x%llx\"",
                  static_cast<unsigned long long>(pc));
    pc_found = pc_found || dump.find(pc_hex) != std::string::npos;
  }
  EXPECT_TRUE(pc_found) << dump;

  // An explicit dump works too and names its own reason.
  const std::string manual = node.take_flight_dump("manual");
  EXPECT_NE(manual.find("\"reason\":\"manual\""), std::string::npos);
}

TEST(FlightRecorderSystem, NoRecorderMeansNoDump) {
  LiquidSystem node((SystemConfig()));
  EXPECT_EQ(node.flight_recorder(), nullptr);
  EXPECT_TRUE(node.take_flight_dump("manual").empty());
  EXPECT_TRUE(node.last_flight_dump().empty());
}

}  // namespace
}  // namespace la::sim
