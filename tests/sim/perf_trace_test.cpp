// PerfTracer: cycle-stamped spans and the Chrome trace_event export the
// --perf-trace flags ship.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "sim/perf_trace.hpp"

namespace la::sim {
namespace {

TEST(PerfTrace, StampsWithTheProvidedClock) {
  Cycles clock = 5;
  PerfTracer t(&clock);
  t.begin("load");
  clock = 42;
  t.end("load");
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].phase, 'B');
  EXPECT_EQ(t.events()[0].ts, 5u);
  EXPECT_EQ(t.events()[1].phase, 'E');
  EXPECT_EQ(t.events()[1].ts, 42u);
  EXPECT_EQ(t.open_spans(), 0u);
}

TEST(PerfTrace, NullClockStampsZero) {
  PerfTracer t;
  t.instant("mark");
  EXPECT_EQ(t.events().at(0).ts, 0u);
}

TEST(PerfTrace, CloseOpenSpansPairsEveryBegin) {
  Cycles clock = 0;
  PerfTracer t(&clock);
  t.begin("outer");
  t.begin("inner");
  clock = 9;
  EXPECT_EQ(t.open_spans(), 2u);
  t.close_open_spans();
  EXPECT_EQ(t.open_spans(), 0u);
  ASSERT_EQ(t.events().size(), 4u);
  // Deepest first so the spans nest correctly.
  EXPECT_EQ(t.events()[2].name, "inner");
  EXPECT_EQ(t.events()[3].name, "outer");
  EXPECT_EQ(t.events()[3].ts, 9u);
}

TEST(PerfTrace, EndOfUnopenedSpanIsDropped) {
  PerfTracer t;
  t.end("never-begun");
  EXPECT_TRUE(t.events().empty());
}

TEST(PerfTrace, SampleEmitsCounterEventsForPrefix) {
  metrics::MetricsRegistry r;
  r.counter("cpu.instructions").inc(100);
  r.counter("cache.d.read_misses").inc(7);
  PerfTracer t;
  t.sample(r.snapshot(), "cache.");
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].phase, 'C');
  EXPECT_EQ(t.events()[0].name, "cache.d.read_misses");
  EXPECT_EQ(t.events()[0].value, 7.0);
}

TEST(PerfTrace, ChromeJsonIsWellFormedAndSorted) {
  Cycles clock = 10;
  PerfTracer t(&clock);
  t.begin("job");
  clock = 20;
  t.counter("misses", 3);
  clock = 30;
  t.instant("blip");
  const std::string j = t.to_chrome_json();  // closes the open span
  EXPECT_EQ(j.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(j.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(j.find("\"args\":{\"value\":3}"), std::string::npos);
  EXPECT_NE(j.find("\"s\":\"t\""), std::string::npos);  // instant scope
  // ts fields appear in nondecreasing order.
  std::vector<long> ts;
  for (std::size_t p = j.find("\"ts\":"); p != std::string::npos;
       p = j.find("\"ts\":", p + 1)) {
    ts.push_back(std::strtol(j.c_str() + p + 5, nullptr, 10));
  }
  ASSERT_EQ(ts.size(), 4u);
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
}

TEST(PerfTrace, LaneAndNamesLandAsMetadataRecords) {
  PerfTracer t;
  t.set_lane(3, 2);
  t.set_names("node 2", "worker 2");
  EXPECT_EQ(t.pid(), 3u);
  EXPECT_EQ(t.tid(), 2u);
  t.instant("mark");
  const std::string j = t.to_chrome_json();
  // Metadata names the lane; the event rides on it.
  EXPECT_NE(j.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3"),
            std::string::npos);
  EXPECT_NE(j.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(j.find("\"node 2\""), std::string::npos);
  EXPECT_NE(j.find("\"worker 2\""), std::string::npos);
  EXPECT_NE(j.find("\"pid\":3,\"tid\":2"), std::string::npos);
}

TEST(PerfTrace, MergeChromeTracesKeepsEveryLane) {
  PerfTracer a, b;
  a.set_lane(1, 1);
  a.set_names("node 0");
  a.instant("alpha");
  b.set_lane(2, 1);
  b.set_names("node 1");
  b.instant("beta");
  const std::string merged =
      merge_chrome_traces({a.to_chrome_json(), b.to_chrome_json()});
  EXPECT_EQ(merged.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(merged.find("\"alpha\""), std::string::npos);
  EXPECT_NE(merged.find("\"beta\""), std::string::npos);
  EXPECT_NE(merged.find("\"node 0\""), std::string::npos);
  EXPECT_NE(merged.find("\"node 1\""), std::string::npos);
}

TEST(PerfTrace, MergeSkipsMalformedAndEmptyInputs) {
  PerfTracer a;
  a.instant("only");
  const std::string merged = merge_chrome_traces(
      {"", "{\"bogus\":1}", a.to_chrome_json(), "not json at all"});
  EXPECT_NE(merged.find("\"only\""), std::string::npos);
  // Still one well-formed frame (nothing leaks in from the bad inputs).
  EXPECT_EQ(merged.find("bogus"), std::string::npos);
}

TEST(PerfTrace, NullTracerSpanIsANoOp) {
  { const PerfTracer::Span s(nullptr, "nothing"); }
  PerfTracer t;
  { const PerfTracer::Span s(&t, "scoped"); }
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].phase, 'B');
  EXPECT_EQ(t.events()[1].phase, 'E');
}

}  // namespace
}  // namespace la::sim
