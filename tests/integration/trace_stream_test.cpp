// Network-streamed execution traces: the node instruments its pipeline,
// ships trace datagrams over the wire, and the host-side Trace Analyzer
// ingests them — the paper's Fig 2 trace path, end to end.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "isa/decode.hpp"
#include "isa/encode.hpp"
#include "liquid/trace.hpp"
#include "net/trace_stream.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

sasm::Image strided_walk() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set array, %o0
      set 4096, %o5
      mov 0, %o1
  loop:
      ld [%o0 + %o1], %o2
      add %o1, 128, %o1
      cmp %o1, %o5
      bl loop
      nop
      jmp 0x40
      nop
      .align 32
  array:
      .skip 4096
  )");
}

TEST(TraceStream, RecordRoundTripThroughWireFormat) {
  net::TraceReceiver rx;
  std::vector<net::TraceRecord> received;
  net::TraceStreamer tx(
      [&](Bytes payload) {
        for (const auto& t : rx.ingest(payload)) received.push_back(t);
      },
      /*batch=*/10);

  cpu::StepResult r;
  r.pc = 0x40000120;
  r.mem_access = true;
  r.mem_write = true;
  r.mem_addr = 0x40001000;
  r.ins = isa::decode(isa::encode_mem_ri(isa::Mnemonic::kSt, 1, 2, 0));
  for (int i = 0; i < 25; ++i) tx.on_step(r);
  tx.flush();

  EXPECT_EQ(tx.records_emitted(), 25u);
  EXPECT_EQ(tx.datagrams_emitted(), 3u);  // 10 + 10 + 5
  ASSERT_EQ(received.size(), 25u);
  EXPECT_EQ(received[0].pc, 0x40000120u);
  EXPECT_TRUE(received[0].mem_write);
  EXPECT_EQ(received[0].mem_addr, 0x40001000u);
  EXPECT_EQ(rx.lost_datagrams(), 0u);
}

TEST(TraceStream, ReceiverCountsGapsAndGarbage) {
  net::TraceReceiver rx;
  net::TraceStreamer tx([&](Bytes payload) { rx.ingest(payload); }, 2);
  cpu::StepResult r;
  r.pc = 4;
  for (int i = 0; i < 8; ++i) tx.on_step(r);  // datagrams 0..3
  EXPECT_EQ(rx.lost_datagrams(), 0u);

  // Simulate a lost datagram by skipping a sequence number.
  ByteWriter w;
  w.write_u32(9);  // jumped from 3 to 9
  rx.ingest(w.bytes());
  EXPECT_EQ(rx.lost_datagrams(), 5u);

  rx.ingest(Bytes{1, 2, 3});  // malformed
  EXPECT_EQ(rx.malformed(), 1u);
}

TEST(TraceStream, EndToEndOverTheControlNetwork) {
  sim::LiquidSystem node;
  node.run(100);

  ctrl::ClientConfig ccfg;
  ctrl::LiquidClient client(node, ccfg);

  // Host-side analysis chain: frames -> receiver -> analyzer.
  net::TraceReceiver rx;
  liquid::TraceAnalyzer analyzer;
  analyzer.set_focus(0x40000000, 0x4fffffff);
  client.set_extra_frame_handler([&](const net::UdpDatagram& d) {
    if (d.dst_port != net::kTracePort) return;
    for (const auto& t : rx.ingest(d.payload)) analyzer.ingest(t);
  });

  node.enable_trace_stream(ccfg.client_ip, net::kTracePort, 50);
  const auto img = strided_walk();
  ASSERT_TRUE(client.run_program(img));
  node.flush_trace_stream();
  client.drain_downlink();

  EXPECT_GT(rx.datagrams(), 2u);
  EXPECT_EQ(rx.lost_datagrams(), 0u);

  const liquid::TraceReport t = analyzer.report();
  EXPECT_GE(t.loads, 32u);                       // the kernel's 32 loads
  EXPECT_EQ(t.dominant_stride, 128);             // seen through the wire
  EXPECT_NEAR(static_cast<double>(t.data_working_set_bytes), 1024.0, 96.0);

  // The streamed trace drives the same recommendation as direct probing.
  const auto rec = analyzer.recommend(liquid::ConfigSpace{});
  EXPECT_GE(rec.dcache_bytes, 4096u);  // conflicts need the 4 KB image
}

TEST(TraceStream, SurvivesLossyDownlink) {
  sim::LiquidSystem node;
  node.run(100);
  ctrl::ClientConfig ccfg;
  ccfg.downlink.drop = 0.25;
  ccfg.downlink.seed = 77;
  ctrl::LiquidClient client(node, ccfg);

  net::TraceReceiver rx;
  liquid::TraceAnalyzer analyzer;
  analyzer.set_focus(0x40000000, 0x4fffffff);
  client.set_extra_frame_handler([&](const net::UdpDatagram& d) {
    if (d.dst_port != net::kTracePort) return;
    for (const auto& t : rx.ingest(d.payload)) analyzer.ingest(t);
  });

  node.enable_trace_stream(ccfg.client_ip, net::kTracePort, 20);
  const auto img = strided_walk();
  ASSERT_TRUE(client.run_program(img));
  node.flush_trace_stream();
  client.drain_downlink();

  // A quarter of the datagrams died; the receiver knows, and the analyzer
  // still has enough signal to see the stride.
  EXPECT_GT(rx.lost_datagrams(), 0u);
  EXPECT_GT(analyzer.report().instructions, 50u);
  EXPECT_EQ(analyzer.report().dominant_stride, 128);
}

TEST(TraceStream, DisableStopsEmission) {
  sim::LiquidSystem node;
  node.run(100);
  node.enable_trace_stream(net::make_ip(10, 0, 0, 1), net::kTracePort, 10);
  node.run(50);
  node.disable_trace_stream();
  // Drain whatever was emitted.
  u64 frames = 0;
  while (node.egress_frame()) ++frames;
  EXPECT_GT(frames, 0u);
  node.run(200);
  EXPECT_FALSE(node.egress_frame().has_value());  // silence after disable
}

}  // namespace
}  // namespace la::test
