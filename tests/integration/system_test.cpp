// End-to-end integration: boot, remote program load over UDP, execution,
// readback — the paper's full operating loop — including over lossy,
// reordering, duplicating channels, plus runtime reconfiguration.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "mem/memory_map.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

namespace map = mem::map;

/// A user program that sums 1..100 into `result` and returns to the boot
/// ROM's polling loop (the paper's convention for program completion).
std::string sum_program() {
  return R"(
      .org 0x40000100
  _start:
      mov 0, %g1
      mov 100, %g2
  loop:
      add %g1, %g2, %g1
      subcc %g2, 1, %g2
      bne loop
      nop
      set result, %g3
      st %g1, [%g3]
      jmp 0x40             ! back to the boot ROM polling loop
      nop
      .align 4
  result:
      .skip 4
  )";
}

TEST(System, BootsIntoPollingLoop) {
  sim::LiquidSystem sys;
  sys.run(200);
  // The CPU must be spinning inside the ROM polling loop.
  const Addr pc = sys.cpu().state().pc;
  EXPECT_GE(pc, sys.check_ready_addr());
  EXPECT_LT(pc, sys.check_ready_addr() + 12 * 4);
  EXPECT_FALSE(sys.cpu().state().error_mode);
}

TEST(System, FullRemoteRunOverReliableChannel) {
  sim::LiquidSystem sys;
  sys.run(100);  // let the boot settle

  ctrl::LiquidClient client(sys);
  const auto img = sasm::assemble_or_throw(sum_program());

  ASSERT_TRUE(client.run_program(img));
  EXPECT_EQ(sys.controller().state(), net::LeonState::kDone);

  const auto mem = client.read_memory(img.symbol("result"), 1);
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ((*mem)[0], 5050u);
  EXPECT_EQ(client.stats().gave_up, 0u);
}

TEST(System, StatusReflectsLifecycle) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);

  auto s = client.status();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, net::LeonState::kIdle);

  const auto img = sasm::assemble_or_throw(sum_program());
  ASSERT_TRUE(client.load_program(img));
  s = client.status();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, net::LeonState::kReady);

  ASSERT_TRUE(client.start(img.entry));
  ASSERT_TRUE(client.run_program(img));  // idempotent reload+rerun
}

TEST(System, LossyChannelStillDelivers) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::ClientConfig ccfg;
  ccfg.uplink.drop = 0.3;
  ccfg.uplink.seed = 11;
  ccfg.downlink.drop = 0.3;
  ccfg.downlink.seed = 12;
  ccfg.load_chunk = 32;  // many packets -> loss really bites
  ctrl::LiquidClient client(sys, ccfg);

  const auto img = sasm::assemble_or_throw(sum_program());
  ASSERT_TRUE(client.run_program(img));
  const auto mem = client.read_memory(img.symbol("result"), 1);
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ((*mem)[0], 5050u);
  EXPECT_GT(client.stats().retries, 0u);
}

TEST(System, ReorderingAndDuplicationHandled) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::ClientConfig ccfg;
  ccfg.uplink.reorder = 0.6;
  ccfg.uplink.duplicate = 0.3;
  ccfg.uplink.seed = 21;
  ccfg.downlink.reorder = 0.4;
  ccfg.downlink.seed = 22;
  ccfg.load_chunk = 16;
  ctrl::LiquidClient client(sys, ccfg);

  const auto img = sasm::assemble_or_throw(sum_program());
  ASSERT_TRUE(client.run_program(img));
  const auto mem = client.read_memory(img.symbol("result"), 1);
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ((*mem)[0], 5050u);
}

TEST(System, BackToBackProgramsWithDifferentResults) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);

  const auto sum = sasm::assemble_or_throw(sum_program());
  ASSERT_TRUE(client.run_program(sum));
  auto r1 = client.read_memory(sum.symbol("result"), 1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ((*r1)[0], 5050u);

  // Second program at the same addresses: multiplies instead.
  const auto prod = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      mov 7, %g1
      mov 6, %g2
      umul %g1, %g2, %g3
      set result, %g4
      st %g3, [%g4]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )");
  ASSERT_TRUE(client.run_program(prod));
  auto r2 = client.read_memory(prod.symbol("result"), 1);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ((*r2)[0], 42u);
}

TEST(System, CycleCounterUsableFromUserProgram) {
  // The paper's measurement flow: the program starts the hardware counter,
  // runs the kernel, stops it, and stores the reading for readback.
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);

  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]        ! start
      mov 100, %g3
  loop:
      subcc %g3, 1, %g3
      bne loop
      nop
      st %g0, [%g1]        ! stop
      ld [%g1 + 4], %g4
      set cycles, %g5
      st %g4, [%g5]
      jmp 0x40
      nop
      .align 4
  cycles:
      .skip 4
  )");
  ASSERT_TRUE(client.run_program(img));
  const auto mem = client.read_memory(img.symbol("cycles"), 1);
  ASSERT_TRUE(mem.has_value());
  EXPECT_GT((*mem)[0], 300u);   // 3-instruction loop, 100 iterations
  EXPECT_LT((*mem)[0], 3000u);
}

TEST(System, ReconfigurationPreservesMemoryAndRuns) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);

  const auto img = sasm::assemble_or_throw(sum_program());
  ASSERT_TRUE(client.run_program(img));

  // Swap in a 4x bigger data cache (the liquid step).
  cpu::PipelineConfig pcfg;
  pcfg.dcache.size_bytes = 4096;
  sys.reconfigure(pcfg);
  EXPECT_EQ(sys.cpu().dcache().config().size_bytes, 4096u);

  // Memory survived the reconfiguration (it is off-chip).
  auto r = client.read_memory(img.symbol("result"), 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0], 5050u);

  // And the node still runs programs after the swap.
  ASSERT_TRUE(client.restart());
  ASSERT_TRUE(client.run_program(img));
}

TEST(System, DisconnectedCpuSpinsHarmlessly) {
  sim::LiquidSystem sys;
  sys.run(100);
  sys.disconnect().set_connected(false);
  sys.run(500);  // polling loop reads zeros: keeps spinning
  EXPECT_FALSE(sys.cpu().state().error_mode);
  const Addr pc = sys.cpu().state().pc;
  EXPECT_GE(pc, sys.check_ready_addr());
  EXPECT_LT(pc, sys.check_ready_addr() + 12 * 4);
}

TEST(System, WrongAddressTrafficIgnored) {
  sim::LiquidSystem sys;
  sys.run(100);
  net::UdpDatagram d;
  d.src_ip = net::make_ip(1, 1, 1, 1);
  d.dst_ip = net::make_ip(9, 9, 9, 9);  // not this node
  d.src_port = 1;
  d.dst_port = net::kLeonControlPort;
  d.payload = net::simple_command(net::CommandCode::kStatus);
  sys.ingress_frame(net::build_udp_packet(d));
  EXPECT_FALSE(sys.egress_frame().has_value());
  EXPECT_EQ(sys.wrappers().stats().ip_wrong_addr, 1u);
}

TEST(System, SdramVisibleToPrograms) {
  sim::LiquidSystem sys;
  sys.run(100);
  ctrl::LiquidClient client(sys);

  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0x60000040, %g1   ! SDRAM
      set 0xabcdef01, %g2
      st %g2, [%g1]
      ld [%g1], %g3
      set result, %g4
      st %g3, [%g4]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )");
  ASSERT_TRUE(client.run_program(img));
  const auto r = client.read_memory(img.symbol("result"), 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0], 0xabcdef01u);
  EXPECT_GT(sys.sdram_controller().stats().total_handshakes(), 0u);
}

}  // namespace
}  // namespace la::test
