// Interrupt-driven execution on the full node: the APB timer underflows,
// the interrupt controller raises the line, the pipeline traps through
// the runtime's table into a user ISR, which acknowledges and returns
// with rett — repeatedly, while the foreground loop watches a counter.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

bool client_run(sim::LiquidSystem& node, const sasm::Image& img) {
  ctrl::LiquidClient client(node);
  return static_cast<bool>(client.run_program(img, 20'000'000));
}

std::string ticker_program() {
  std::string prog = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      set 0x80000200, %l0    ! timer
      set 500, %l1
      st %l1, [%l0]          ! counter
      st %l1, [%l0 + 4]      ! reload
      mov 7, %l2             ! enable | auto-reload | irq-enable
      st %l2, [%l0 + 8]
  wait:
      set ticks, %l3
      ld [%l3], %l4
      cmp %l4, 5
      bl wait
      nop
      st %g0, [%l0 + 8]      ! stop the timer
      set 0x80000500, %l5    ! read the cycle counter for a sanity bound
      jmp 0x40
      nop

  timer_isr:                 ! tt 0x18 (interrupt level 8)
      set ticks, %l3
      ld [%l3], %l4
      add %l4, 1, %l4
      st %l4, [%l3]
      set 0x8000030c, %l5    ! irq controller: clear register
      set 0x100, %l6         ! bit 8
      st %l6, [%l5]
      jmp %l1                ! resume the interrupted instruction
      rett %l2

      .align 4
  ticks:
      .word 0
  )";
  sasm::rt::RuntimeOptions opt;
  opt.custom_handlers[0x18] = "timer_isr";
  return prog + sasm::rt::runtime_source(opt);
}

TEST(Interrupts, TimerIsrCountsFiveTicks) {
  sim::LiquidSystem node;
  node.run(100);
  ctrl::LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(ticker_program());
  ASSERT_TRUE(client.run_program(img, 20'000'000));

  const auto ticks = client.read_memory(img.symbol("ticks"), 1);
  ASSERT_TRUE(ticks.has_value());
  EXPECT_EQ((*ticks)[0], 5u);
  EXPECT_GE(node.timer().underflows(), 5u);
  // The line is clean again after the last acknowledge.
  EXPECT_EQ(node.irq().current_level(), 0u);
}

TEST(Interrupts, MaskedTimerNeverFires) {
  sim::LiquidSystem node;
  node.run(100);
  // Mask level 8 in the controller before the program runs.
  node.irq().write(bus::reg::kIrqMask, ~(1u << 8));

  // Program: start the timer, spin a bounded loop, report ticks (stays 0).
  std::string prog = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      set 0x80000200, %l0
      mov 50, %l1
      st %l1, [%l0]
      st %l1, [%l0 + 4]
      mov 7, %l2
      st %l2, [%l0 + 8]
      set 2000, %l7
  spinloop:
      subcc %l7, 1, %l7
      bne spinloop
      nop
      st %g0, [%l0 + 8]
      jmp 0x40
      nop
  timer_isr:
      set ticks, %l3
      ld [%l3], %l4
      add %l4, 1, %l4
      st %l4, [%l3]
      set 0x8000030c, %l5
      set 0x100, %l6
      st %l6, [%l5]
      jmp %l1
      rett %l2
      .align 4
  ticks:
      .word 0
  )";
  sasm::rt::RuntimeOptions opt;
  opt.custom_handlers[0x18] = "timer_isr";
  const auto img =
      sasm::assemble_or_throw(prog + sasm::rt::runtime_source(opt));
  ASSERT_TRUE(client_run(node, img));

  u8 buf[4] = {};
  ASSERT_TRUE(node.sram().backdoor_read(img.symbol("ticks"), buf));
  EXPECT_EQ(buf[3], 0u);  // never delivered
  EXPECT_GT(node.timer().underflows(), 0u);  // but the timer did fire
  EXPECT_GT(node.irq().pending(), 0u);       // latched, masked
}

}  // namespace
}  // namespace la::test
