// Full-node fast-path equivalence: the batched run loop and the CPU fast
// paths must be unobservable through the control protocol — identical
// cycle counts on the Fig 8 cache sweep, and a program LOADed over a
// previously running one (restart → reload at the same addresses) must
// execute the new bytes, not a stale predecoded mirror.
#include <gtest/gtest.h>

#include <string>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

sim::SystemConfig config_for(bool fast) {
  sim::SystemConfig cfg;
  cfg.fast_run_loop = fast;
  cfg.pipeline.host_fast_paths = fast;
  cfg.pipeline.cpu.host_decode_cache = fast;
  return cfg;
}

/// A program that stores `value` at `result:` and returns to the ROM
/// polling loop (the completion marker leon_ctrl watches for).
std::string store_and_finish(u32 value) {
  return R"(
      .org 0x40000100
  _start:
      set )" + std::to_string(value) + R"(, %g1
      set result, %g2
      st %g1, [%g2]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )";
}

/// An endless loop at the same load address — the "running program" the
/// reload lands on top of.
const char* kSpin = R"(
    .org 0x40000100
_start:
    set 0, %g1
loop:
    add %g1, 1, %g1
    ba loop
    nop
)";

// --- LOAD over a running program ------------------------------------------

struct LoadOverRun {
  u64 cycles = 0;
  u32 result = 0;
};

LoadOverRun drive_load_over_running(bool fast) {
  LoadOverRun out;
  sim::LiquidSystem node(config_for(fast));
  node.run(300);  // boot into the polling loop
  ctrl::LiquidClient client(node);

  // Start the spinner and let it run long enough to warm the I-cache and
  // (on the fast path) the predecoded mirror over the whole loop.
  const auto spin = sasm::assemble_or_throw(kSpin);
  EXPECT_TRUE(client.load_program(spin));
  EXPECT_TRUE(client.start(spin.entry));
  node.run(20000);
  const auto st = client.status();
  EXPECT_TRUE(st.has_value());
  if (st) {
    EXPECT_EQ(st->state, net::LeonState::kRunning);
  }

  // Loading over the running program is refused — the node is busy.
  const auto prog = sasm::assemble_or_throw(store_and_finish(0xfeedface));
  EXPECT_FALSE(client.load_program(prog));

  // The sanctioned path: restart, reload AT THE SAME ADDRESSES, rerun.
  // The new bytes land behind the processor's back (backdoor load), so a
  // predecoded mirror surviving the restart would execute the old spinner.
  EXPECT_TRUE(client.restart());
  EXPECT_TRUE(client.run_program(prog));
  const auto words = client.read_memory(prog.symbol("result"), 1);
  EXPECT_TRUE(words.has_value());
  if (words) out.result = (*words)[0];
  out.cycles = node.cpu().stats().cycles;
  return out;
}

TEST(FastPathSystem, LoadOverRunningProgram) {
  const LoadOverRun fast = drive_load_over_running(true);
  const LoadOverRun slow = drive_load_over_running(false);
  EXPECT_EQ(fast.result, 0xfeedfaceu);
  EXPECT_EQ(slow.result, 0xfeedfaceu);
  EXPECT_EQ(fast.cycles, slow.cycles);
}

// --- Fig 8 sweep cycle identity --------------------------------------------

/// A scaled-down Fig 7 kernel: strided loads over a 4 KB array with the
/// hardware cycle counter running, result stored at `cycles:`.
std::string fig7_kernel(u32 bound) {
  return R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]
      set count, %o0
      mov 0, %o1
      set )" + std::to_string(bound) + R"(, %o2
  loop:
      and %o1, 1023, %o3
      sll %o3, 2, %o3
      ld [%o0 + %o3], %o4
      add %o1, 32, %o1
      cmp %o1, %o2
      bl loop
      nop
      st %g0, [%g1]
      ld [%g1 + 4], %o5
      set cycles, %g3
      st %o5, [%g3]
      jmp 0x40
      nop
      .align 4
  cycles:
      .skip 4
      .align 32
  count:
      .skip 4096
  )";
}

struct SweepPoint {
  u32 counted = 0;   // the hardware counter's reading
  u64 cpu_cycles = 0;
};

SweepPoint drive_sweep_point(bool fast, u32 dcache_bytes) {
  SweepPoint out;
  sim::SystemConfig cfg = config_for(fast);
  cfg.pipeline.dcache.size_bytes = dcache_bytes;
  sim::LiquidSystem node(cfg);
  node.run(300);
  ctrl::LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(fig7_kernel(100000));
  EXPECT_TRUE(client.run_program(img));
  const auto words = client.read_memory(img.symbol("cycles"), 1);
  EXPECT_TRUE(words.has_value());
  if (words) out.counted = (*words)[0];
  out.cpu_cycles = node.cpu().stats().cycles;
  return out;
}

TEST(FastPathSystem, Fig8SweepCyclesIdentical) {
  for (const u32 dcache_bytes : {1024u, 4096u}) {
    const SweepPoint fast = drive_sweep_point(true, dcache_bytes);
    const SweepPoint slow = drive_sweep_point(false, dcache_bytes);
    EXPECT_NE(fast.counted, 0u) << dcache_bytes;
    EXPECT_EQ(fast.counted, slow.counted) << dcache_bytes;
    EXPECT_EQ(fast.cpu_cycles, slow.cpu_cycles) << dcache_bytes;
  }
}

}  // namespace
}  // namespace la::test
