// STATS_SNAPSHOT (0x06): the metrics registry is remotely pollable over
// the same UDP control path as every other command — round-tripped here
// through LiquidSystem::ingress_frame exactly as frames arrive from the
// network.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "ctrl/client.hpp"
#include "net/commands.hpp"
#include "net/packet.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la {
namespace {

Bytes command_frame(const sim::LiquidSystem& node, Bytes payload) {
  net::UdpDatagram d;
  d.src_ip = net::make_ip(10, 0, 0, 9);
  d.src_port = 40123;
  d.dst_ip = node.config().node_ip;
  d.dst_port = node.config().node_port;
  d.payload = std::move(payload);
  return net::build_udp_packet(d);
}

std::optional<Bytes> response_body(sim::LiquidSystem& node,
                                   net::ResponseCode code) {
  while (auto f = node.egress_frame()) {
    const auto d = net::parse_udp_packet(*f);
    if (!d || d->payload.empty()) continue;
    if (d->payload[0] != static_cast<u8>(code)) continue;
    return Bytes(d->payload.begin() + 1, d->payload.end());
  }
  return std::nullopt;
}

TEST(StatsSnapshot, RawFrameRoundTripThroughIngress) {
  sim::LiquidSystem node;
  node.run(200);
  node.ingress_frame(command_frame(
      node, net::simple_command(net::CommandCode::kStatsSnapshot)));
  node.run(500);

  const auto body = response_body(node, net::ResponseCode::kStatsData);
  ASSERT_TRUE(body.has_value());
  const std::string json(body->begin(), body->end());
  // Compact wire form of the registry snapshot.
  EXPECT_EQ(json.rfind("{\"cycle\":", 0), 0u);
  EXPECT_NE(json.find("\"cpu.instructions\":"), std::string::npos);
  EXPECT_NE(json.find("\"cache.d.read_misses\":"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(StatsSnapshot, ClientHelperSeesLiveCounters) {
  sim::LiquidSystem node;
  node.run(100);
  ctrl::LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set data, %o0
      mov 0, %o1
  loop:
      ld [%o0 + %o1], %o2
      add %o1, 4, %o1
      cmp %o1, 256
      bl loop
      nop
      jmp 0x40
      nop
      .align 32
  data: .skip 512
  )");
  ASSERT_TRUE(client.run_program(img));

  const auto json = client.stats_snapshot();
  ASSERT_TRUE(json.has_value());
  // The snapshot travels as one datagram and reflects the completed run.
  const auto snap = node.metrics_snapshot();
  char needle[64];
  std::snprintf(needle, sizeof(needle), "\"leon_ctrl.programs_completed\":%llu",
                (unsigned long long)snap.value_u64(
                    "leon_ctrl.programs_completed"));
  EXPECT_NE(json->find(needle), std::string::npos);
  EXPECT_GE(snap.value_u64("leon_ctrl.programs_completed"), 1u);
  EXPECT_NE(json->find("\"sdram.handshakes\":"), std::string::npos);
}

TEST(StatsSnapshot, CountsAsACommand) {
  sim::LiquidSystem node;
  node.run(100);
  const u64 before = node.controller().stats().commands;
  node.ingress_frame(command_frame(
      node, net::simple_command(net::CommandCode::kStatsSnapshot)));
  node.run(200);
  EXPECT_EQ(node.controller().stats().commands, before + 1);
  EXPECT_EQ(node.controller().stats().bad_commands, 0u);
}

}  // namespace
}  // namespace la
