// The observability PR's acceptance scenario, end to end.
//
// A farm job lands on a node armed with a flight recorder and a watchdog;
// an injected fault wedges the CPU mid-run; the watchdog trips.  The job's
// outcome must carry a black-box dump showing the wedge PC and the
// control-plane error transition, and the fleet span log must tell the
// job's causal story — queue wait through reconfiguration and run to the
// error — under one trace id.  Plus the client-level telemetry commands:
// STATS_STREAM delta windows, FLIGHT_DUMP, and SET_TRACE propagation.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "ctrl/client.hpp"
#include "farm/farm.hpp"
#include "fault/injector.hpp"
#include "net/commands.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

sasm::Image loop_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      mov 400, %o1
      mov 0, %o2
  loop:
      add %o2, %o1, %o2
      subcc %o1, 1, %o1
      bne loop
      nop
      set result, %g1
      st %o2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

TEST(Observability, StatsDeltaWindowsShrinkBetweenPolls) {
  sim::LiquidSystem node((sim::SystemConfig()));
  node.run(300);
  ctrl::LiquidClient client(node);

  // First poll: everything since boot (a busy window).
  const auto first = client.stats_delta();
  ASSERT_TRUE(first) << first.error().to_string();
  EXPECT_EQ(first->find("{\"cycle\":"), 0u);
  EXPECT_NE(first->find("cpu.instructions"), std::string::npos);

  // Second poll immediately after: the window covers only the handful of
  // steps the first poll itself pumped — a much smaller cycle delta.
  const auto second = client.stats_delta();
  ASSERT_TRUE(second) << second.error().to_string();
  const auto cycle_of = [](const std::string& json) {
    return std::strtoull(json.c_str() + std::string("{\"cycle\":").size(),
                         nullptr, 10);
  };
  EXPECT_LT(cycle_of(*second), cycle_of(*first));
}

TEST(Observability, FlightDumpCommandNeedsARecorder) {
  {
    sim::LiquidSystem bare((sim::SystemConfig()));
    bare.run(300);
    ctrl::LiquidClient client(bare);
    const auto dump = client.flight_dump();
    ASSERT_FALSE(dump);
    EXPECT_EQ(dump.error().node_code, net::err::kNoRecorder);
  }
  {
    sim::SystemConfig cfg;
    cfg.flight_recorder = true;
    sim::LiquidSystem armed(cfg);
    armed.run(300);
    ctrl::LiquidClient client(armed);
    const auto dump = client.flight_dump();
    ASSERT_TRUE(dump) << dump.error().to_string();
    EXPECT_NE(dump->find("\"reason\":\"remote_dump\""), std::string::npos);
    EXPECT_NE(dump->find("\"events\":["), std::string::npos);
  }
}

TEST(Observability, SetTraceAttachesContextToTheNode) {
  sim::LiquidSystem node((sim::SystemConfig()));
  node.run(300);
  ctrl::LiquidClient client(node);
  ASSERT_TRUE(client.set_trace(0xfeedfacecafebeefull, 0x77));
  EXPECT_EQ(node.controller().trace_id(), 0xfeedfacecafebeefull);
  EXPECT_EQ(node.controller().trace_span_id(), 0x77u);
}

TEST(Observability, RunProgramPropagatesTheJobTrace) {
  sim::LiquidSystem node((sim::SystemConfig()));
  node.run(300);
  ctrl::LiquidClient client(node);

  trace::SpanLog log;
  trace::JobTrace jt;
  jt.log = &log;
  jt.ctx = log.mint();
  client.set_job_trace(jt);
  ASSERT_TRUE(client.run_program(loop_program(), 2'000'000));

  // The context crossed the wire: the controller holds the trace id.
  EXPECT_EQ(node.controller().trace_id(), jt.ctx.trace_id);
  // And the client emitted load + run spans under the job's trace.
  std::set<std::string> names;
  for (const auto& s : log.spans()) {
    EXPECT_EQ(s.trace_id, jt.ctx.trace_id);
    names.insert(s.name);
  }
  EXPECT_EQ(names.count("load"), 1u);
  EXPECT_EQ(names.count("run"), 1u);
}

TEST(Observability, WedgedFarmJobLeavesACausalTraceAndABlackBox) {
  const auto img = loop_program();

  farm::FarmConfig fc;
  fc.nodes = 1;
  fc.autostart = false;  // workers gate until start(): safe node access
  fc.tracing = true;
  // This scenario is about what a *delivered* failure leaves behind; the
  // self-healing retry path (tests/farm/farm_heal_test.cpp) would rescue
  // the job and erase the evidence, so turn it off.
  fc.max_job_retries = 0;
  fc.node_template.watchdog_budget = 20'000;
  fc.node_template.flight_recorder = true;
  farm::LiquidFarm f(fc);

  // Wedge the CPU permanently the moment the program reaches its loop;
  // only the watchdog can turn that into something observable.
  fault::FaultPlan plan;
  plan.events.push_back({{fault::TriggerKind::kPc, img.symbol("loop")},
                         {fault::FaultSite::kCpuWedge, 0, 1, 1, 0}});
  fault::FaultInjector inj(f.node_for_setup(0), plan);

  farm::FarmJob job;
  job.owner = "acceptance";
  job.program = img;
  const auto id = f.submit(std::move(job));
  ASSERT_TRUE(id) << id.error().to_string();
  f.start();
  f.drain();

  const auto out = f.pop_result();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->result.ok);
  EXPECT_NE(out->trace_id, 0u);

  // The black box: the watchdog reason, the wedge PC, and the control
  // plane's transition into the error state, all in one dump.
  ASSERT_FALSE(out->flight_dump.empty());
  EXPECT_NE(out->flight_dump.find("\"reason\":\"watchdog\""),
            std::string::npos);
  EXPECT_NE(out->flight_dump.find("\"kind\":\"ctrl_state\""),
            std::string::npos);
  // The watchdog event's PC is inside the four-instruction wedge loop.
  char pc_hex[48];
  bool wedge_pc_seen = false;
  for (Addr pc = img.symbol("loop"); pc <= img.symbol("loop") + 12; pc += 4) {
    std::snprintf(pc_hex, sizeof(pc_hex), "\"kind\":\"watchdog\",\"a\":\"0x%llx\"",
                  static_cast<unsigned long long>(pc));
    wedge_pc_seen =
        wedge_pc_seen || out->flight_dump.find(pc_hex) != std::string::npos;
  }
  EXPECT_TRUE(wedge_pc_seen) << out->flight_dump;

  // The causal story: queue wait, the run, the error, and the job root —
  // every span under the outcome's trace id.
  std::set<std::string> names;
  for (const auto& s : f.span_log().spans()) {
    EXPECT_EQ(s.trace_id, out->trace_id);
    names.insert(s.name);
  }
  EXPECT_EQ(names.count("queue_wait"), 1u);
  EXPECT_EQ(names.count("run"), 1u);
  EXPECT_EQ(names.count("error"), 1u);
  EXPECT_EQ(names.count("job"), 1u);

  // The injected wedge actually fired (the scenario tested what it says).
  EXPECT_TRUE(inj.all_fired());
}

}  // namespace
}  // namespace la::test
