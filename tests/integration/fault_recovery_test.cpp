// The PR's acceptance scenario, end to end: a started program wedges the
// CPU mid-run, the watchdog trips within its budget and drives the §4.1
// error path (0xff emitted, control plane still answering), and the client
// recovers with RESTART and re-runs the program successfully — all over a
// channel that drops and corrupts frames, fully deterministic under a
// fixed seed.
#include <gtest/gtest.h>

#include "ctrl/client.hpp"
#include "fault/injector.hpp"
#include "net/commands.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

sasm::Image loop_program() {
  // Long enough that the wedge lands mid-run, with a checkable result.
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      mov 400, %o1
      mov 0, %o2
  loop:
      add %o2, %o1, %o2
      subcc %o1, 1, %o1
      bne loop
      nop
      set result, %g1
      st %o2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

struct ScenarioOutcome {
  u8 first_error_kind = 0;
  u8 node_code = 0;
  u64 watchdog_trips = 0;
  u64 ctrl_trips = 0;
  bool status_during_error = false;
  net::LeonState state_during_error = net::LeonState::kIdle;
  bool restarted = false;
  bool second_run_ok = false;
  u32 result = 0;
  Cycles final_clock = 0;
};

ScenarioOutcome run_scenario() {
  ScenarioOutcome out;
  const auto img = loop_program();

  sim::SystemConfig scfg;
  scfg.watchdog_budget = 20'000;
  sim::LiquidSystem node(scfg);
  node.run(300);

  ctrl::ClientConfig ccfg;
  ccfg.uplink.drop = 0.05;
  ccfg.uplink.corrupt = 0.05;
  ccfg.uplink.seed = 0xA11CE;
  ccfg.downlink.drop = 0.05;
  ccfg.downlink.corrupt = 0.05;
  ccfg.downlink.seed = 0xB0B;
  ctrl::LiquidClient client(node, ccfg);

  // Wedge the CPU permanently the moment the program reaches its loop;
  // only the watchdog can turn that into something the client sees.
  fault::FaultPlan plan;
  plan.events.push_back({{fault::TriggerKind::kPc, img.symbol("loop")},
                         {fault::FaultSite::kCpuWedge, 0, 1, 1, 0}});
  fault::FaultInjector inj(node, plan, &client.uplink_mut(),
                           &client.downlink_mut());

  const ctrl::Status first = client.run_program(img, 2'000'000);
  if (!first) {
    out.first_error_kind = static_cast<u8>(first.error().kind);
    out.node_code = first.error().node_code;
  }
  out.watchdog_trips = node.watchdog().stats().trips;
  out.ctrl_trips = node.controller().stats().watchdog_trips;

  // The CPU is stuck, but the control plane must still answer STATUS.
  if (auto rep = client.status()) {
    out.status_during_error = true;
    out.state_during_error = rep->state;
  }

  out.restarted = static_cast<bool>(client.restart());
  out.second_run_ok = static_cast<bool>(client.run_program(img, 2'000'000));
  out.result = node.sram().backdoor_word(img.symbol("result"));
  out.final_clock = node.now();
  return out;
}

TEST(FaultRecovery, WatchdogTripsAndClientRecoversOverLossyChannel) {
  const ScenarioOutcome out = run_scenario();

  // The first run failed loudly with the watchdog's node error.
  EXPECT_EQ(out.first_error_kind,
            static_cast<u8>(ctrl::ClientErrorKind::kNodeError));
  EXPECT_EQ(out.node_code, net::err::kWatchdogTrip);
  EXPECT_EQ(out.watchdog_trips, 1u);
  EXPECT_EQ(out.ctrl_trips, 1u);

  // STATUS still answered while the CPU was wedged.
  EXPECT_TRUE(out.status_during_error);
  EXPECT_EQ(out.state_during_error, net::LeonState::kError);

  // RESTART recovered the node; the re-run completed with the right data.
  EXPECT_TRUE(out.restarted);
  EXPECT_TRUE(out.second_run_ok);
  EXPECT_EQ(out.result, 80200u);  // sum 1..400
}

TEST(FaultRecovery, ScenarioIsDeterministicUnderFixedSeeds) {
  const ScenarioOutcome a = run_scenario();
  const ScenarioOutcome b = run_scenario();
  EXPECT_EQ(a.first_error_kind, b.first_error_kind);
  EXPECT_EQ(a.node_code, b.node_code);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.final_clock, b.final_clock);
}

}  // namespace
}  // namespace la::test
