// System-level robustness: bit-exact determinism, hostile network input,
// and execution out of SDRAM through the adapter.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::test {
namespace {

sasm::Image work_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0x60000100, %o0   ! scratch in SDRAM
      mov 300, %o1
      mov 0, %o2
  loop:
      st %o1, [%o0]
      ld [%o0], %o3
      add %o2, %o3, %o2
      subcc %o1, 1, %o1
      bne loop
      nop
      set result, %g1
      st %o2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

TEST(Robustness, WholeNodeRunsAreBitDeterministic) {
  const auto img = work_program();
  auto run_once = [&](Cycles& cycles, u32& result, u64& handshakes) {
    sim::LiquidSystem node;
    node.run(100);
    ctrl::LiquidClient client(node);
    ASSERT_TRUE(client.run_program(img));
    cycles = node.controller().last_run_cycles();
    result = node.sram().backdoor_word(img.symbol("result"));
    handshakes = node.sdram_controller().stats().total_handshakes();
  };
  Cycles c1 = 0, c2 = 0;
  u32 r1 = 0, r2 = 0;
  u64 h1 = 0, h2 = 0;
  run_once(c1, r1, h1);
  run_once(c2, r2, h2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(h1, h2);
  EXPECT_GT(c1, 0u);
}

TEST(Robustness, RandomIngressFramesNeverWedgeTheNode) {
  sim::LiquidSystem node;
  node.run(100);
  Rng rng(0xDDD);
  for (int i = 0; i < 3000; ++i) {
    Bytes junk(rng.below(200), 0);
    for (auto& b : junk) b = static_cast<u8>(rng.next_u32());
    node.ingress_frame(junk);  // must not crash
    node.run(5);
  }
  while (node.egress_frame()) {
  }
  // The node still works afterwards.
  ctrl::LiquidClient client(node);
  const auto img = work_program();
  EXPECT_TRUE(client.run_program(img));
  EXPECT_EQ(node.sram().backdoor_word(img.symbol("result")), 45150u);
}

TEST(Robustness, ValidHeadersGarbagePayloadsAreAnswered) {
  // Well-formed UDP packets with garbage control payloads must each earn
  // an error response, never silence or a crash.
  sim::LiquidSystem node;
  node.run(100);
  Rng rng(0xEEE);
  u64 errors = 0;
  for (int i = 0; i < 500; ++i) {
    net::UdpDatagram d;
    d.src_ip = net::make_ip(10, 0, 0, 5);
    d.src_port = 500;
    d.dst_ip = node.config().node_ip;
    d.dst_port = net::kLeonControlPort;
    d.payload.assign(1 + rng.below(40), 0);
    for (auto& b : d.payload) b = static_cast<u8>(rng.next_u32());
    // Avoid accidentally valid Start commands hijacking the CPU: force a
    // code byte outside the valid range.
    d.payload[0] |= 0x40;
    node.ingress_frame(net::build_udp_packet(d));
    while (auto f = node.egress_frame()) {
      const auto resp = net::parse_udp_packet(*f);
      ASSERT_TRUE(resp.has_value());
      if (!resp->payload.empty() &&
          resp->payload[0] == static_cast<u8>(net::ResponseCode::kError)) {
        ++errors;
      }
    }
  }
  EXPECT_EQ(errors, 500u);
  EXPECT_FALSE(node.cpu().state().error_mode);
}

TEST(Robustness, CodeExecutesFromSdram) {
  // The paper's future work loads an OS into SDRAM; the substrate already
  // supports fetching code through the 64-bit adapter.  Plant a function
  // in SDRAM, call it from SRAM, and check I-cache fills hit the adapter.
  sim::LiquidSystem node;
  node.run(100);

  const auto sdram_func = sasm::assemble_or_throw(R"(
      .org 0x60000000
  func:
      set 0xfeed, %g5
      retl
      nop
  )");
  // Backdoor-plant the function bytes in the SDRAM device.
  for (u32 off = 0; off < sdram_func.data.size(); off += 4) {
    u64 ok = node.ahb().debug_write(
        0x60000000 + off, 4, sdram_func.word_at(0x60000000 + off));
    ASSERT_TRUE(ok);
  }

  const auto prog = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0x60000000, %g1
      jmpl %g1, %o7          ! call into SDRAM
      nop
      set result, %g2
      st %g5, [%g2]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
  ctrl::LiquidClient client(node);
  const u64 before = node.sdram_adapter().stats().read_handshakes;
  ASSERT_TRUE(client.run_program(prog));
  EXPECT_EQ(node.sram().backdoor_word(prog.symbol("result")), 0xfeedu);
  EXPECT_GT(node.sdram_adapter().stats().read_handshakes, before);
}

}  // namespace
}  // namespace la::test
