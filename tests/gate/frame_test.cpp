// The gateway frame codec: round-trip identity, a malformed-bytes corpus,
// and the total-parse guarantee (any byte string -> frame or nullopt,
// never a throw or overread) under seeded random and mutated inputs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gate/frame.hpp"
#include "gate/jobwire.hpp"

namespace la::gate {
namespace {

GateFrame sample_frame() {
  GateFrame f;
  f.kind = GateKind::kSubmit;
  f.token = 0x1122334455667788ull;
  f.request_id = 42;
  f.trace_id = 0xabcdef;
  f.span_id = 7;
  f.payload = Bytes{1, 2, 3, 4, 5};
  return f;
}

TEST(GateFrame, RoundTripIdentity) {
  const GateFrame f = sample_frame();
  const Bytes wire = f.serialize();
  ASSERT_EQ(wire.size(), kFrameOverhead + f.payload.size());
  const auto back = GateFrame::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->version, f.version);
  EXPECT_EQ(back->kind, f.kind);
  EXPECT_EQ(back->token, f.token);
  EXPECT_EQ(back->request_id, f.request_id);
  EXPECT_EQ(back->trace_id, f.trace_id);
  EXPECT_EQ(back->span_id, f.span_id);
  EXPECT_EQ(back->payload, f.payload);
}

TEST(GateFrame, EmptyPayloadRoundTrips) {
  GateFrame f;
  f.kind = GateKind::kHello;
  const auto back = GateFrame::parse(f.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(GateFrame, MalformedCorpusRefusesToParse) {
  const Bytes good = sample_frame().serialize();

  // Too short at every truncation point.
  for (std::size_t n = 0; n < good.size(); ++n) {
    const Bytes cut(good.begin(), good.begin() + static_cast<long>(n));
    EXPECT_FALSE(GateFrame::parse(cut).has_value()) << "len " << n;
  }
  // Trailing garbage (length prefix no longer accounts for the buffer).
  Bytes longer = good;
  longer.push_back(0);
  EXPECT_FALSE(GateFrame::parse(longer).has_value());
  // Bad magic.
  Bytes bad = good;
  bad[0] ^= 0xff;
  EXPECT_FALSE(GateFrame::parse(bad).has_value());
  // Unknown version.
  bad = good;
  bad[2] = kGateVersion + 1;
  EXPECT_FALSE(GateFrame::parse(bad).has_value());
  // Unknown kind.
  bad = good;
  bad[3] = 0x7e;
  EXPECT_FALSE(GateFrame::parse(bad).has_value());
  // Flipped payload bit -> checksum mismatch.
  bad = good;
  bad[39] ^= 0x01;
  EXPECT_FALSE(GateFrame::parse(bad).has_value());
  // Flipped checksum bit.
  bad = good;
  bad[bad.size() - 1] ^= 0x80;
  EXPECT_FALSE(GateFrame::parse(bad).has_value());
  // Length prefix lies (larger than the actual payload).
  bad = good;
  bad[37] += 1;
  EXPECT_FALSE(GateFrame::parse(bad).has_value());
}

TEST(GateFrame, OversizedPayloadRefused) {
  GateFrame f;
  f.kind = GateKind::kSubmit;
  f.payload.assign(kMaxPayload + 1, 0xaa);
  // serialize() would truncate the u16 prefix anyway; build the wire
  // image by hand to prove parse holds the ceiling.
  Bytes wire(kFrameOverhead + kMaxPayload + 1, 0);
  EXPECT_FALSE(GateFrame::parse(wire).has_value());
}

// The fuzz-rotation property, in-tree: random byte strings and mutated
// valid frames must never crash the parser, and anything it does accept
// must re-serialize to the identical wire image (parse ∘ serialize = id
// on the accepted set).
TEST(GateFrame, TotalParseUnderRandomBytes) {
  Rng rng(0xf4a3);
  for (int i = 0; i < 20000; ++i) {
    Bytes junk(rng.below(128), 0);
    for (auto& b : junk) b = static_cast<u8>(rng.below(256));
    const auto f = GateFrame::parse(junk);
    if (f) {
      EXPECT_EQ(f->serialize(), junk);
    }
  }
}

TEST(GateFrame, TotalParseUnderMutatedFrames) {
  Rng rng(0x5eed);
  const Bytes good = sample_frame().serialize();
  u64 accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    Bytes m = good;
    const unsigned flips = 1 + rng.below(4);
    for (unsigned k = 0; k < flips; ++k) {
      m[rng.below(static_cast<u32>(m.size()))] ^=
          static_cast<u8>(1u << rng.below(8));
    }
    const auto f = GateFrame::parse(m);
    if (f) {
      EXPECT_EQ(f->serialize(), m);
      // Flips can land on the same bit twice and cancel out; only count
      // acceptances of frames that actually changed.
      if (m != good) ++accepted;
    }
  }
  // A 32-bit checksum makes surviving 1-4 bit flips astronomically rare.
  EXPECT_EQ(accepted, 0u);
}

TEST(RetryAfterWire, RoundTripAndExactLength) {
  RetryAfterWire w;
  w.reason = retry::kRateLimited;
  w.retry_after_ms = 1234;
  const auto back = RetryAfterWire::parse(w.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->reason, w.reason);
  EXPECT_EQ(back->retry_after_ms, w.retry_after_ms);
  EXPECT_FALSE(RetryAfterWire::parse(Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(RetryAfterWire::parse(Bytes(6, 0)).has_value());
}

TEST(HelloOkWire, RoundTrip) {
  HelloOkWire w;
  w.quota_remaining = 100000;
  w.max_inflight = 64;
  w.rate_per_sec = 200;
  w.burst = 50;
  const auto back = HelloOkWire::parse(w.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->quota_remaining, w.quota_remaining);
  EXPECT_EQ(back->max_inflight, w.max_inflight);
  EXPECT_EQ(back->rate_per_sec, w.rate_per_sec);
  EXPECT_EQ(back->burst, w.burst);
}

TEST(ResultWire, RoundTripWithWordsAndError) {
  ResultWire w;
  w.status = ResultWire::kDone;
  w.completion_seq = 9;
  w.attempts = 2;
  w.node = 3;
  w.words = {0xdeadbeef, 1, 2};
  const auto back = ResultWire::parse(w.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, ResultWire::kDone);
  EXPECT_EQ(back->completion_seq, 9u);
  EXPECT_EQ(back->attempts, 2u);
  EXPECT_EQ(back->node, 3u);
  EXPECT_EQ(back->words, w.words);

  ResultWire e;
  e.status = ResultWire::kFailed;
  e.error = "watchdog trip";
  const auto eback = ResultWire::parse(e.serialize());
  ASSERT_TRUE(eback.has_value());
  EXPECT_EQ(eback->status, ResultWire::kFailed);
  EXPECT_EQ(eback->error, "watchdog trip");
}

TEST(ResultWire, TotalParseUnderRandomBytes) {
  Rng rng(0xcafe);
  for (int i = 0; i < 20000; ++i) {
    Bytes junk(rng.below(64), 0);
    for (auto& b : junk) b = static_cast<u8>(rng.below(256));
    (void)ResultWire::parse(junk);  // must not throw or overread
  }
}

TEST(JobWire, RoundTripIdentity) {
  JobWire j;
  j.config.icache_bytes = 8192;
  j.config.dcache_bytes = 4096;
  j.program.base = 0x40000000;
  j.program.entry = 0x40000100;
  j.program.data = Bytes{9, 8, 7, 6};
  j.result_addr = 0x40001000;
  j.result_words = 1;
  const auto back = JobWire::parse(j.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->config.key(), j.config.key());
  EXPECT_EQ(back->program.base, j.program.base);
  EXPECT_EQ(back->program.entry, j.program.entry);
  EXPECT_EQ(back->program.data, j.program.data);
  EXPECT_EQ(back->result_addr, j.result_addr);
  EXPECT_EQ(back->result_words, j.result_words);
}

TEST(JobWire, RefusesOversizedImageAndBadEnums) {
  JobWire j;
  j.program.data = Bytes(4, 0);
  Bytes wire = j.serialize();
  ASSERT_TRUE(JobWire::parse(wire).has_value());
  // Replacement enum out of range (offset 14 in the fixed prefix).
  Bytes bad = wire;
  bad[14] = 0x7f;
  EXPECT_FALSE(JobWire::parse(bad).has_value());
  // Image length prefix inflated past the cap.
  JobWire big;
  big.program.data = Bytes(kMaxJobImageBytes + 1, 0);
  EXPECT_FALSE(JobWire::parse(big.serialize()).has_value());
}

TEST(JobWire, TotalParseUnderRandomBytes) {
  Rng rng(0x90b);
  for (int i = 0; i < 20000; ++i) {
    Bytes junk(rng.below(96), 0);
    for (auto& b : junk) b = static_cast<u8>(rng.below(256));
    (void)JobWire::parse(junk);
  }
}

}  // namespace
}  // namespace la::gate
