// The multi-tenant control plane in isolation: token-bucket refill math,
// directory minting/authentication, and the session dedup windows that
// back the gateway's exactly-once guarantee.
#include <gtest/gtest.h>

#include "gate/tenant.hpp"

namespace la::gate {
namespace {

TEST(TokenBucket, StartsFullAndDrainsToRefusal) {
  TokenBucket b(/*rate=*/10, /*burst=*/3, /*now_ms=*/0.0);
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(0.0));
  // 10/s refill -> one token every 100ms.
  EXPECT_FALSE(b.try_take(50.0));
  EXPECT_TRUE(b.try_take(100.0));
  EXPECT_FALSE(b.try_take(100.0));
}

TEST(TokenBucket, RefillCapsAtBurst) {
  TokenBucket b(100, 5, 0.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_take(0.0));
  // A long silence refills to burst, not beyond.
  EXPECT_NEAR(b.tokens(60'000.0), 5.0, 1e-9);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_take(60'000.0));
  EXPECT_FALSE(b.try_take(60'000.0));
}

TEST(TokenBucket, MsUntilTokenIsAnHonestHint) {
  TokenBucket b(10, 1, 0.0);
  EXPECT_EQ(b.ms_until_token(0.0), 0u);
  EXPECT_TRUE(b.try_take(0.0));
  const u32 wait = b.ms_until_token(0.0);
  EXPECT_GT(wait, 0u);
  EXPECT_LE(wait, 100u);
  // Waiting exactly the hinted time must yield a token (the hint never
  // sends a client back too early).
  EXPECT_TRUE(b.try_take(static_cast<double>(wait)));
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket b(0, 1, 0.0);
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(1e9));
  EXPECT_GT(b.ms_until_token(1e9), 0u);
}

TEST(TokenBucket, FractionalRefillAccumulates) {
  TokenBucket b(1, 1, 0.0);  // one token per second
  EXPECT_TRUE(b.try_take(0.0));
  EXPECT_FALSE(b.try_take(400.0));
  EXPECT_FALSE(b.try_take(800.0));  // partial refills must not reset
  EXPECT_TRUE(b.try_take(1000.0));
}

TEST(TenantDirectory, MintsStableDistinctTokens) {
  TenantDirectory a(0xfeed, 64, {});
  TenantDirectory b(0xfeed, 64, {});
  ASSERT_EQ(a.count(), 64u);
  for (u32 i = 0; i < a.count(); ++i) {
    // Same seed -> same table (the operator and gateway agree).
    EXPECT_EQ(a.token_of(i), b.token_of(i));
    for (u32 j = i + 1; j < a.count(); ++j) {
      EXPECT_NE(a.token_of(i), a.token_of(j));
    }
  }
  EXPECT_EQ(a.name_of(0), "t0000");
  EXPECT_EQ(a.name_of(63), "t0063");
}

TEST(TenantDirectory, DifferentSeedsDifferentTokens) {
  TenantDirectory a(1, 8, {});
  TenantDirectory b(2, 8, {});
  for (u32 i = 0; i < 8; ++i) EXPECT_NE(a.token_of(i), b.token_of(i));
}

TEST(TenantDirectory, AuthenticateRoundTripsAndRefusesStrangers) {
  TenantDirectory d(0xabc, 16, {});
  for (u32 i = 0; i < d.count(); ++i) {
    const auto idx = d.authenticate(d.token_of(i));
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_FALSE(d.authenticate(0).has_value());
  EXPECT_FALSE(d.authenticate(d.token_of(0) ^ 1).has_value());
}

TEST(Session, DedupTablesRememberAndReplay) {
  Session s;
  s.remember_accept(100, 7);
  const auto job = s.find_accept(100);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(*job, 7u);
  EXPECT_FALSE(s.find_accept(101).has_value());

  ResultWire r;
  r.status = ResultWire::kDone;
  r.completion_seq = 3;
  s.remember_done(100, r);
  const ResultWire* back = s.find_done(100);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->completion_seq, 3u);
  EXPECT_EQ(s.find_done(101), nullptr);
}

TEST(Session, DedupWindowsEvictOldestFirst) {
  Session s;
  const u64 n = Session::kDedupWindow + 10;
  for (u64 i = 0; i < n; ++i) {
    s.remember_accept(i, i * 2);
    ResultWire r;
    r.completion_seq = static_cast<u32>(i);
    s.remember_done(i, r);
  }
  // The first 10 ids fell off the FIFO; the rest survive intact.
  for (u64 i = 0; i < 10; ++i) {
    EXPECT_FALSE(s.find_accept(i).has_value()) << i;
    EXPECT_EQ(s.find_done(i), nullptr) << i;
  }
  for (u64 i = 10; i < n; ++i) {
    const auto job = s.find_accept(i);
    ASSERT_TRUE(job.has_value()) << i;
    EXPECT_EQ(*job, i * 2);
    const ResultWire* r = s.find_done(i);
    ASSERT_NE(r, nullptr) << i;
    EXPECT_EQ(r->completion_seq, static_cast<u32>(i));
  }
}

}  // namespace
}  // namespace la::gate
