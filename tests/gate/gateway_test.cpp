// Gateway integration over real loopback datagrams: a LiquidFarm behind
// the UDP front door, driven by GateClient — session lifecycle, admission
// refusals, exactly-once submission, and the same guarantees under a
// hostile WAN profile on the client's link.
#include <gtest/gtest.h>

#include "farm/workload.hpp"
#include "gate/client.hpp"
#include "gate/gateway.hpp"
#include "net/wan_profile.hpp"

namespace la::gate {
namespace {

class GatewayTest : public ::testing::Test {
 protected:
  void start(GateConfig gc = {}) {
    farm::FarmConfig fc;
    fc.nodes = 2;
    farm_ = std::make_unique<farm::LiquidFarm>(fc);
    gc.tenants = 4;
    gw_ = std::make_unique<Gateway>(*farm_, gc);
    ASSERT_TRUE(gw_->start());
  }

  ClientConfig client_cfg(u32 tenant) const {
    ClientConfig c;
    c.gateway = gw_->addr();
    c.token = gw_->tenants().token_of(tenant);
    return c;
  }

  JobWire next_job(u32* expected = nullptr) {
    farm::GeneratedJob g = gen_.next();
    if (expected) *expected = g.expected;
    JobWire w;
    w.config = g.job.config;
    w.program = g.job.program;
    w.result_addr = g.job.result_addr;
    w.result_words = g.job.result_words;
    return w;
  }

  std::unique_ptr<farm::LiquidFarm> farm_;
  std::unique_ptr<Gateway> gw_;
  farm::WorkloadGenerator gen_{farm::WorkloadConfig{/*seed=*/21}};
};

TEST_F(GatewayTest, HelloOpensSessionAndReportsQuota) {
  GateConfig gc;
  gc.quota.jobs_total = 1000;
  gc.quota.max_inflight = 8;
  gc.quota.rate_per_sec = 50;
  gc.quota.burst = 10;
  start(gc);
  GateClient c(client_cfg(0));
  ASSERT_TRUE(c.ok());
  const auto ok = c.hello();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->quota_remaining, 1000u);
  EXPECT_EQ(ok->max_inflight, 8u);
  EXPECT_EQ(ok->rate_per_sec, 50u);
  EXPECT_EQ(ok->burst, 10u);
}

TEST_F(GatewayTest, BadTokenIsRefused) {
  start();
  ClientConfig cc;
  cc.gateway = gw_->addr();
  cc.token = 0xdeadbeef;  // not in the directory
  cc.op_timeout_ms = 2000;
  GateClient c(std::move(cc));
  EXPECT_FALSE(c.hello().has_value());
}

TEST_F(GatewayTest, SubmitWithoutHelloGetsNoSession) {
  start();
  GateClient c(client_cfg(0));
  const auto resp = c.submit(2, next_job());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->kind, GateKind::kGateError);
  ASSERT_EQ(resp->payload.size(), 1u);
  EXPECT_EQ(resp->payload[0], err::kNoSession);
}

TEST_F(GatewayTest, JobsRunAndResultsMatchHostPrediction) {
  start();
  GateClient c(client_cfg(0));
  ASSERT_TRUE(c.hello().has_value());
  for (u64 i = 0; i < 4; ++i) {
    u32 expected = 0;
    const JobWire job = next_job(&expected);
    const u64 id = i + 2;
    const auto resp = c.submit(id, job);
    ASSERT_TRUE(resp.has_value());
    ASSERT_TRUE(resp->kind == GateKind::kAccepted ||
                resp->kind == GateKind::kResult);
    const auto r = c.await_result(id);
    ASSERT_TRUE(r.has_value()) << "job " << i;
    EXPECT_EQ(r->status, ResultWire::kDone);
    ASSERT_FALSE(r->words.empty());
    EXPECT_EQ(r->words[0], expected);
    // Dense per-tenant completion order = submission order.
    EXPECT_EQ(r->completion_seq, static_cast<u32>(i));
  }
}

TEST_F(GatewayTest, DuplicateSubmitIsExactlyOnce) {
  start();
  GateClient c(client_cfg(0));
  ASSERT_TRUE(c.hello().has_value());
  const JobWire job = next_job();
  ASSERT_TRUE(c.submit(2, job).has_value());
  const auto first = c.await_result(2);
  ASSERT_TRUE(first.has_value());
  // Retransmitting the same request id must re-serve the cached result,
  // not run the job again.
  const auto dup = c.submit(2, job);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->kind, GateKind::kResult);
  const auto replay = ResultWire::parse(dup->payload);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->completion_seq, first->completion_seq);
  // A genuinely new id then gets the NEXT seq — nothing ran in between.
  ASSERT_TRUE(c.submit(3, next_job()).has_value());
  const auto second = c.await_result(3);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->completion_seq, first->completion_seq + 1);
}

TEST_F(GatewayTest, RateLimitedSubmitsBackOffAndStillComplete) {
  GateConfig gc;
  gc.quota.rate_per_sec = 20;  // one token per 50ms...
  gc.quota.burst = 1;          // ...and no burst headroom
  start(gc);
  GateClient c(client_cfg(0));
  ASSERT_TRUE(c.hello().has_value());
  std::vector<u32> expected(4);
  for (u64 i = 0; i < 4; ++i) {
    const auto resp = c.submit(i + 2, next_job(&expected[i]));
    ASSERT_TRUE(resp.has_value());
  }
  // Back-to-back submits against a 1-token bucket must have eaten at
  // least one explicit kRetryAfter (never a silent drop).
  EXPECT_GT(c.backoffs(), 0u);
  for (u64 i = 0; i < 4; ++i) {
    const auto r = c.await_result(i + 2);
    ASSERT_TRUE(r.has_value()) << "job " << i;
    EXPECT_EQ(r->status, ResultWire::kDone);
    ASSERT_FALSE(r->words.empty());
    EXPECT_EQ(r->words[0], expected[i]);
  }
}

TEST_F(GatewayTest, LossyWanClientStillGetsExactlyOnceInOrder) {
  start();
  ClientConfig cc = client_cfg(1);
  // The full gauntlet on the client's own link: drop, duplicate,
  // reorder, corrupt, truncate, delay — both directions.
  cc.wan = net::wan_profile(net::WanProfileKind::kLossy).with_seed(33);
  cc.op_timeout_ms = 20'000;
  GateClient c(std::move(cc));
  ASSERT_TRUE(c.hello().has_value());
  for (u64 i = 0; i < 3; ++i) {
    u32 expected = 0;
    const JobWire job = next_job(&expected);
    const auto resp = c.submit(i + 2, job);
    ASSERT_TRUE(resp.has_value());
    const auto r = c.await_result(i + 2);
    ASSERT_TRUE(r.has_value()) << "job " << i;
    EXPECT_EQ(r->status, ResultWire::kDone);
    ASSERT_FALSE(r->words.empty());
    EXPECT_EQ(r->words[0], expected);
    EXPECT_EQ(r->completion_seq, static_cast<u32>(i));
  }
}

TEST_F(GatewayTest, StatsJsonTravelsTheWire) {
  start();
  GateClient c(client_cfg(0));
  ASSERT_TRUE(c.hello().has_value());
  ASSERT_TRUE(c.submit(2, next_job()).has_value());
  ASSERT_TRUE(c.await_result(2).has_value());
  const auto json = c.stats_json();
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("gate.accepted"), std::string::npos);
  EXPECT_NE(json->find("gate.results_pushed"), std::string::npos);
}

TEST_F(GatewayTest, ByeClosesTheSession) {
  start();
  GateClient c(client_cfg(0));
  ASSERT_TRUE(c.hello().has_value());
  c.bye();
  const auto resp = c.submit(2, next_job());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->kind, GateKind::kGateError);
  ASSERT_EQ(resp->payload.size(), 1u);
  EXPECT_EQ(resp->payload[0], err::kNoSession);
}

TEST_F(GatewayTest, FinalMetricsCountTheTraffic) {
  start();
  {
    GateClient c(client_cfg(0));
    ASSERT_TRUE(c.hello().has_value());
    ASSERT_TRUE(c.submit(2, next_job()).has_value());
    ASSERT_TRUE(c.await_result(2).has_value());
  }
  gw_->stop();
  const auto snap = gw_->final_metrics();
  EXPECT_GE(snap.value_or("gate.accepted"), 1.0);
  EXPECT_GE(snap.value_or("gate.results_pushed"), 1.0);
  EXPECT_EQ(snap.value_or("gate.rx_bad"), 0.0);
}

}  // namespace
}  // namespace la::gate
