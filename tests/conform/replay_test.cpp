// The replay harness itself is a measuring instrument, so these tests
// calibrate it: a generated vector must pass all four legs, and every
// kind of injected corruption (registers, memory, trap outcome, nominal
// cycles) must come back as a named first-divergence report.  If these
// fail, a green corpus run proves nothing.
#include <gtest/gtest.h>

#include "conform/generator.hpp"
#include "conform/replay.hpp"
#include "conform/vector.hpp"

namespace la::conform {
namespace {

TestVector sample(isa::Mnemonic mn, const char* name) {
  const CorpusFile f = generate_corpus(mn);
  for (const TestVector& v : f.vectors) {
    if (v.name == name) return v;
  }
  ADD_FAILURE() << "no case " << name;
  return TestVector{};
}

TEST(Replay, LegNamesRoundTrip) {
  for (const Leg leg : kAllLegs) {
    Leg back = Leg::kIuSlow;
    ASSERT_TRUE(leg_from_name(leg_name(leg), back)) << leg_name(leg);
    EXPECT_EQ(back, leg);
  }
  Leg l;
  EXPECT_FALSE(leg_from_name("warp-drive", l));
}

TEST(Replay, GeneratedVectorPassesAllLegs) {
  EXPECT_EQ(replay_vector_all(sample(isa::Mnemonic::kAddcc,
                                     "addcc/edge_carry")),
            "");
  EXPECT_EQ(replay_vector_all(sample(isa::Mnemonic::kLdd, "ldd/r0")), "");
}

TEST(Replay, CorruptRegisterFailsEveryLeg) {
  TestVector v = sample(isa::Mnemonic::kAddcc, "addcc/edge_carry");
  v.post.regs[3] ^= 0x1u;
  for (const Leg leg : kAllLegs) {
    const std::string d = replay_vector(v, leg);
    ASSERT_FALSE(d.empty()) << leg_name(leg);
    // The report names the case, the leg, and the register.
    EXPECT_NE(d.find(v.name), std::string::npos) << d;
    EXPECT_NE(d.find(leg_name(leg)), std::string::npos) << d;
    EXPECT_NE(d.find("regs"), std::string::npos) << d;
  }
}

TEST(Replay, CorruptMemoryWordFails) {
  TestVector v = sample(isa::Mnemonic::kSt, "st/r0");
  ASSERT_FALSE(v.post.mem.empty());
  v.post.mem.begin()->second ^= 0xff00u;
  const std::string d = replay_vector_all(v);
  ASSERT_FALSE(d.empty());
  EXPECT_NE(d.find("mem"), std::string::npos) << d;
}

TEST(Replay, CorruptTrapOutcomeFails) {
  TestVector v = sample(isa::Mnemonic::kTicc, "ticc/edge_ta");
  ASSERT_TRUE(v.ref.trapped);
  TestVector wrong_tt = v;
  wrong_tt.ref.tt ^= 1u;
  EXPECT_NE(replay_vector_all(wrong_tt), "");

  TestVector no_trap = v;
  no_trap.ref.trapped = false;
  EXPECT_NE(replay_vector_all(no_trap), "");
}

TEST(Replay, CyclesBindOnlyTheIntegerUnitLegs) {
  TestVector v = sample(isa::Mnemonic::kAddcc, "addcc/edge_carry");
  v.ref.cycles += 3;
  // The functional model's nominal timing is part of the contract ...
  EXPECT_NE(replay_vector(v, Leg::kIuSlow).find("cycles"),
            std::string::npos);
  EXPECT_NE(replay_vector(v, Leg::kIuFast).find("cycles"),
            std::string::npos);
  // ... the pipeline's cycles depend on caches/bus and are not checked.
  EXPECT_EQ(replay_vector(v, Leg::kPipeSlow), "");
  EXPECT_EQ(replay_vector(v, Leg::kPipeFast), "");
}

TEST(Replay, VectorConfigSelectsTheQuirkModel) {
  // The quirk twin passes as generated; flipping its config bit without
  // regenerating the post-state must fail on every leg — proof that
  // replay builds the CPU from the vector's own config.
  TestVector v = sample(isa::Mnemonic::kSubx, "subx/edge_carry_in_quirk");
  ASSERT_TRUE(v.cfg.quirk_subx);
  EXPECT_EQ(replay_vector_all(v), "");
  v.cfg.quirk_subx = false;
  for (const Leg leg : kAllLegs) {
    EXPECT_FALSE(replay_vector(v, leg).empty()) << leg_name(leg);
  }
}

TEST(Replay, DelaySlotVectorsRunBothSteps) {
  const TestVector v = sample(isa::Mnemonic::kBicc, "bicc/edge_taken");
  EXPECT_EQ(v.steps, 2);
  EXPECT_EQ(replay_vector_all(v), "");
}

}  // namespace
}  // namespace la::conform
