// Generator invariants the corpus workflow depends on: generation is a
// pure function of (mnemonic, seed, cases) — the drift gate regenerates
// byte for byte; every implemented mnemonic is covered; the corpus keys
// are unique (mnemonic_name() is not); and the hand-written edge cases
// that pin the config axes (quirk twin, no-mul/no-div, 4-window wrap)
// actually exist under their documented names.
#include <gtest/gtest.h>

#include <set>

#include "conform/generator.hpp"
#include "conform/vector.hpp"

namespace la::conform {
namespace {

const TestVector* find_case(const CorpusFile& f, const std::string& name) {
  for (const TestVector& v : f.vectors) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

TEST(Generator, PureInSeedAndCases) {
  for (const isa::Mnemonic mn :
       {isa::Mnemonic::kAdd, isa::Mnemonic::kLdd, isa::Mnemonic::kTicc,
        isa::Mnemonic::kRett, isa::Mnemonic::kSwapa}) {
    EXPECT_EQ(to_json(generate_corpus(mn, 77, 5)),
              to_json(generate_corpus(mn, 77, 5)));
    EXPECT_NE(to_json(generate_corpus(mn, 77, 5)),
              to_json(generate_corpus(mn, 78, 5)));
  }
}

TEST(Generator, CoversEveryImplementedMnemonic) {
  const auto universe = corpus_mnemonics();
  // Everything decode() can produce except kInvalid.
  EXPECT_EQ(universe.size(),
            static_cast<size_t>(isa::Mnemonic::kCount) - 1);
  for (const isa::Mnemonic mn : universe) {
    const CorpusFile f = generate_corpus(mn, kDefaultSeed, 2);
    EXPECT_FALSE(f.vectors.empty()) << corpus_key(mn);
    EXPECT_EQ(f.mnemonic, corpus_key(mn));
  }
}

TEST(Generator, CorpusKeysUniqueAndInvertible) {
  std::set<std::string> keys;
  for (const isa::Mnemonic mn : corpus_mnemonics()) {
    const std::string key = corpus_key(mn);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key " << key;
    EXPECT_EQ(mnemonic_from_key(key), mn) << key;
  }
  EXPECT_EQ(mnemonic_from_key("no-such-op"), isa::Mnemonic::kInvalid);
}

TEST(Generator, CaseNamesUniqueWithinFile) {
  for (const isa::Mnemonic mn : corpus_mnemonics()) {
    const CorpusFile f = generate_corpus(mn, kDefaultSeed, 4);
    std::set<std::string> names;
    for (const TestVector& v : f.vectors) {
      EXPECT_TRUE(names.insert(v.name).second)
          << "duplicate case " << v.name;
    }
  }
}

TEST(Generator, QuirkTwinPinsTheSubxAxis) {
  const CorpusFile f = generate_corpus(isa::Mnemonic::kSubx);
  const TestVector* plain = find_case(f, "subx/edge_carry_in");
  const TestVector* quirk = find_case(f, "subx/edge_carry_in_quirk");
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(quirk, nullptr);

  // Same experiment, one config bit apart ...
  EXPECT_FALSE(plain->cfg.quirk_subx);
  EXPECT_TRUE(quirk->cfg.quirk_subx);
  EXPECT_EQ(diff_states(plain->pre, quirk->pre), "");
  EXPECT_EQ(plain->code, quirk->code);
  // ... and the reference results differ by exactly the dropped borrow.
  ASSERT_TRUE(plain->post.regs.count(3));
  ASSERT_TRUE(quirk->post.regs.count(3));
  EXPECT_EQ(plain->post.regs.at(3) + 1, quirk->post.regs.at(3));
}

TEST(Generator, ConfigAxisEdgesExist) {
  // has_mul / has_div off: the op must take an illegal-instruction trap.
  const CorpusFile umul = generate_corpus(isa::Mnemonic::kUmul);
  const TestVector* nomul = find_case(umul, "umul/edge_nomul");
  ASSERT_NE(nomul, nullptr);
  EXPECT_FALSE(nomul->cfg.has_mul);
  EXPECT_TRUE(nomul->ref.trapped);
  EXPECT_EQ(nomul->ref.tt, 0x02);

  const CorpusFile udiv = generate_corpus(isa::Mnemonic::kUdiv);
  const TestVector* nodiv = find_case(udiv, "udiv/edge_nodiv");
  ASSERT_NE(nodiv, nullptr);
  EXPECT_FALSE(nodiv->cfg.has_div);
  EXPECT_TRUE(nodiv->ref.trapped);

  // 4-window configuration: SAVE wraps cwp modulo 4.
  const CorpusFile save = generate_corpus(isa::Mnemonic::kSave);
  const TestVector* wrap = find_case(save, "save/edge_nw4_wrap");
  ASSERT_NE(wrap, nullptr);
  EXPECT_EQ(wrap->cfg.nwindows, 4u);
}

TEST(Generator, FuzzerReprosArePinned) {
  // The two PR2 fuzzer-minimized divergences live on as named edges.
  const CorpusFile sdiv = generate_corpus(isa::Mnemonic::kSdiv);
  const TestVector* repro = find_case(sdiv, "sdiv/edge_int64min_repro");
  ASSERT_NE(repro, nullptr);
  // INT64_MIN / -1 must clamp to +INT32_MAX, not wrap or trap.
  EXPECT_FALSE(repro->ref.trapped);
  ASSERT_TRUE(repro->post.regs.count(3));
  EXPECT_EQ(repro->post.regs.at(3), 0x7fffffffu);

  ASSERT_NE(find_case(generate_corpus(isa::Mnemonic::kSubx),
                      "subx/edge_carry_in"),
            nullptr);
}

TEST(Generator, TrapVectorsNeverFetchTheHandler) {
  // Trap cases end after the trapping step, so the (zero-word) handler
  // region is never executed: the post pc must sit inside the trap table
  // with tt latched in TBR.
  const CorpusFile f = generate_corpus(isa::Mnemonic::kTicc);
  const TestVector* ta = find_case(f, "ticc/edge_ta");
  ASSERT_NE(ta, nullptr);
  EXPECT_TRUE(ta->ref.trapped);
  EXPECT_EQ(ta->ref.tt, 0xaa);
  EXPECT_EQ(ta->post.pc, kVecTrapBase + (u32{0xaa} << 4));
  EXPECT_EQ(ta->post.tbr & 0xff0u, u32{0xaa} << 4);
}

}  // namespace
}  // namespace la::conform
