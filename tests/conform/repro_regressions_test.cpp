// Fast-vs-slow identity regressions: the two divergences the differential
// fuzzer minimized in PR 2 live on here as permanent named cases, replayed
// on all four legs (IntegerUnit / LeonPipeline x fast paths on / off).
// They also exist as committed corpus vectors; this suite keeps them
// independent of the corpus files so a corpus regeneration can never
// silently drop them.
#include <gtest/gtest.h>

#include "conform/generator.hpp"
#include "conform/replay.hpp"
#include "conform/vector.hpp"

namespace la::conform {
namespace {

TestVector edge(isa::Mnemonic mn, const std::string& name) {
  const CorpusFile f = generate_corpus(mn);
  for (const TestVector& v : f.vectors) {
    if (v.name == name) return v;
  }
  ADD_FAILURE() << "missing edge case " << name;
  return TestVector{};
}

TEST(ReproRegressions, SdivInt64MinOverNegOneClampsOnEveryLeg) {
  // Repro 1: Y:rs1 = 0x8000000000000000 / -1.  A naive host `idiv`
  // faults (SIGFPE) and a naive clamp wraps; the architectural result is
  // saturation to +INT32_MAX with no trap.
  const TestVector v = edge(isa::Mnemonic::kSdiv, "sdiv/edge_int64min_repro");
  EXPECT_FALSE(v.ref.trapped);
  ASSERT_TRUE(v.post.regs.count(3));
  EXPECT_EQ(v.post.regs.at(3), 0x7fffffffu);
  for (const Leg leg : kAllLegs) {
    EXPECT_EQ(replay_vector(v, leg), "") << leg_name(leg);
  }
}

TEST(ReproRegressions, SdivccInt64MinOverNegOneClampsOnEveryLeg) {
  // Same dividend through the condition-code variant.
  const TestVector v =
      edge(isa::Mnemonic::kSdivcc, "sdivcc/edge_int64min_repro");
  for (const Leg leg : kAllLegs) {
    EXPECT_EQ(replay_vector(v, leg), "") << leg_name(leg);
  }
}

TEST(ReproRegressions, SubxBorrowChainMatchesOnEveryLeg) {
  // Repro 2: SUBX must consume PSR.c.  The quirk config axis reproduces
  // the original bug on demand; both twins must replay clean, proving
  // every leg honours the vector's own configuration.
  for (const char* name : {"subx/edge_carry_in", "subx/edge_carry_in_quirk"}) {
    const TestVector v = edge(isa::Mnemonic::kSubx, name);
    for (const Leg leg : kAllLegs) {
      EXPECT_EQ(replay_vector(v, leg), "") << name << " " << leg_name(leg);
    }
  }
}

TEST(ReproRegressions, SubxccBorrowChainMatchesOnEveryLeg) {
  const TestVector v = edge(isa::Mnemonic::kSubxcc, "subxcc/edge_carry_in");
  for (const Leg leg : kAllLegs) {
    EXPECT_EQ(replay_vector(v, leg), "") << leg_name(leg);
  }
}

}  // namespace
}  // namespace la::conform
