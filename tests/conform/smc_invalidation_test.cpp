// DecodeCache / predecode-mirror coverage at the replay-rig level, driven
// by corpus vectors instead of assembled kernels (the assembly twin lives
// in cpu/predecode_test.cpp).  Two scenarios:
//
//  * LOAD invalidation: a persistent pipeline rig is fed a sequence of
//    corpus vectors by overwriting the code/data image behind the CPU's
//    back (exactly what the controller's LOAD does), flushing the caches
//    between programs.  Each vector must then reproduce its reference
//    post-state — a decode cache keyed on stale words would fail here.
//    Without the flush the caches are architecturally stale, and the
//    fast and slow pipelines must be *identically* stale.
//
//  * SMC corner: a store into the I-line being executed, with and
//    without `flush`, across the predecode grid's cache geometries; the
//    fast paths must match the slow model word for word.
//
//  * Block translation engine: stores into the executing block, into a
//    chained successor block, and loader-style rewrites between run()
//    calls must all invalidate the IntegerUnit's translations — the
//    engine-on run has to match the per-step interpreter exactly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bus/ahb.hpp"
#include "conform/generator.hpp"
#include "conform/replay.hpp"
#include "conform/vector.hpp"
#include "cpu/block_engine.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "isa/encode.hpp"
#include "mem/sram.hpp"

namespace la::conform {
namespace {

bool all_cacheable(Addr) { return true; }

/// A persistent pipeline rig: memory survives across vectors so cache
/// and decode-cache state carries over, like a real board between LOADs.
struct Rig {
  mem::Sram sram{kVecMemBase, kVecMemSize};
  bus::AhbBus bus;
  Cycles clock = 0;
  std::unique_ptr<cpu::LeonPipeline> pipe;

  explicit Rig(const cpu::PipelineConfig& cfg) {
    bus.attach(kVecMemBase, kVecMemSize, &sram);
    pipe = std::make_unique<cpu::LeonPipeline>(cfg, bus, &clock,
                                               &all_cacheable);
    pipe->reset(kVecCodeBase);
  }

  /// Overwrite the memory image the way the loader does: behind the
  /// CPU's back, no bus traffic the caches could observe.
  void load(const TestVector& v) {
    for (const auto& [a, w] : v.pre.mem) sram.backdoor_write_word(a, w);
    for (const auto& [a, w] : v.code) sram.backdoor_write_word(a, w);
  }

  /// Force the architectural pre-state (apply_state assumes a fresh CPU,
  /// so zero the whole file first — the rig is deliberately not fresh).
  void apply_pre(const ArchState& pre) {
    cpu::CpuState& st = pipe->state();
    for (u32 i = 1; i < flat_reg_count(st.nwindows); ++i) {
      flat_reg_set(st, i, 0);
    }
    for (u32 i = 1; i < 32; ++i) st.asr[i] = 0;
    apply_state(pre, st);
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) pipe->step();
  }
};

cpu::PipelineConfig pipe_cfg(const VecConfig& vc, bool fast) {
  cpu::PipelineConfig cfg;
  cfg.cpu = vc.cpu_config(fast);
  cfg.host_fast_paths = fast;
  return cfg;
}

void expect_same_state(Rig& fast, Rig& slow, const std::string& what) {
  EXPECT_EQ(diff_states(capture_state(fast.pipe->state()),
                        capture_state(slow.pipe->state())),
            "")
      << what;
  EXPECT_EQ(fast.pipe->stats().instructions, slow.pipe->stats().instructions)
      << what;
  EXPECT_EQ(fast.pipe->stats().cycles, slow.pipe->stats().cycles) << what;
  EXPECT_EQ(fast.pipe->stats().traps, slow.pipe->stats().traps) << what;
}

/// Single-step ALU/memory vectors sharing the standard code address, so
/// successive LOADs overwrite the very words the I-cache already holds.
std::vector<TestVector> workload() {
  std::vector<TestVector> seq;
  for (const isa::Mnemonic mn :
       {isa::Mnemonic::kAdd, isa::Mnemonic::kSt, isa::Mnemonic::kXor,
        isa::Mnemonic::kLd, isa::Mnemonic::kSubcc, isa::Mnemonic::kStb}) {
    const CorpusFile f = generate_corpus(mn, kDefaultSeed, 3);
    for (const TestVector& v : f.vectors) {
      if (v.steps == 1 && !v.ref.trapped && v.cfg.nwindows == 8 &&
          !v.cfg.quirk_subx) {
        seq.push_back(v);
      }
    }
  }
  return seq;
}

TEST(SmcInvalidation, LoadWithFlushReplaysReferencePostState) {
  const VecConfig vc;
  Rig fast(pipe_cfg(vc, true));
  Rig slow(pipe_cfg(vc, false));
  for (const TestVector& v : workload()) {
    for (Rig* r : {&fast, &slow}) {
      // Flush first (write back the previous program's dirty lines),
      // then load the new image — the reset/LOAD ordering on a board.
      r->pipe->flush_caches();
      r->load(v);
      r->apply_pre(v.pre);
      r->run(v.steps);
    }
    // Both models must match the IntegerUnit reference exactly, even
    // though the rig was never reconstructed between programs.
    for (Rig* r : {&fast, &slow}) {
      ArchState got = capture_state(r->pipe->state());
      r->pipe->flush_caches();
      for (const auto& [a, w] : v.post.mem) {
        (void)w;
        got.mem[a] = r->sram.backdoor_word(a);
      }
      EXPECT_EQ(diff_states(got, v.post), "") << v.name;
    }
    expect_same_state(fast, slow, v.name);
  }
}

TEST(SmcInvalidation, LoadWithoutFlushIsIdenticallyStale) {
  // Skipping the flush leaves the caches (and any predecoded mirror)
  // architecturally stale: the run may execute old code, and that is
  // fine — but the fast paths must be stale in exactly the same way.
  const VecConfig vc;
  Rig fast(pipe_cfg(vc, true));
  Rig slow(pipe_cfg(vc, false));
  for (const TestVector& v : workload()) {
    for (Rig* r : {&fast, &slow}) {
      r->load(v);
      r->apply_pre(v.pre);
      r->run(v.steps);
    }
    expect_same_state(fast, slow, v.name);
  }
}

// --- the SMC corner over the predecode grid's geometries ----------------

/// Three-instruction kernel, all inside one I-line:
///   st %g2, [%g1]   ; g1 = base+8 -> overwrites the third word
///   xor %g0,%g0,%g0 ; filler (or `flush [%g1]` in the flush variant)
///   add %g0,11,%g4  ; prefilled "old" insn; %g2 holds add %g0,22,%g4
/// Stale I-line => %g4 = 11, invalidated/uncached => %g4 = 22.
void run_smc(const cpu::PipelineConfig& base, bool with_flush,
             u32 expect_g4) {
  const u32 old_insn = isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 11);
  const u32 new_insn = isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 22);
  const u32 filler =
      with_flush ? isa::encode_arith_ri(isa::Mnemonic::kFlush, 0, 1, 0)
                 : isa::encode_arith_rr(isa::Mnemonic::kXor, 0, 0, 0);

  ArchState pre;
  pre.pc = kVecCodeBase;
  pre.npc = kVecCodeBase + 4;
  {
    cpu::Psr p;
    p.s = true;
    p.et = true;
    pre.psr = p.pack();
  }
  pre.tbr = kVecTrapBase;
  pre.regs[1] = kVecCodeBase + 8;  // %g1: store/flush target
  pre.regs[2] = new_insn;          // %g2: the patch word

  const VecConfig vc;
  Rig fast(pipe_cfg(vc, true));
  Rig slow(pipe_cfg(vc, false));
  for (Rig* r : {&fast, &slow}) {
    cpu::PipelineConfig cfg = base;  // same geometry, per-rig fast paths
    cfg.host_fast_paths = r == &fast;
    cfg.cpu.host_decode_cache = r == &fast;
    r->pipe = std::make_unique<cpu::LeonPipeline>(cfg, r->bus, &r->clock,
                                                  &all_cacheable);
    r->pipe->reset(kVecCodeBase);
    r->sram.backdoor_write_word(kVecCodeBase, isa::encode_mem_ri(
                                                  isa::Mnemonic::kSt, 2, 1, 0));
    r->sram.backdoor_write_word(kVecCodeBase + 4, filler);
    r->sram.backdoor_write_word(kVecCodeBase + 8, old_insn);
    r->apply_pre(pre);
    r->run(3);
    EXPECT_EQ(r->pipe->state().reg(4), expect_g4)
        << (r == &fast ? "fast" : "slow") << " flush=" << with_flush;
  }
  expect_same_state(fast, slow, with_flush ? "smc+flush" : "smc");
}

TEST(SmcInvalidation, StoreIntoExecutingLineDefaultCaches) {
  // The line is resident from fetching the store itself, so without a
  // flush the third word executes stale; flush makes the patch visible.
  run_smc(pipe_cfg(VecConfig{}, true), /*with_flush=*/false, 11);
  run_smc(pipe_cfg(VecConfig{}, true), /*with_flush=*/true, 22);
}

TEST(SmcInvalidation, StoreIntoExecutingLineTinyCache) {
  cpu::PipelineConfig tiny = pipe_cfg(VecConfig{}, true);
  tiny.icache.size_bytes = 128;
  tiny.icache.line_bytes = 16;
  tiny.dcache.size_bytes = 128;
  tiny.dcache.line_bytes = 16;
  run_smc(tiny, /*with_flush=*/false, 11);
  run_smc(tiny, /*with_flush=*/true, 22);
}

TEST(SmcInvalidation, StoreIntoExecutingLineCacheOff) {
  // Uncached fetches observe the store immediately, flush or not.
  cpu::PipelineConfig nocache = pipe_cfg(VecConfig{}, true);
  nocache.icache_enabled = false;
  nocache.dcache_enabled = false;
  nocache.write_buffer_depth = 0;
  run_smc(nocache, /*with_flush=*/false, 22);
  run_smc(nocache, /*with_flush=*/true, 22);
}

// --- the block translation engine's SMC/invalidation contract -----------

/// One functional-model rig on flat memory, engine on or off.  run() is
/// the only entry point that can engage the block engine, so everything
/// here goes through it on both legs.
struct IuRig {
  cpu::FlatMemory mem{kVecMemSize, kVecMemBase};
  std::unique_ptr<cpu::IntegerUnit> iu;

  explicit IuRig(bool block) {
    cpu::CpuConfig cfg;
    cfg.host_decode_cache = true;
    cfg.host_block_engine = block;
    iu = std::make_unique<cpu::IntegerUnit>(cfg, mem);
  }

  void start(const ArchState& pre) {
    iu->reset(pre.pc);
    apply_state(pre, iu->state());
  }
};

ArchState iu_pre(Addr entry) {
  ArchState pre;
  pre.pc = entry;
  pre.npc = entry + 4;
  cpu::Psr p;
  p.s = true;
  p.et = true;
  pre.psr = p.pack();
  pre.tbr = kVecTrapBase;
  return pre;
}

void expect_iu_same(IuRig& block, IuRig& plain, const std::string& what) {
  EXPECT_EQ(diff_states(capture_state(block.iu->state()),
                        capture_state(plain.iu->state())),
            "")
      << what;
  EXPECT_EQ(block.iu->cycle_count(), plain.iu->cycle_count()) << what;
  EXPECT_EQ(block.iu->instret(), plain.iu->instret()) << what;
}

TEST(SmcInvalidation, BlockEngineStoreIntoOwnBlock) {
  // One straight-line block whose first instruction patches its third:
  //   st %g2, [%g1]   ; g1 = base+8, g2 = `add %g0,22,%g4`
  //   nop
  //   add %g0,11,%g4  ; stale translation would still retire 11
  // Flat memory has no caches, so the per-step interpreter fetches the
  // patched word; the engine must invalidate its own block to match.
  const u32 old_insn = isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 11);
  const u32 new_insn = isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 22);

  ArchState pre = iu_pre(kVecCodeBase);
  pre.regs[1] = kVecCodeBase + 8;
  pre.regs[2] = new_insn;

  IuRig block(true);
  IuRig plain(false);
  for (IuRig* r : {&block, &plain}) {
    r->mem.write(kVecCodeBase,
                 4, isa::encode_mem_ri(isa::Mnemonic::kSt, 2, 1, 0));
    r->mem.write(kVecCodeBase + 4, 4, isa::encode_nop());
    r->mem.write(kVecCodeBase + 8, 4, old_insn);
    r->start(pre);
    r->iu->run(3);
    EXPECT_EQ(r->iu->state().reg(4), 22u)
        << (r == &block ? "block" : "per-step");
  }
  expect_iu_same(block, plain, "smc-own-block");

  ASSERT_NE(block.iu->block_engine(), nullptr);
  EXPECT_GE(block.iu->block_engine()->invalidations(), 1u);
}

TEST(SmcInvalidation, BlockEngineStoreIntoChainedNextBlock) {
  // Two blocks a translation page apart (the store must not invalidate
  // the block it lives in, only its successor):
  //   B (entry, base+0x400):  add %g0,11,%g4 ; ba A ; nop
  //   A (base+0x00):          st %g2,[%g1]   ; ba B ; nop
  // with g1 = B's first word and g2 = `add %g0,22,%g4`.  Visit order is
  // B (translates stale 11), A (patches B -> invalidation), B again
  // (retranslates, retires 22), A again (this time B->A chains).
  const Addr a0 = kVecCodeBase;
  const Addr b0 = kVecCodeBase + 0x400;
  const u32 old_insn = isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 11);
  const u32 new_insn = isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 22);

  ArchState pre = iu_pre(b0);
  pre.regs[1] = b0;
  pre.regs[2] = new_insn;

  IuRig block(true);
  IuRig plain(false);
  for (IuRig* r : {&block, &plain}) {
    r->mem.write(a0, 4, isa::encode_mem_ri(isa::Mnemonic::kSt, 2, 1, 0));
    r->mem.write(a0 + 4, 4,
                 isa::encode_branch(isa::Cond::kA, false,
                                    static_cast<i32>(b0 - (a0 + 4)) / 4));
    r->mem.write(a0 + 8, 4, isa::encode_nop());
    r->mem.write(b0, 4, old_insn);
    r->mem.write(b0 + 4, 4,
                 isa::encode_branch(isa::Cond::kA, false,
                                    static_cast<i32>(a0 - (b0 + 4)) / 4));
    r->mem.write(b0 + 8, 4, isa::encode_nop());
    r->start(pre);
    // 9 steps: add(11), ba, nop, st, ba, nop, add(22), ba, nop.
    r->iu->run(9);
    EXPECT_EQ(r->iu->state().reg(4), 22u)
        << (r == &block ? "block" : "per-step");
  }
  expect_iu_same(block, plain, "smc-next-block");

  ASSERT_NE(block.iu->block_engine(), nullptr);
  EXPECT_GE(block.iu->block_engine()->invalidations(), 1u);
  EXPECT_GE(block.iu->block_engine()->blocks_translated(), 3u);
}

TEST(SmcInvalidation, BlockEngineLoadBetweenRunsSeesNewProgram) {
  // Loader-style rewrite between run() calls: the word the engine already
  // translated is replaced behind the CPU's back (no store executes, so
  // in-run invalidation never fires).  Translations must not outlive the
  // run() call that made them.
  const ArchState pre = iu_pre(kVecCodeBase);

  IuRig block(true);
  IuRig plain(false);
  for (IuRig* r : {&block, &plain}) {
    r->mem.write(kVecCodeBase, 4,
                 isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 11));
    r->start(pre);
    r->iu->run(1);
    EXPECT_EQ(r->iu->state().reg(4), 11u);

    r->mem.write(kVecCodeBase, 4,
                 isa::encode_arith_ri(isa::Mnemonic::kAdd, 4, 0, 33));
    r->start(pre);
    r->iu->run(1);
    EXPECT_EQ(r->iu->state().reg(4), 33u)
        << (r == &block ? "block" : "per-step");
  }
  expect_iu_same(block, plain, "load-between-runs");

  ASSERT_NE(block.iu->block_engine(), nullptr);
  EXPECT_GE(block.iu->block_engine()->blocks_translated(), 2u);
}

}  // namespace
}  // namespace la::conform
