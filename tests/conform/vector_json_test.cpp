// JSON round-trip and diff semantics for the conformance vectors: a
// corpus file must survive to_json -> parse_corpus_file unchanged, the
// parser must reject malformed input with a positioned error, and the
// diff helpers must report the first difference by field name (they are
// what the replay harness and the drift gate print).
#include <gtest/gtest.h>

#include "conform/generator.hpp"
#include "conform/vector.hpp"

namespace la::conform {
namespace {

TEST(VectorJson, CorpusRoundTripsEveryMnemonic) {
  for (const isa::Mnemonic mn : corpus_mnemonics()) {
    const CorpusFile f = generate_corpus(mn, kDefaultSeed, 3);
    const std::string text = to_json(f);

    CorpusFile back;
    std::string err;
    ASSERT_TRUE(parse_corpus_file(text, back, err))
        << corpus_key(mn) << ": " << err;
    EXPECT_EQ(back.mnemonic, f.mnemonic);
    EXPECT_EQ(back.seed, f.seed);
    EXPECT_EQ(back.cases, f.cases);
    ASSERT_EQ(back.vectors.size(), f.vectors.size()) << corpus_key(mn);
    for (size_t i = 0; i < f.vectors.size(); ++i) {
      EXPECT_EQ(diff_vectors(f.vectors[i], back.vectors[i]), "")
          << corpus_key(mn) << " case " << f.vectors[i].name;
    }
    // Serialization itself must be a fixed point.
    EXPECT_EQ(to_json(back), text) << corpus_key(mn);
  }
}

TEST(VectorJson, RejectsMalformedInput) {
  CorpusFile f;
  std::string err;
  EXPECT_FALSE(parse_corpus_file("", f, err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_corpus_file("{\"mnemonic\":", f, err));
  EXPECT_FALSE(parse_corpus_file("[1,2,3]", f, err));
  EXPECT_FALSE(parse_corpus_file("{\"mnemonic\":\"add\",\"vectors\":[{]}", f,
                                 err));
}

TEST(VectorJson, DiffStatesReportsFieldName) {
  ArchState a, b;
  a.pc = b.pc = 0x40000100;
  EXPECT_EQ(diff_states(a, b), "");

  b.psr = 0x00800000;
  EXPECT_NE(diff_states(a, b).find("psr"), std::string::npos);
  b.psr = 0;

  a.regs[9] = 0xdead;
  const std::string d = diff_states(a, b);
  EXPECT_NE(d.find("regs"), std::string::npos) << d;
  b.regs[9] = 0xdead;
  EXPECT_EQ(diff_states(a, b), "");

  // Absent key == zero: a zero-valued entry is not a difference.
  a.mem[0x40000800] = 0;
  EXPECT_EQ(diff_states(a, b), "");
  a.mem[0x40000800] = 0x12345678;
  EXPECT_NE(diff_states(a, b).find("mem"), std::string::npos);
}

TEST(VectorJson, DiffVectorsCatchesEveryMutation) {
  const CorpusFile f = generate_corpus(isa::Mnemonic::kAdd, kDefaultSeed, 2);
  ASSERT_FALSE(f.vectors.empty());
  const TestVector& v = f.vectors.front();

  TestVector m = v;
  EXPECT_EQ(diff_vectors(v, m), "");

  m.name += "x";
  EXPECT_NE(diff_vectors(v, m), "");
  m = v;
  m.cfg.quirk_subx = true;
  EXPECT_NE(diff_vectors(v, m).find("cfg"), std::string::npos);
  m = v;
  m.steps = 2;
  EXPECT_NE(diff_vectors(v, m), "");
  m = v;
  ASSERT_FALSE(m.code.empty());
  m.code[0].second ^= 1u;
  EXPECT_NE(diff_vectors(v, m).find("code"), std::string::npos);
  m = v;
  m.pre.y ^= 1u;
  EXPECT_NE(diff_vectors(v, m).find("pre"), std::string::npos);
  m = v;
  m.post.npc ^= 4u;
  EXPECT_NE(diff_vectors(v, m).find("post"), std::string::npos);
  m = v;
  m.ref.cycles += 1;
  EXPECT_NE(diff_vectors(v, m).find("ref"), std::string::npos);
}

TEST(VectorJson, FlatRegSchemeCoversWholeFile) {
  // Flat index scheme: globals then outs+locals per window; the ins of
  // window w alias the outs of window (w+1) % nwindows.
  EXPECT_EQ(flat_reg_count(8), 8u + 16u * 8u);
  EXPECT_EQ(flat_reg_name(3), "g3");
  EXPECT_EQ(flat_reg_name(8), "w0.o0");
  EXPECT_EQ(flat_reg_name(8 + 2 * 16 + 13), "w2.l5");

  cpu::CpuState st;  // default config: 8 windows
  st.psr.cwp = 2;
  st.set_reg(9, 0xabcd);  // %o1 of window 2
  EXPECT_EQ(flat_reg_get(st, flat_index(8, 2, 9)), 0xabcdu);
  // %i1 of window 1 is the same cell.
  EXPECT_EQ(flat_index(8, 1, 25), flat_index(8, 2, 9));

  flat_reg_set(st, flat_index(8, 2, 17), 0x77);  // %l1 of window 2
  EXPECT_EQ(st.reg(17), 0x77u);
}

}  // namespace
}  // namespace la::conform
