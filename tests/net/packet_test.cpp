// IPv4/UDP serialization, checksums, and cell segmentation/reassembly.
#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/commands.hpp"

namespace la::net {
namespace {

TEST(Checksum, Rfc1071KnownVector) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPads) {
  const Bytes data = {0x01};
  EXPECT_EQ(internet_checksum(data), static_cast<u16>(~0x0100u));
}

TEST(Packet, UdpRoundTrip) {
  UdpDatagram d;
  d.src_ip = make_ip(10, 0, 0, 1);
  d.dst_ip = make_ip(192, 168, 100, 10);
  d.src_port = 40000;
  d.dst_port = kLeonControlPort;
  d.payload = {1, 2, 3, 4, 5};
  const Bytes pkt = build_udp_packet(d, 77);
  EXPECT_EQ(pkt.size(), 20u + 8u + 5u);

  const auto back = parse_udp_packet(pkt);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->src_ip, d.src_ip);
  EXPECT_EQ(back->dst_ip, d.dst_ip);
  EXPECT_EQ(back->src_port, d.src_port);
  EXPECT_EQ(back->dst_port, d.dst_port);
  EXPECT_EQ(back->payload, d.payload);
}

TEST(Packet, EmptyPayloadAllowed) {
  UdpDatagram d;
  d.src_ip = 1;
  d.dst_ip = 2;
  d.src_port = 3;
  d.dst_port = 4;
  const auto back = parse_udp_packet(build_udp_packet(d));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Packet, CorruptedIpHeaderRejected) {
  UdpDatagram d;
  d.src_ip = make_ip(10, 0, 0, 1);
  d.dst_ip = make_ip(10, 0, 0, 2);
  d.payload = {9, 9};
  Bytes pkt = build_udp_packet(d);
  pkt[8] ^= 0xff;  // TTL flip -> header checksum now wrong
  EXPECT_FALSE(parse_udp_packet(pkt).has_value());
}

TEST(Packet, CorruptedPayloadRejectedByUdpChecksum) {
  UdpDatagram d;
  d.src_ip = 1;
  d.dst_ip = 2;
  d.payload = {1, 2, 3, 4};
  Bytes pkt = build_udp_packet(d);
  pkt.back() ^= 0x01;
  EXPECT_FALSE(parse_udp_packet(pkt).has_value());
}

TEST(Packet, TruncatedPacketRejected) {
  UdpDatagram d;
  d.src_ip = 1;
  d.dst_ip = 2;
  d.payload = Bytes(100, 0xaa);
  Bytes pkt = build_udp_packet(d);
  pkt.resize(pkt.size() - 40);
  EXPECT_FALSE(parse_udp_packet(pkt).has_value());
}

TEST(Packet, NonUdpProtocolRejected) {
  UdpDatagram d;
  d.src_ip = 1;
  d.dst_ip = 2;
  Bytes pkt = build_udp_packet(d);
  pkt[9] = 6;  // claim TCP
  // Header checksum now wrong too, but either way: reject.
  EXPECT_FALSE(parse_udp_packet(pkt).has_value());
}

TEST(Packet, FuzzedBytesNeverCrash) {
  Rng rng(0xfeed);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk(rng.below(120), 0);
    for (auto& b : junk) b = static_cast<u8>(rng.next_u32());
    parse_udp_packet(junk);  // must not throw or crash
  }
  SUCCEED();
}

TEST(Cells, SegmentAndReassemble) {
  Bytes frame(130, 0);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<u8>(i);
  }
  const auto cells = segment_frame(frame);
  ASSERT_EQ(cells.size(), 3u);  // 48 + 48 + 34
  EXPECT_FALSE(cells[0].last);
  EXPECT_TRUE(cells[2].last);
  EXPECT_EQ(cells[2].frame_bytes_valid, 34u);

  CellReassembler r;
  EXPECT_FALSE(r.push(cells[0]).has_value());
  EXPECT_FALSE(r.push(cells[1]).has_value());
  const auto out = r.push(cells[2]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_EQ(r.frames_completed(), 1u);
}

TEST(Cells, EmptyFrameStillOneCell) {
  const auto cells = segment_frame({});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].last);
  EXPECT_EQ(cells[0].frame_bytes_valid, 0u);
}

TEST(Cells, BackToBackFrames) {
  CellReassembler r;
  const Bytes f1 = {1, 2, 3};
  const Bytes f2 = {4, 5};
  for (const auto& c : segment_frame(f1)) r.push(c);
  auto out = r.push(segment_frame(f2)[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, f2);
}

}  // namespace
}  // namespace la::net
