// Differential test: the hardware emulator and the real node must be
// indistinguishable at the control-protocol level for the same command
// sequence — which is exactly what made the paper's emulator useful for
// developing the control software before the hardware existed.
#include <gtest/gtest.h>

#include "net/emulator.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::net {
namespace {

/// Collect every response (code byte + body) a target produces for a
/// scripted sequence of command payloads, stepping in between.
template <typename Target>
std::vector<Bytes> script(Target& target, const std::vector<Bytes>& cmds,
                          u64 steps_between) {
  std::vector<Bytes> responses;
  const auto drain = [&] {
    while (auto f = target.egress_frame()) {
      const auto d = parse_udp_packet(*f);
      if (d) responses.push_back(d->payload);
    }
  };
  for (const Bytes& payload : cmds) {
    UdpDatagram d;
    d.src_ip = make_ip(10, 0, 0, 1);
    d.src_port = 777;
    d.dst_ip = make_ip(192, 168, 100, 10);
    d.dst_port = kLeonControlPort;
    d.payload = payload;
    target.ingress_frame(build_udp_packet(d));
    target.run(steps_between);
    drain();
  }
  return responses;
}

/// A trivial program that immediately returns to the polling loop.
sasm::Image trivial_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      jmp 0x40
      nop
      .word 0x11223344, 0x55667788
  )");
}

std::vector<Bytes> command_sequence(const sasm::Image& img) {
  LoadProgramCmd load;
  load.total_packets = 1;
  load.sequence = 0;
  load.address = img.base;
  load.data = img.data;
  return {
      simple_command(CommandCode::kStatus),
      load.serialize(),
      simple_command(CommandCode::kStatus),
      StartCmd{img.entry}.serialize(),
      simple_command(CommandCode::kStatus),   // after the run completes
      ReadMemoryCmd{img.base + 8, 2}.serialize(),
      simple_command(CommandCode::kRestart),
      simple_command(CommandCode::kStatus),
  };
}

TEST(Emulator, ProtocolMatchesRealNode) {
  const auto img = trivial_program();
  const auto cmds = command_sequence(img);

  sim::LiquidSystem real;
  real.run(100);
  const auto real_responses = script(real, cmds, 3000);

  NodeEmulator emu;
  const auto emu_responses = script(emu, cmds, 3000);

  ASSERT_EQ(real_responses.size(), emu_responses.size());
  for (std::size_t i = 0; i < real_responses.size(); ++i) {
    EXPECT_EQ(real_responses[i], emu_responses[i]) << "response " << i;
  }
}

TEST(Emulator, LifecycleStates) {
  NodeEmulator emu;
  EXPECT_EQ(emu.controller().state(), LeonState::kIdle);
  const auto img = trivial_program();
  const auto cmds = command_sequence(img);
  script(emu, cmds, 3000);
  EXPECT_EQ(emu.controller().state(), LeonState::kIdle);  // after restart
}

TEST(Emulator, MemoryIsReal) {
  NodeEmulator emu;
  const auto img = trivial_program();
  LoadProgramCmd load;
  load.total_packets = 1;
  load.sequence = 0;
  load.address = img.base;
  load.data = img.data;
  script(emu, {load.serialize()}, 1);
  EXPECT_EQ(emu.sram().backdoor_word(img.base + 8), 0x11223344u);
}

TEST(Emulator, RunCompletesAfterConfiguredSteps) {
  EmulatorConfig cfg;
  cfg.run_steps = 10;
  NodeEmulator emu(cfg);
  const auto img = trivial_program();
  LoadProgramCmd load;
  load.total_packets = 1;
  load.sequence = 0;
  load.address = img.base;
  load.data = img.data;
  script(emu, {load.serialize(), StartCmd{img.entry}.serialize()}, 0);
  EXPECT_EQ(emu.controller().state(), LeonState::kRunning);
  emu.run(5);
  EXPECT_EQ(emu.controller().state(), LeonState::kRunning);
  emu.run(10);
  EXPECT_EQ(emu.controller().state(), LeonState::kDone);
  EXPECT_GT(emu.controller().last_run_cycles(), 0u);
}

}  // namespace
}  // namespace la::net
