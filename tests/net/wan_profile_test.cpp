// WAN profile presets: the named impairment regimes shared by the
// emulator tests, the gateway tests, and the lload harness must stay
// stable, reproducible from a single seed, and honest about severity
// ordering (lan < wan < lossy).
#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "net/wan_profile.hpp"

namespace la::net {
namespace {

TEST(WanProfile, LanIsClean) {
  const WanProfile p = wan_profile(WanProfileKind::kLan);
  EXPECT_EQ(p.name, "lan");
  for (const ChannelConfig* c : {&p.uplink, &p.downlink}) {
    EXPECT_EQ(c->drop, 0.0);
    EXPECT_EQ(c->duplicate, 0.0);
    EXPECT_EQ(c->reorder, 0.0);
    EXPECT_EQ(c->corrupt, 0.0);
    EXPECT_EQ(c->truncate, 0.0);
    EXPECT_EQ(c->delay_frames, 0u);
  }
}

TEST(WanProfile, SeverityOrdering) {
  const WanProfile lan = wan_profile(WanProfileKind::kLan);
  const WanProfile wan = wan_profile(WanProfileKind::kWan);
  const WanProfile lossy = wan_profile(WanProfileKind::kLossy);
  EXPECT_GT(wan.uplink.drop, lan.uplink.drop);
  EXPECT_GT(lossy.uplink.drop, wan.uplink.drop);
  EXPECT_GT(lossy.uplink.reorder, wan.uplink.reorder);
  // Only the hostile profile damages frames in flight — wan loses and
  // reorders but what arrives is intact.
  EXPECT_EQ(wan.uplink.corrupt, 0.0);
  EXPECT_EQ(wan.uplink.truncate, 0.0);
  EXPECT_GT(lossy.uplink.corrupt, 0.0);
  EXPECT_GT(lossy.uplink.truncate, 0.0);
}

TEST(WanProfile, ByNameRoundTripsAndRefusesStrangers) {
  for (const char* name : {"lan", "wan", "lossy"}) {
    const auto p = wan_profile_by_name(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->name, name);
  }
  EXPECT_FALSE(wan_profile_by_name("dsl").has_value());
  EXPECT_FALSE(wan_profile_by_name("").has_value());
  EXPECT_FALSE(wan_profile_by_name("LAN").has_value());
}

TEST(WanProfile, WithSeedIsDeterministicAndSplitsDirections) {
  const WanProfile base = wan_profile(WanProfileKind::kLossy);
  const WanProfile a = base.with_seed(42);
  const WanProfile b = base.with_seed(42);
  EXPECT_EQ(a.uplink.seed, b.uplink.seed);
  EXPECT_EQ(a.downlink.seed, b.downlink.seed);
  // The two directions must fail independently.
  EXPECT_NE(a.uplink.seed, a.downlink.seed);
  // Different seeds, different streams; impairment rates untouched.
  const WanProfile c = base.with_seed(43);
  EXPECT_NE(a.uplink.seed, c.uplink.seed);
  EXPECT_EQ(a.uplink.drop, c.uplink.drop);
  // Channel treats seed as raw RNG state: never 0.
  EXPECT_NE(base.with_seed(0).uplink.seed, 0u);
  EXPECT_NE(base.with_seed(0).downlink.seed, 0u);
}

TEST(WanProfile, PresetsAreSeededByDefault) {
  // A preset must be usable as-is (reproducible runs need nonzero seeds).
  const WanProfile p = wan_profile(WanProfileKind::kWan);
  EXPECT_NE(p.uplink.seed, 0u);
  EXPECT_NE(p.downlink.seed, 0u);
}

}  // namespace
}  // namespace la::net
