// Layered wrappers (filtering, stats) and the lossy channel model.
#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "net/wrappers.hpp"

namespace la::net {
namespace {

UdpDatagram make_dgram(Ipv4Addr dst) {
  UdpDatagram d;
  d.src_ip = make_ip(10, 0, 0, 1);
  d.dst_ip = dst;
  d.src_port = 1000;
  d.dst_port = 2000;
  d.payload = {0xde, 0xad};
  return d;
}

TEST(Wrappers, EgressIngressThroughCells) {
  const Ipv4Addr node = make_ip(192, 168, 100, 10);
  LayeredWrappers tx(0), rx(node);
  const auto cells = tx.egress(make_dgram(node));
  ASSERT_FALSE(cells.empty());
  std::optional<UdpDatagram> got;
  for (const auto& c : cells) {
    auto r = rx.ingress_cell(c);
    if (r) got = r;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (Bytes{0xde, 0xad}));
  EXPECT_EQ(rx.stats().datagrams_in, 1u);
  EXPECT_EQ(rx.stats().cells_in, cells.size());
}

TEST(Wrappers, WrongAddressFiltered) {
  const Ipv4Addr node = make_ip(192, 168, 100, 10);
  LayeredWrappers tx(0), rx(node);
  const Bytes frame = tx.egress_frame(make_dgram(make_ip(1, 2, 3, 4)));
  EXPECT_FALSE(rx.ingress_frame(frame).has_value());
  EXPECT_EQ(rx.stats().ip_wrong_addr, 1u);
}

TEST(Wrappers, CorruptFrameCounted) {
  LayeredWrappers tx(0), rx(0);
  Bytes frame = tx.egress_frame(make_dgram(1));
  frame[12] ^= 0xff;
  EXPECT_FALSE(rx.ingress_frame(frame).has_value());
  EXPECT_EQ(rx.stats().ip_bad, 1u);
}

TEST(Channel, ReliableByDefault) {
  Channel ch;
  for (u8 i = 0; i < 10; ++i) ch.send(Bytes{i});
  for (u8 i = 0; i < 10; ++i) {
    auto f = ch.receive();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ((*f)[0], i);  // FIFO order preserved
  }
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(Channel, DropsAtConfiguredRate) {
  ChannelConfig cfg;
  cfg.drop = 0.5;
  cfg.seed = 42;
  Channel ch(cfg);
  for (int i = 0; i < 1000; ++i) ch.send(Bytes{1});
  const double rate =
      static_cast<double>(ch.stats().dropped) / ch.stats().sent;
  EXPECT_NEAR(rate, 0.5, 0.06);
}

TEST(Channel, DuplicatesDeliverTwice) {
  ChannelConfig cfg;
  cfg.duplicate = 1.0;
  Channel ch(cfg);
  ch.send(Bytes{7});
  EXPECT_EQ(ch.pending(), 2u);
  EXPECT_EQ(ch.stats().duplicated, 1u);
}

TEST(Channel, ReorderChangesOrderDeterministically) {
  ChannelConfig a;
  a.reorder = 0.8;
  a.seed = 7;
  Channel c1(a), c2(a);
  for (u8 i = 0; i < 50; ++i) {
    c1.send(Bytes{i});
    c2.send(Bytes{i});
  }
  EXPECT_GT(c1.stats().reordered, 5u);
  // Same seed, same behaviour.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*c1.receive(), *c2.receive());
  }
}

TEST(Channel, NothingLostWithoutDrop) {
  ChannelConfig cfg;
  cfg.reorder = 0.5;
  cfg.duplicate = 0.2;
  cfg.seed = 3;
  Channel ch(cfg);
  for (int i = 0; i < 100; ++i) ch.send(Bytes{static_cast<u8>(i)});
  u64 got = 0;
  while (ch.receive()) ++got;
  EXPECT_EQ(got, 100u + ch.stats().duplicated);
}

TEST(Channel, CorruptFlipsExactlyOneBit) {
  ChannelConfig cfg;
  cfg.corrupt = 1.0;
  cfg.seed = 11;
  Channel ch(cfg);
  const Bytes original{0x00, 0x00, 0x00, 0x00};
  ch.send(original);
  const auto got = ch.receive();
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), original.size());
  int flipped = 0;
  for (std::size_t i = 0; i < got->size(); ++i) {
    flipped += __builtin_popcount((*got)[i] ^ original[i]);
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(ch.stats().corrupted, 1u);
}

TEST(Channel, TruncateKeepsAProperPrefix) {
  ChannelConfig cfg;
  cfg.truncate = 1.0;
  cfg.seed = 5;
  Channel ch(cfg);
  const Bytes original{1, 2, 3, 4, 5, 6, 7, 8};
  ch.send(original);
  const auto got = ch.receive();
  ASSERT_TRUE(got.has_value());
  ASSERT_LT(got->size(), original.size());
  for (std::size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i], original[i]);
  }
  EXPECT_EQ(ch.stats().truncated, 1u);
}

TEST(Channel, DelayHoldsFramesForConfiguredRounds) {
  ChannelConfig cfg;
  cfg.delay_frames = 3;
  Channel ch(cfg);
  ch.send(Bytes{9});
  // Each receive() ages the frame one round; it surfaces on the third.
  EXPECT_FALSE(ch.receive().has_value());  // 3 -> 2
  EXPECT_FALSE(ch.receive().has_value());  // 2 -> 1
  const auto got = ch.receive();           // 1 -> 0: deliverable
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], 9);
  EXPECT_EQ(ch.stats().delayed, 1u);
}

TEST(Channel, DelayedHeadExpiresAndNeverHangsTheQueue) {
  // A delayed frame blocks the FIFO (in-order delivery), but every
  // receive() call ages it — a retrying client always makes progress,
  // never hangs.
  ChannelConfig cfg;
  Channel ch(cfg);
  ch.force_delay_next(5);
  ch.send(Bytes{1});
  ch.send(Bytes{2});  // queued behind the delayed head
  int empty_rounds = 0;
  std::optional<Bytes> got;
  while (!(got = ch.receive()).has_value() && empty_rounds < 100) {
    ++empty_rounds;
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ((*got)[0], 1u);  // order preserved
  EXPECT_EQ(empty_rounds, 4);
  const auto next = ch.receive();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ((*next)[0], 2u);
  EXPECT_EQ(ch.stats().delayed, 1u);
}

TEST(Channel, ForcedFaultHooksAreOneShot) {
  Channel ch;
  ch.force_corrupt_next();
  ch.send(Bytes{0x00, 0x00});
  ch.send(Bytes{0x00, 0x00});
  const auto first = ch.receive();
  const auto second = ch.receive();
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_NE(*first, (Bytes{0x00, 0x00}));  // forced corruption landed
  EXPECT_EQ(*second, (Bytes{0x00, 0x00}));  // one-shot: next frame clean
  EXPECT_EQ(ch.stats().corrupted, 1u);

  ch.force_truncate_next();
  ch.send(Bytes{1, 2, 3, 4});
  const auto trunc = ch.receive();
  ASSERT_TRUE(trunc.has_value());
  EXPECT_LT(trunc->size(), 4u);
  EXPECT_EQ(ch.stats().truncated, 1u);
}

}  // namespace
}  // namespace la::net
