// The leon_ctrl state machine in isolation (no CPU): load / start / read /
// restart sequencing, disconnect behaviour, error responses.
#include <gtest/gtest.h>

#include "mem/disconnect.hpp"
#include "mem/sram.hpp"
#include "net/leon_ctrl.hpp"

namespace la::net {
namespace {

struct CtrlFixture : ::testing::Test {
  CtrlFixture()
      : sram(0x40000000, 1 << 16),
        sw(sram),
        gen(make_ip(192, 168, 100, 10), kLeonControlPort),
        ctrl(make_cfg(), sw, gen, [this] { ++resets; }) {}

  static LeonCtrlConfig make_cfg() {
    LeonCtrlConfig c;
    c.mailbox = 0x40000000;
    c.check_ready = 0x40;
    c.load_min = 0x40000004;
    c.load_max = 0x4000ffff;
    return c;
  }

  UdpDatagram cmd(Bytes payload) {
    UdpDatagram d;
    d.src_ip = make_ip(10, 1, 1, 1);
    d.src_port = 555;
    d.dst_ip = make_ip(192, 168, 100, 10);
    d.dst_port = kLeonControlPort;
    d.payload = std::move(payload);
    return d;
  }

  /// Pop the next response and return (code, body).
  std::pair<u8, Bytes> response() {
    auto d = gen.pop();
    EXPECT_TRUE(d.has_value());
    if (!d) return {0, {}};
    EXPECT_EQ(d->dst_ip, make_ip(10, 1, 1, 1));
    EXPECT_EQ(d->dst_port, 555);
    return {d->payload.at(0),
            Bytes(d->payload.begin() + 1, d->payload.end())};
  }

  mem::Sram sram;
  mem::DisconnectSwitch sw;
  PacketGenerator gen;
  LeonController ctrl;
  int resets = 0;
};

TEST_F(CtrlFixture, StatusWhenIdle) {
  ctrl.handle(cmd(simple_command(CommandCode::kStatus)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kStatus));
  EXPECT_EQ(body.at(0), static_cast<u8>(LeonState::kIdle));
}

TEST_F(CtrlFixture, SingleChunkLoadGoesReady) {
  LoadProgramCmd c;
  c.total_packets = 1;
  c.sequence = 0;
  c.address = 0x40000100;
  c.data = {0xde, 0xad, 0xbe, 0xef};
  ctrl.handle(cmd(c.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kReady);
  EXPECT_FALSE(sw.connected());  // CPU unplugged during/after load
  EXPECT_EQ(sram.backdoor_word(0x40000100), 0xdeadbeefu);
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kLoadAck));
}

TEST_F(CtrlFixture, MultiChunkOutOfOrderLoad) {
  LoadProgramCmd a, b, c;
  a.total_packets = b.total_packets = c.total_packets = 3;
  a.sequence = 0; a.address = 0x40000100; a.data = {1, 1, 1, 1};
  b.sequence = 1; b.address = 0x40000104; b.data = {2, 2, 2, 2};
  c.sequence = 2; c.address = 0x40000108; c.data = {3, 3, 3, 3};
  // Delivered out of order.
  ctrl.handle(cmd(c.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kLoading);
  ctrl.handle(cmd(a.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kLoading);
  ctrl.handle(cmd(b.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kReady);
  EXPECT_EQ(sram.backdoor_word(0x40000104), 0x02020202u);
  EXPECT_EQ(ctrl.stats().chunks_loaded, 3u);
}

TEST_F(CtrlFixture, DuplicateChunksAreIdempotent) {
  LoadProgramCmd a;
  a.total_packets = 2;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {1, 2, 3, 4};
  ctrl.handle(cmd(a.serialize()));
  ctrl.handle(cmd(a.serialize()));  // duplicate mid-load
  EXPECT_EQ(ctrl.state(), LeonState::kLoading);
  EXPECT_EQ(ctrl.stats().duplicate_chunks, 1u);

  LoadProgramCmd b = a;
  b.sequence = 1;
  b.address = 0x40000104;
  ctrl.handle(cmd(b.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kReady);

  // A late duplicate after completion must NOT regress the state.
  ctrl.handle(cmd(a.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kReady);
  EXPECT_EQ(ctrl.stats().duplicate_chunks, 2u);
}

TEST_F(CtrlFixture, StartPlantsMailboxAndReconnects) {
  LoadProgramCmd a;
  a.total_packets = 1;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {0, 0, 0, 0};
  ctrl.handle(cmd(a.serialize()));
  gen.pop();

  ctrl.handle(cmd(StartCmd{0x40000100}.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kRunning);
  EXPECT_TRUE(sw.connected());
  EXPECT_EQ(sram.backdoor_word(0x40000000), 0x40000100u);  // mailbox
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kStarted));
}

TEST_F(CtrlFixture, ReturnToPollingLoopCompletesRun) {
  LoadProgramCmd a;
  a.total_packets = 1;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {0, 0, 0, 0};
  ctrl.handle(cmd(a.serialize()));
  ctrl.handle(cmd(StartCmd{0x40000100}.serialize()));
  ASSERT_EQ(ctrl.state(), LeonState::kRunning);

  ctrl.on_cpu_pc(0x40000100);  // running in the user program
  EXPECT_EQ(ctrl.state(), LeonState::kRunning);
  ctrl.on_cpu_pc(0x40);  // back in the polling loop
  EXPECT_EQ(ctrl.state(), LeonState::kDone);
  EXPECT_FALSE(sw.connected());
  EXPECT_EQ(sram.backdoor_word(0x40000000), 0u);  // mailbox cleared
  EXPECT_EQ(ctrl.stats().programs_completed, 1u);
}

TEST_F(CtrlFixture, ReadMemoryReturnsWords) {
  sram.backdoor_write_word(0x40000200, 0x11111111);
  sram.backdoor_write_word(0x40000204, 0x22222222);
  ctrl.handle(cmd(ReadMemoryCmd{0x40000200, 2}.serialize()));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kMemoryData));
  ByteReader r(body);
  EXPECT_EQ(r.read_u32(), 0x40000200u);
  EXPECT_EQ(r.read_u32(), 0x11111111u);
  EXPECT_EQ(r.read_u32(), 0x22222222u);
}

TEST_F(CtrlFixture, LoadOutsideWindowRejected) {
  LoadProgramCmd a;
  a.total_packets = 1;
  a.sequence = 0;
  a.address = 0x40000000;  // the mailbox itself: below load_min
  a.data = {1, 2, 3, 4};
  ctrl.handle(cmd(a.serialize()));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(ctrl.state(), LeonState::kIdle);
}

TEST_F(CtrlFixture, StartWhileLoadingRejected) {
  LoadProgramCmd a;
  a.total_packets = 2;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {1, 2, 3, 4};
  ctrl.handle(cmd(a.serialize()));
  gen.pop();
  ctrl.handle(cmd(StartCmd{0x40000100}.serialize()));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(ctrl.state(), LeonState::kLoading);
}

TEST_F(CtrlFixture, LoadWhileRunningRejected) {
  LoadProgramCmd a;
  a.total_packets = 1;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {1, 2, 3, 4};
  ctrl.handle(cmd(a.serialize()));
  ctrl.handle(cmd(StartCmd{0x40000100}.serialize()));
  ASSERT_EQ(ctrl.state(), LeonState::kRunning);
  ctrl.handle(cmd(a.serialize()));
  EXPECT_EQ(ctrl.state(), LeonState::kRunning);
  EXPECT_GT(ctrl.stats().bad_commands, 0u);
}

TEST_F(CtrlFixture, RestartResetsEverything) {
  LoadProgramCmd a;
  a.total_packets = 1;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {1, 2, 3, 4};
  ctrl.handle(cmd(a.serialize()));
  ctrl.handle(cmd(StartCmd{0x40000100}.serialize()));
  ctrl.handle(cmd(simple_command(CommandCode::kRestart)));
  EXPECT_EQ(ctrl.state(), LeonState::kIdle);
  EXPECT_EQ(resets, 1);
  EXPECT_TRUE(sw.connected());
  EXPECT_EQ(sram.backdoor_word(0x40000000), 0u);
}

TEST_F(CtrlFixture, UnknownCommandGetsError) {
  ctrl.handle(cmd(Bytes{0x77}));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(ctrl.stats().bad_commands, 1u);
}

TEST_F(CtrlFixture, EmptyPayloadGetsError) {
  ctrl.handle(cmd(Bytes{}));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
}

TEST_F(CtrlFixture, ForcedErrorStateEmitsPacket) {
  ctrl.handle(cmd(simple_command(CommandCode::kStatus)));
  gen.pop();
  ctrl.force_error(0x42);
  EXPECT_EQ(ctrl.state(), LeonState::kError);
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), 0x42);
}

TEST_F(CtrlFixture, CppRoutesByPort) {
  ControlPacketProcessor cpp(ctrl);
  auto d = cmd(simple_command(CommandCode::kStatus));
  cpp.ingress(d);
  EXPECT_EQ(cpp.control_packets(), 1u);
  d.dst_port = 9999;
  cpp.ingress(d);
  EXPECT_EQ(cpp.passthrough_packets(), 1u);
  EXPECT_EQ(ctrl.stats().commands, 1u);  // only the control one reached it
}

TEST_F(CtrlFixture, StatsSnapshotWithoutProviderIsAnError) {
  ctrl.handle(cmd(simple_command(CommandCode::kStatsSnapshot)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), 0x41);
  EXPECT_EQ(ctrl.stats().bad_commands, 1u);
}

TEST_F(CtrlFixture, StatsSnapshotReturnsProviderPayload) {
  ctrl.set_stats_provider([] { return Bytes{'{', '}'}; });
  ctrl.handle(cmd(simple_command(CommandCode::kStatsSnapshot)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kStatsData));
  EXPECT_EQ(body, (Bytes{'{', '}'}));
  EXPECT_EQ(ctrl.stats().bad_commands, 0u);
}

TEST(Commands, SetTraceRoundTripsBothIds) {
  SetTraceCmd c;
  c.trace_id = 0x1122334455667788ull;
  c.span_id = 0x99aabbccddeeff00ull;
  const Bytes wire = c.serialize();
  ASSERT_EQ(wire.size(), 17u);  // opcode + 4 big-endian u32 halves
  EXPECT_EQ(wire[0], static_cast<u8>(CommandCode::kSetTrace));
  ByteReader r(wire);
  r.read_u8();  // opcode, consumed by the dispatcher in real life
  const auto parsed = SetTraceCmd::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, c.trace_id);
  EXPECT_EQ(parsed->span_id, c.span_id);
}

TEST_F(CtrlFixture, SetTraceStoresContextAndAcks) {
  SetTraceCmd c;
  c.trace_id = 0xdeadbeefcafef00dull;
  c.span_id = 0x42;
  ctrl.handle(cmd(c.serialize()));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kTraceAck));
  EXPECT_EQ(ctrl.trace_id(), 0xdeadbeefcafef00dull);
  EXPECT_EQ(ctrl.trace_span_id(), 0x42u);
}

TEST_F(CtrlFixture, TruncatedSetTraceIsBadTrace) {
  Bytes wire = SetTraceCmd{}.serialize();
  wire.resize(9);  // half the ids missing
  ctrl.handle(cmd(wire));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), err::kBadTrace);
  EXPECT_EQ(ctrl.trace_id(), 0u);  // nothing half-applied
}

TEST_F(CtrlFixture, StatsStreamWithoutProviderIsAnError) {
  ctrl.handle(cmd(simple_command(CommandCode::kStatsStream)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), err::kNoStats);
}

TEST_F(CtrlFixture, StatsStreamReturnsDeltaPayload) {
  int polls = 0;
  ctrl.set_delta_provider([&polls] {
    ++polls;
    return Bytes{'{', '}'};
  });
  ctrl.handle(cmd(simple_command(CommandCode::kStatsStream)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kStatsDelta));
  EXPECT_EQ(body, (Bytes{'{', '}'}));
  EXPECT_EQ(polls, 1);  // the provider owns the delta window state
}

// --- Sequenced STATS_STREAM: delta windows survive retransmits ---------
//
// An unsequenced STATS_STREAM advances the provider's delta window every
// poll, so a retransmitted request silently eats a window.  The sequenced
// form (u32 window id in the payload) makes polling idempotent: the
// controller caches recent windows and re-serves duplicates byte for
// byte.  tests below are the regression suite for that contract.

namespace {
Bytes sequenced_stream(u32 seq) {
  ByteWriter w;
  w.write_u8(static_cast<u8>(CommandCode::kStatsStream));
  w.write_u32(seq);
  return w.take();
}
}  // namespace

TEST_F(CtrlFixture, SequencedStatsStreamReplaysDuplicatesWithoutAdvancing) {
  int polls = 0;
  ctrl.set_delta_provider([&polls] {
    ++polls;
    return Bytes{static_cast<u8>('0' + polls)};
  });
  ctrl.handle(cmd(sequenced_stream(1)));
  auto [code1, body1] = response();
  EXPECT_EQ(code1, static_cast<u8>(ResponseCode::kStatsDelta));
  EXPECT_EQ(polls, 1);

  // The retransmit (same seq) must re-serve the SAME bytes and must NOT
  // consume a fresh delta window.
  ctrl.handle(cmd(sequenced_stream(1)));
  auto [code2, body2] = response();
  EXPECT_EQ(code2, static_cast<u8>(ResponseCode::kStatsDelta));
  EXPECT_EQ(body2, body1);
  EXPECT_EQ(polls, 1);
  EXPECT_EQ(ctrl.stats().stream_replays, 1u);

  // The next window advances normally.
  ctrl.handle(cmd(sequenced_stream(2)));
  auto [code3, body3] = response();
  EXPECT_EQ(code3, static_cast<u8>(ResponseCode::kStatsDelta));
  EXPECT_NE(body3, body1);
  EXPECT_EQ(polls, 2);
}

TEST_F(CtrlFixture, StaleStreamSeqBeyondCacheIsTypedError) {
  int polls = 0;
  ctrl.set_delta_provider([&polls] {
    ++polls;
    return Bytes{static_cast<u8>(polls)};
  });
  // Fill and overflow the replay cache (depth 4): windows 1..5 leave
  // 2..5 cached.
  for (u32 seq = 1; seq <= 5; ++seq) {
    ctrl.handle(cmd(sequenced_stream(seq)));
    response();
  }
  ASSERT_EQ(polls, 5);
  // Window 1 fell out of the cache: a very-late retransmit gets a typed
  // error, never a wrong (fresh) window under an old id.
  ctrl.handle(cmd(sequenced_stream(1)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), err::kStaleStreamSeq);
  EXPECT_EQ(polls, 5);  // the provider was not consulted
  // Cached tail still replays fine.
  ctrl.handle(cmd(sequenced_stream(3)));
  const auto [code2, body2] = response();
  EXPECT_EQ(code2, static_cast<u8>(ResponseCode::kStatsDelta));
  EXPECT_EQ(body2, Bytes{3});
  EXPECT_EQ(polls, 5);
}

TEST_F(CtrlFixture, MalformedStreamSeqIsBadStreamSeq) {
  ctrl.set_delta_provider([] { return Bytes{'{', '}'}; });
  ByteWriter w;
  w.write_u8(static_cast<u8>(CommandCode::kStatsStream));
  w.write_u16(7);  // two bytes where the u32 seq belongs
  ctrl.handle(cmd(w.take()));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), err::kBadStreamSeq);
}

TEST_F(CtrlFixture, SequencedStreamCacheSurvivesSnapshotRestore) {
  int polls = 0;
  ctrl.set_delta_provider([&polls] {
    ++polls;
    return Bytes{static_cast<u8>(polls)};
  });
  ctrl.handle(cmd(sequenced_stream(1)));
  response();

  SnapWriter w;
  ctrl.save_state(w);
  const Bytes snap = w.take();

  // A freshly-built controller restored from the snapshot.
  mem::Sram sram2(0x40000000, 1 << 16);
  mem::DisconnectSwitch sw2(sram2);
  PacketGenerator gen2(make_ip(192, 168, 100, 10), kLeonControlPort);
  LeonController ctrl2(make_cfg(), sw2, gen2, [] {});
  ctrl2.set_delta_provider([&polls] {
    ++polls;
    return Bytes{static_cast<u8>(polls)};
  });
  SnapReader r(snap);
  ASSERT_TRUE(ctrl2.load_state(r));
  // The restored controller replays the pre-snapshot window from cache.
  ctrl2.handle(cmd(sequenced_stream(1)));
  auto d = gen2.pop();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload.at(0), static_cast<u8>(ResponseCode::kStatsDelta));
  EXPECT_EQ(Bytes(d->payload.begin() + 1, d->payload.end()), Bytes{1});
  EXPECT_EQ(polls, 1);
  EXPECT_EQ(ctrl2.stats().stream_replays, 1u);
}

TEST_F(CtrlFixture, FlightDumpWithoutProviderIsAnError) {
  ctrl.handle(cmd(simple_command(CommandCode::kFlightDump)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kError));
  EXPECT_EQ(body.at(0), err::kNoRecorder);
}

TEST_F(CtrlFixture, FlightDumpReturnsProviderPayload) {
  ctrl.set_flight_provider([] { return Bytes{'{', '}'}; });
  ctrl.handle(cmd(simple_command(CommandCode::kFlightDump)));
  const auto [code, body] = response();
  EXPECT_EQ(code, static_cast<u8>(ResponseCode::kFlightData));
  EXPECT_EQ(body, (Bytes{'{', '}'}));
}

TEST_F(CtrlFixture, StateObserverSeesEveryTransition) {
  std::vector<std::pair<LeonState, LeonState>> seen;
  ctrl.set_state_observer([&seen](LeonState prev, LeonState next) {
    seen.emplace_back(prev, next);
  });

  LoadProgramCmd a;
  a.total_packets = 1;
  a.sequence = 0;
  a.address = 0x40000100;
  a.data = {0, 0, 0, 0};
  ctrl.handle(cmd(a.serialize()));
  ctrl.handle(cmd(StartCmd{0x40000100}.serialize()));
  ctrl.watchdog_trip();

  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen.front().first, LeonState::kIdle);
  EXPECT_EQ(seen.back().first, LeonState::kRunning);
  EXPECT_EQ(seen.back().second, LeonState::kError);
  // The trip is counted before the observer could have sampled it.
  EXPECT_EQ(ctrl.stats().watchdog_trips, 1u);
}

TEST(PacketGeneratorQueue, BoundedDropOldest) {
  PacketGenerator gen(make_ip(192, 168, 100, 10), kLeonControlPort, 4);
  for (u8 i = 0; i < 10; ++i) {
    gen.emit(make_ip(10, 1, 1, 1), 555, ResponseCode::kStatus, Bytes{i});
  }
  EXPECT_EQ(gen.pending(), 4u);
  EXPECT_EQ(gen.responses_dropped(), 6u);
  EXPECT_EQ(gen.emitted(), 10u);
  // The survivors are the NEWEST four — a stalled reader sees fresh
  // state, not a replay of ancient responses.
  for (u8 want = 6; want < 10; ++want) {
    auto d = gen.pop();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->payload.at(1), want);
  }
  EXPECT_TRUE(gen.empty());
}

TEST(PacketGeneratorQueue, UnboundedWhenMaxQueueIsZero) {
  PacketGenerator gen(make_ip(192, 168, 100, 10), kLeonControlPort, 0);
  for (int i = 0; i < 200; ++i) {
    gen.emit(make_ip(10, 1, 1, 1), 555, ResponseCode::kStatus);
  }
  EXPECT_EQ(gen.pending(), 200u);
  EXPECT_EQ(gen.responses_dropped(), 0u);
}

}  // namespace
}  // namespace la::net
