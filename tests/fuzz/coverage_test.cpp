// Coverage feature semantics: log2 bucketing, merge/novelty bookkeeping.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "fuzz/coverage.hpp"

namespace la::test {
namespace {

TEST(Coverage, MetricBucketBit) {
  EXPECT_EQ(fuzz::metric_bucket_bit(0.0), 0u);     // no signal
  EXPECT_EQ(fuzz::metric_bucket_bit(-3.0), 0u);
  EXPECT_EQ(fuzz::metric_bucket_bit(1.0), 1u << 1);
  EXPECT_EQ(fuzz::metric_bucket_bit(2.0), 1u << 2);
  EXPECT_EQ(fuzz::metric_bucket_bit(3.0), 1u << 2);
  EXPECT_EQ(fuzz::metric_bucket_bit(4.0), 1u << 3);
  EXPECT_EQ(fuzz::metric_bucket_bit(1000.0), 1u << 10);
  // Astronomical values clamp to the top bucket instead of shifting out.
  EXPECT_EQ(fuzz::metric_bucket_bit(1e30), 1u << 31);
}

TEST(Coverage, MergeCountsNewFeaturesOnce) {
  fuzz::CoverageMap map;
  fuzz::CoverageSample s;
  s.mnemonics.set(3);
  s.mnemonics.set(7);
  s.traps.set(0x82);
  s.metric_buckets["cpu.instructions"] = 1u << 5;

  EXPECT_EQ(map.novelty(s), 4u);
  EXPECT_EQ(map.merge(s), 4u);
  EXPECT_EQ(map.feature_count(), 4u);
  // Replaying the same sample adds nothing.
  EXPECT_EQ(map.novelty(s), 0u);
  EXPECT_EQ(map.merge(s), 0u);
  EXPECT_EQ(map.feature_count(), 4u);
}

TEST(Coverage, NewBucketOfKnownMetricIsNovel) {
  fuzz::CoverageMap map;
  fuzz::CoverageSample a;
  a.metric_buckets["cache.d.read_misses"] = 1u << 4;
  EXPECT_EQ(map.merge(a), 1u);

  fuzz::CoverageSample b;
  b.metric_buckets["cache.d.read_misses"] = (1u << 4) | (1u << 9);
  EXPECT_EQ(map.merge(b), 1u);  // only the 2^9 bucket is new
}

TEST(Coverage, AnnulledFlagIsAFeature) {
  fuzz::CoverageMap map;
  fuzz::CoverageSample s;
  s.annulled_seen = true;
  EXPECT_EQ(map.merge(s), 1u);
  EXPECT_EQ(map.merge(s), 0u);
}

TEST(Coverage, AddMetricFeaturesUsesPrefix) {
  metrics::MetricsRegistry reg;
  reg.counter("x.count").inc(9);
  fuzz::CoverageSample s;
  fuzz::add_metric_features(s, "pipe.", reg.snapshot());
  ASSERT_EQ(s.metric_buckets.count("pipe.x.count"), 1u);
  EXPECT_EQ(s.metric_buckets.at("pipe.x.count"),
            fuzz::metric_bucket_bit(9.0));
}

}  // namespace
}  // namespace la::test
