// The three-way differential runner and the fuzzer's end-to-end
// self-check: a clean tree produces no divergences, and a deliberately
// injected semantic bug is caught and minimized to a tiny repro.
#include <gtest/gtest.h>

#include "fuzz/differential.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/program_generator.hpp"

namespace la::test {
namespace {

fuzz::ProgramSpec make_spec(u64 seed, fuzz::ProgramMode mode, int chunks) {
  fuzz::GenOptions opts;
  opts.mode = mode;
  opts.instructions = chunks;
  fuzz::ProgramGenerator gen(seed);
  return gen.generate(opts);
}

TEST(Differential, CoreProgramsRunCleanAcrossConfigs) {
  const auto rotation = fuzz::Fuzzer::config_rotation();
  for (u64 seed = 1; seed <= 5; ++seed) {
    for (std::size_t c = 0; c < rotation.size(); ++c) {
      fuzz::DiffOptions opt;
      opt.pipeline = rotation[c];
      opt.with_system = false;
      fuzz::DifferentialRunner runner(opt);
      const fuzz::DiffOutcome out =
          runner.run(make_spec(seed * 131 + c, fuzz::ProgramMode::kCore,
                               120));
      ASSERT_TRUE(out.asm_ok) << out.detail;
      EXPECT_FALSE(out.diverged)
          << "seed " << seed << " config " << c << ": " << out.detail;
      EXPECT_GT(out.steps, 0u);
      EXPECT_GT(out.coverage.mnemonics.count(), 5u);
    }
  }
}

TEST(Differential, SystemProgramsRunCleanThroughTheFullNode) {
  for (u64 seed = 1; seed <= 3; ++seed) {
    fuzz::DiffOptions opt;  // with_system defaults to true
    fuzz::DifferentialRunner runner(opt);
    const fuzz::DiffOutcome out =
        runner.run(make_spec(seed, fuzz::ProgramMode::kSystem, 120));
    ASSERT_TRUE(out.asm_ok) << out.detail;
    ASSERT_TRUE(out.completed) << out.detail;
    EXPECT_FALSE(out.diverged) << "seed " << seed << ": " << out.detail;
    // The full-system leg contributes its own metric namespace.
    bool has_sys = false;
    for (const auto& [name, bits] : out.coverage.metric_buckets) {
      if (name.rfind("sys.", 0) == 0) has_sys = true;
    }
    EXPECT_TRUE(has_sys);
  }
}

TEST(Differential, RejectsUnassemblableSource) {
  fuzz::DifferentialRunner runner(fuzz::DiffOptions{});
  const fuzz::DiffOutcome out =
      runner.run_source("    frobnicate %g1\n", fuzz::ProgramMode::kCore);
  EXPECT_FALSE(out.asm_ok);
  EXPECT_FALSE(out.diverged);
}

TEST(Differential, InjectedSubxBugDivergesOnDirectedProgram) {
  // The documented self-check fault: SUBX drops the carry-in (see
  // docs/TESTING.md).  A two-instruction carry chain exposes it.
  const std::string source =
      "    .org 0x40000100\n"
      "_start:\n"
      "    set data, %g7\n"
      "    subcc %g0, 1, %g1\n"   // 0 - 1: borrow -> C=1
      "    subx %g0, 0, %g2\n"    // correct: -1; buggy: 0
      "done:\n"
      "    ba done\n"
      "    nop\n"
      "    .align 8\ndata:\n    .skip 512\n";

  fuzz::DiffOptions clean;
  clean.with_system = false;
  EXPECT_FALSE(fuzz::DifferentialRunner(clean)
                   .run_source(source, fuzz::ProgramMode::kCore)
                   .diverged);

  fuzz::DiffOptions buggy;
  buggy.with_system = false;
  buggy.inject_subx_bug = true;
  const fuzz::DiffOutcome out = fuzz::DifferentialRunner(buggy).run_source(
      source, fuzz::ProgramMode::kCore);
  ASSERT_TRUE(out.asm_ok);
  EXPECT_TRUE(out.diverged);
  EXPECT_EQ(out.leg, "pipeline");
}

TEST(Differential, FuzzerCatchesAndMinimizesInjectedBug) {
  // End-to-end acceptance: a short campaign against the injected SUBX
  // fault must find a divergence and shrink it to a handful of
  // instructions.  Deterministic seed; no filesystem output.
  fuzz::FuzzConfig cfg;
  cfg.seed = 5;
  cfg.max_iterations = 60;
  cfg.program_chunks = 60;
  cfg.with_system = false;
  cfg.inject_subx_bug = true;
  cfg.out_dir.clear();
  cfg.verbose = false;

  fuzz::Fuzzer fuzzer(cfg);
  EXPECT_EQ(fuzzer.run(), 1);
  ASSERT_FALSE(fuzzer.failures().empty());
  const fuzz::FuzzFailure& f = fuzzer.failures().front();
  EXPECT_EQ(f.outcome.leg, "pipeline");
  EXPECT_LE(f.min_stats.final_instructions, 10);
  // The minimized program still carries the carry-consuming instruction.
  const std::string min_src = f.minimized.render();
  EXPECT_TRUE(min_src.find("subx") != std::string::npos ||
              min_src.find("mulscc") != std::string::npos)
      << min_src;
}

}  // namespace
}  // namespace la::test
