// Corpus persistence, the mutator's structural guarantees, and the
// delta-debugging minimizer on a synthetic predicate.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fuzz/corpus.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/program_generator.hpp"
#include "sasm/assembler.hpp"

namespace la::test {
namespace {

namespace fs = std::filesystem;

fuzz::ProgramSpec make_spec(u64 seed, fuzz::ProgramMode mode, int chunks) {
  fuzz::GenOptions opts;
  opts.mode = mode;
  opts.instructions = chunks;
  fuzz::ProgramGenerator gen(seed);
  return gen.generate(opts);
}

TEST(Corpus, SerializeParseRoundtrip) {
  const fuzz::ProgramSpec spec =
      make_spec(11, fuzz::ProgramMode::kSystem, 40);
  const std::string text = fuzz::serialize_spec(spec);
  const auto back = fuzz::parse_spec(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->opts.mode, spec.opts.mode);
  EXPECT_EQ(back->opts.seed, spec.opts.seed);
  EXPECT_EQ(back->opts.nwindows, spec.opts.nwindows);
  EXPECT_EQ(back->chunks, spec.chunks);
  // The acid test: the re-rendered program is byte-identical.
  EXPECT_EQ(back->render(), spec.render());
}

TEST(Corpus, ParseRejectsGarbage) {
  EXPECT_FALSE(fuzz::parse_spec("").has_value());
  EXPECT_FALSE(fuzz::parse_spec("not a program\n").has_value());
  EXPECT_FALSE(fuzz::parse_spec("lfuzz-program v999\n").has_value());
}

TEST(Corpus, SaveLoadRoundtrip) {
  const fs::path dir =
      fs::temp_directory_path() / "la_corpus_test_roundtrip";
  fs::remove_all(dir);

  fuzz::Corpus corpus;
  corpus.add(make_spec(1, fuzz::ProgramMode::kCore, 30), 3);
  corpus.add(make_spec(2, fuzz::ProgramMode::kSystem, 30), 1);
  EXPECT_EQ(corpus.save(dir.string()), 2u);
  // Saving again writes nothing new (same content hashes).
  EXPECT_EQ(corpus.save(dir.string()), 0u);

  fuzz::Corpus loaded;
  EXPECT_EQ(loaded.load(dir.string()), 2u);
  ASSERT_EQ(loaded.size(), 2u);
  // Render set must match, independent of load order.
  const std::string a = corpus.at(0).spec.render();
  const std::string l0 = loaded.at(0).spec.render();
  const std::string l1 = loaded.at(1).spec.render();
  EXPECT_TRUE(l0 == a || l1 == a);

  fs::remove_all(dir);
}

TEST(Corpus, LoadOfMissingDirectoryIsEmpty) {
  fuzz::Corpus corpus;
  EXPECT_EQ(corpus.load("/nonexistent/la_corpus_test"), 0u);
  EXPECT_TRUE(corpus.empty());
}

TEST(Mutator, MutantsUsuallyAssemble) {
  // The mutator may occasionally produce an unassemblable program (the
  // fuzzer discards those), but the overwhelming majority must survive —
  // otherwise mutation wastes the campaign budget.
  fuzz::Mutator mutator(99);
  const fuzz::ProgramSpec base =
      make_spec(5, fuzz::ProgramMode::kCore, 60);
  int ok = 0;
  const int kTotal = 50;
  for (int i = 0; i < kTotal; ++i) {
    const fuzz::ProgramSpec m = mutator.mutate(base);
    sasm::Assembler as;
    if (as.assemble(m.render()).ok) ++ok;
  }
  EXPECT_GE(ok, kTotal * 8 / 10);
}

TEST(Mutator, CrossoverKeepsFirstParentOptions) {
  fuzz::Mutator mutator(7);
  const fuzz::ProgramSpec a = make_spec(1, fuzz::ProgramMode::kSystem, 30);
  const fuzz::ProgramSpec b = make_spec(2, fuzz::ProgramMode::kSystem, 30);
  const fuzz::ProgramSpec c = mutator.crossover(a, b);
  EXPECT_EQ(c.opts.mode, a.opts.mode);
  EXPECT_EQ(c.opts.seed, a.opts.seed);
  EXPECT_FALSE(c.chunks.empty());
}

TEST(Minimizer, ShrinksToTheCulpritChunk) {
  // Synthetic failure: any program containing the "needle" chunk fails.
  fuzz::ProgramSpec spec = make_spec(3, fuzz::ProgramMode::kCore, 50);
  const std::string needle = "    xor %g1, 321, %g1\n";
  spec.chunks[17] = needle;

  std::size_t probes = 0;
  const auto fails = [&](const fuzz::ProgramSpec& cand) {
    ++probes;
    for (const std::string& c : cand.chunks) {
      if (c == needle) return true;
    }
    return false;
  };

  fuzz::MinimizeStats stats;
  const fuzz::ProgramSpec min = fuzz::minimize(spec, fails, &stats);
  ASSERT_EQ(min.chunks.size(), 1u);
  EXPECT_EQ(min.chunks[0], needle);
  EXPECT_EQ(stats.final_instructions, 1);
  EXPECT_GT(stats.probes, 0u);
}

TEST(Minimizer, ReturnsInputWhenPredicateNeverFails) {
  const fuzz::ProgramSpec spec =
      make_spec(4, fuzz::ProgramMode::kCore, 20);
  const fuzz::ProgramSpec min = fuzz::minimize(
      spec, [](const fuzz::ProgramSpec&) { return false; }, nullptr);
  EXPECT_EQ(min.chunks, spec.chunks);
}

}  // namespace
}  // namespace la::test
