// The shared program generator: everything it emits must assemble, and
// system-mode programs must additionally be trap-free and normalized.
#include <gtest/gtest.h>

#include <string>

#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "fuzz/program_generator.hpp"
#include "sasm/assembler.hpp"

namespace la::test {
namespace {

fuzz::ProgramSpec make_spec(u64 seed, fuzz::ProgramMode mode, int chunks) {
  fuzz::GenOptions opts;
  opts.mode = mode;
  opts.instructions = chunks;
  fuzz::ProgramGenerator gen(seed);
  return gen.generate(opts);
}

TEST(Generator, CoreProgramsAssembleAcrossSeeds) {
  for (u64 seed = 1; seed <= 30; ++seed) {
    const fuzz::ProgramSpec spec =
        make_spec(seed, fuzz::ProgramMode::kCore, 150);
    sasm::Assembler as;
    const sasm::AsmResult r = as.assemble(spec.render());
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.error_text();
    EXPECT_EQ(r.image.base, fuzz::kProgramBase);
    EXPECT_NO_THROW(r.image.symbol(fuzz::kDoneSymbol));
    EXPECT_NO_THROW(r.image.symbol("data"));
  }
}

TEST(Generator, SystemProgramsAssembleAcrossSeeds) {
  for (u64 seed = 1; seed <= 30; ++seed) {
    const fuzz::ProgramSpec spec =
        make_spec(seed, fuzz::ProgramMode::kSystem, 150);
    sasm::Assembler as;
    const sasm::AsmResult r = as.assemble(spec.render());
    ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.error_text();
  }
}

TEST(Generator, SeedIsRecordedInSpec) {
  const fuzz::ProgramSpec spec =
      make_spec(77, fuzz::ProgramMode::kCore, 50);
  EXPECT_EQ(spec.opts.seed, 77u);
  // Same seed, same program.
  const fuzz::ProgramSpec again =
      make_spec(77, fuzz::ProgramMode::kCore, 50);
  EXPECT_EQ(spec.render(), again.render());
}

TEST(Generator, SystemProgramsRunTrapFreeOnFunctionalModel) {
  // A kSystem program must never trap: on the full node a trap with ET=0
  // halts the CPU in error mode and the differential leg is meaningless.
  for (u64 seed = 1; seed <= 20; ++seed) {
    const fuzz::ProgramSpec spec =
        make_spec(seed, fuzz::ProgramMode::kSystem, 200);
    const sasm::Image img = sasm::assemble_or_throw(spec.render());
    cpu::FlatMemory mem(1u << 20, 0x40000000);
    mem.load(img.base, img.data);
    cpu::IntegerUnit iu(cpu::CpuConfig{}, mem);
    iu.reset(img.entry);
    iu.run(400000, img.symbol(fuzz::kDoneSymbol));
    EXPECT_FALSE(iu.state().error_mode)
        << "seed " << seed << " trapped (tt="
        << static_cast<unsigned>(iu.state().tbr_tt()) << ")";
    EXPECT_EQ(iu.state().pc, img.symbol(fuzz::kDoneSymbol))
        << "seed " << seed << " did not reach done";
  }
}

TEST(Generator, EmitsAtomicVariantsAndMulsccChains) {
  // Satellite check: the generator's vocabulary includes the atomic
  // a-variants and mulscc.  Over a large body every family must appear.
  std::string all;
  for (u64 seed = 1; seed <= 10; ++seed) {
    all += make_spec(seed, fuzz::ProgramMode::kCore, 400).render();
  }
  EXPECT_NE(all.find("ldstub "), std::string::npos);
  EXPECT_NE(all.find("ldstuba "), std::string::npos);
  EXPECT_NE(all.find("swap "), std::string::npos);
  EXPECT_NE(all.find("swapa "), std::string::npos);
  EXPECT_NE(all.find("mulscc "), std::string::npos);
}

TEST(Generator, BodyInstructionCountIgnoresLabels) {
  fuzz::ProgramSpec spec;
  spec.chunks = {"    add %g1, 1, %g2\n",
                 "fwd1:\n    sub %g1, 1, %g2\n    xor %g3, 5, %g3\n"};
  EXPECT_EQ(spec.body_instructions(), 3);
}

}  // namespace
}  // namespace la::test
