// Directed tests of the set-associative cache model.
#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace la::cache {
namespace {

CacheConfig direct_1k() {
  return CacheConfig{.size_bytes = 1024, .line_bytes = 32, .ways = 1};
}

TEST(CacheConfig, Validity) {
  EXPECT_TRUE(direct_1k().valid());
  EXPECT_FALSE((CacheConfig{.size_bytes = 1000}).valid());
  EXPECT_FALSE((CacheConfig{.size_bytes = 32, .line_bytes = 32, .ways = 2})
                   .valid());
  EXPECT_EQ(direct_1k().num_sets(), 32u);
  CacheConfig two_way{.size_bytes = 1024, .line_bytes = 32, .ways = 2};
  EXPECT_EQ(two_way.num_sets(), 16u);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(direct_1k());
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x11c, false).hit);   // same 32B line
  EXPECT_FALSE(c.access(0x120, false).hit);  // next line
  EXPECT_EQ(c.stats().read_hits, 2u);
  EXPECT_EQ(c.stats().read_misses, 2u);
}

TEST(Cache, DirectMappedConflict) {
  Cache c(direct_1k());
  // 1 KB direct-mapped: addresses 1 KB apart alias to the same set.
  EXPECT_FALSE(c.access(0x0, false).hit);
  EXPECT_FALSE(c.access(0x400, false).hit);
  EXPECT_FALSE(c.access(0x0, false).hit);  // evicted by 0x400
  EXPECT_EQ(c.stats().evictions, 2u);
}

TEST(Cache, TwoWayAvoidsSimpleConflict) {
  Cache c(CacheConfig{.size_bytes = 1024, .line_bytes = 32, .ways = 2});
  c.access(0x0, false);
  c.access(0x400, false);
  EXPECT_TRUE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x400, false).hit);
}

TEST(Cache, LruEvictsLeastRecent) {
  Cache c(CacheConfig{.size_bytes = 1024, .line_bytes = 32, .ways = 2});
  c.access(0x0, false);    // way A
  c.access(0x400, false);  // way B
  c.access(0x0, false);    // touch A: B is now LRU
  c.access(0x800, false);  // evicts B
  EXPECT_TRUE(c.access(0x0, false).hit);
  EXPECT_FALSE(c.access(0x400, false).hit);
}

TEST(Cache, WriteThroughNoAllocate) {
  Cache c(direct_1k());
  const auto w = c.access(0x200, true);
  EXPECT_FALSE(w.hit);
  EXPECT_FALSE(w.fill);  // write-around
  EXPECT_FALSE(c.probe(0x200));
  // After a read brings the line in, writes hit.
  c.access(0x200, false);
  EXPECT_TRUE(c.access(0x200, true).hit);
  EXPECT_EQ(c.stats().write_misses, 1u);
  EXPECT_EQ(c.stats().write_hits, 1u);
}

TEST(Cache, WriteBackAllocatesAndWritesBack) {
  CacheConfig cfg = direct_1k();
  cfg.write_policy = WritePolicy::kWriteBackAllocate;
  Cache c(cfg);
  const auto w = c.access(0x200, true);
  EXPECT_TRUE(w.fill);  // write-allocate
  EXPECT_TRUE(c.probe(0x200));
  // Conflicting fill must report the dirty victim.
  const auto v = c.access(0x200 + 1024, false);
  EXPECT_TRUE(v.writeback);
  EXPECT_EQ(v.victim_addr, 0x200u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(direct_1k());
  for (Addr a = 0; a < 1024; a += 32) c.access(a, false);
  EXPECT_EQ(c.valid_lines(), 32u);
  c.flush();
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_FALSE(c.probe(0));
  EXPECT_EQ(c.stats().flushes, 1u);
}

TEST(Cache, FlushReportsDirtyLines) {
  CacheConfig cfg = direct_1k();
  cfg.write_policy = WritePolicy::kWriteBackAllocate;
  Cache c(cfg);
  c.access(0x40, true);
  c.access(0x80, false);  // clean
  std::vector<DirtyLine> dirty;
  c.flush(&dirty);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].addr, 0x40u);
  EXPECT_EQ(dirty[0].data.size(), 32u);
}

TEST(Cache, LineDataSurvivesInCache) {
  Cache c(direct_1k());
  auto out = c.access(0x100, false);
  ASSERT_TRUE(out.fill);
  ASSERT_NE(out.data, nullptr);
  out.data[0] = 0xab;
  out.data[31] = 0xcd;
  const u8* peek = c.peek_line(0x11f);
  ASSERT_NE(peek, nullptr);
  EXPECT_EQ(peek[0], 0xab);
  EXPECT_EQ(peek[31], 0xcd);
  EXPECT_EQ(c.peek_line(0x200), nullptr);
}

TEST(Cache, InvalidateReturnsDirtyData) {
  CacheConfig cfg = direct_1k();
  cfg.write_policy = WritePolicy::kWriteBackAllocate;
  Cache c(cfg);
  auto out = c.access(0x40, true);
  out.data[4] = 0x5a;
  DirtyLine d;
  ASSERT_TRUE(c.invalidate_line(0x40, &d));
  EXPECT_EQ(d.addr, 0x40u);
  ASSERT_EQ(d.data.size(), 32u);
  EXPECT_EQ(d.data[4], 0x5a);
}

TEST(Cache, InvalidateSingleLine) {
  Cache c(direct_1k());
  c.access(0x300, false);
  EXPECT_TRUE(c.invalidate_line(0x300));
  EXPECT_FALSE(c.probe(0x300));
  EXPECT_FALSE(c.invalidate_line(0x300));  // already gone
}

TEST(Cache, ProbeDoesNotDisturbState) {
  Cache c(CacheConfig{.size_bytes = 1024, .line_bytes = 32, .ways = 2});
  c.access(0x0, false);
  c.access(0x400, false);
  // Probing 0x400 repeatedly must not refresh its LRU position.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.probe(0x400));
  c.access(0x0, false);    // 0x400 stays LRU
  c.access(0x800, false);  // evicts 0x400
  EXPECT_FALSE(c.probe(0x400));
  EXPECT_TRUE(c.probe(0x0));
}

TEST(Cache, PaperGeometryWorkingSetCliff) {
  // The Fig 8/9 setting: stride-128B over a 4 KB array (32 lines touched,
  // 128 bytes apart).  1 KB and 2 KB direct-mapped caches conflict on
  // every access; a 4 KB cache holds the whole working set.
  for (const u32 kb : {1u, 2u, 4u, 8u, 16u}) {
    Cache c(CacheConfig{.size_bytes = kb * 1024, .line_bytes = 32, .ways = 1});
    // Warm-up pass + measured pass.
    for (int pass = 0; pass < 2; ++pass) {
      for (Addr a = 0; a < 4096; a += 128) c.access(a, false);
    }
    if (kb >= 4) {
      // All 32 lines fit: second pass all hits, first pass 32 cold misses.
      EXPECT_EQ(c.stats().read_misses, 32u) << kb << "KB";
      EXPECT_EQ(c.stats().read_hits, 32u) << kb << "KB";
    } else {
      // Too small: every access misses (conflicts), both passes.
      EXPECT_EQ(c.stats().read_misses, 64u) << kb << "KB";
      EXPECT_EQ(c.stats().read_hits, 0u) << kb << "KB";
    }
  }
}

TEST(Cache, RandomReplacementStaysInSet) {
  CacheConfig cfg{.size_bytes = 1024,
                  .line_bytes = 32,
                  .ways = 4,
                  .replacement = Replacement::kRandom};
  Cache c(cfg, /*seed=*/123);
  // Fill one set with 4 lines, then alternate two more; victims must always
  // come from the same set and the cache must never exceed 4 valid lines
  // in it.
  const u32 set_stride = 1024 / 4;  // ways*line... set count = 8, stride 256
  for (u32 i = 0; i < 64; ++i) {
    c.access(i * set_stride * 8, false);  // always set 0 (stride 2 KB > cache)
  }
  EXPECT_LE(c.valid_lines(), 4u);
}

TEST(Cache, StatsRatios) {
  Cache c(direct_1k());
  c.access(0, false);
  c.access(0, false);
  c.access(0, true);
  c.access(64, true);
  EXPECT_EQ(c.stats().accesses(), 4u);
  EXPECT_DOUBLE_EQ(c.stats().miss_ratio(), 2.0 / 4.0);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses(), 0u);
}

}  // namespace
}  // namespace la::cache
