// Property tests: the cache model against a brute-force reference
// implementation, across a parameter sweep of geometries.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>

#include "cache/cache.hpp"
#include "common/rng.hpp"

namespace la::cache {
namespace {

/// Reference model: per-set list of line addresses in LRU order.
/// Intentionally naive — correctness by construction.
class RefCache {
 public:
  explicit RefCache(const CacheConfig& cfg) : cfg_(cfg) {}

  bool access(Addr addr, bool is_write) {
    const Addr line = addr / cfg_.line_bytes * cfg_.line_bytes;
    const u32 set = (addr / cfg_.line_bytes) % cfg_.num_sets();
    auto& l = sets_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (*it == line) {
        l.erase(it);
        l.push_front(line);  // most recent at front
        return true;
      }
    }
    // Miss.
    const bool allocate =
        !is_write ||
        cfg_.write_policy == WritePolicy::kWriteBackAllocate;
    if (allocate) {
      if (l.size() == cfg_.ways) l.pop_back();
      l.push_front(line);
    }
    return false;
  }

 private:
  CacheConfig cfg_;
  std::map<u32, std::list<Addr>> sets_;
};

using Geometry = std::tuple<u32, u32, u32>;  // size, line, ways

class CacheVsReference : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheVsReference, HitMissSequencesMatch) {
  const auto [size, line, ways] = GetParam();
  CacheConfig cfg{.size_bytes = size, .line_bytes = line, .ways = ways};
  ASSERT_TRUE(cfg.valid());
  Cache dut(cfg);
  RefCache ref(cfg);
  Rng rng(size * 31 + line * 7 + ways);

  // Mixed footprint: hot region (2x cache), cold region (8x cache).
  for (int i = 0; i < 20000; ++i) {
    const bool hot = rng.chance(0.7);
    const u32 span = hot ? size * 2 : size * 8;
    const Addr a = rng.below(span) & ~3u;
    const bool w = rng.chance(0.3);
    const bool dut_hit = dut.access(a, w).hit;
    const bool ref_hit = ref.access(a, w);
    ASSERT_EQ(dut_hit, ref_hit)
        << "iteration " << i << " addr " << a << " write " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{2048, 32, 1},
                      Geometry{4096, 32, 1}, Geometry{8192, 32, 1},
                      Geometry{16384, 32, 1}, Geometry{1024, 16, 1},
                      Geometry{1024, 64, 1}, Geometry{1024, 32, 2},
                      Geometry{4096, 32, 4}, Geometry{8192, 64, 2},
                      Geometry{512, 16, 4}, Geometry{65536, 32, 1}));

class CacheInvariants : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheInvariants, CapacityNeverExceeded) {
  const auto [size, line, ways] = GetParam();
  CacheConfig cfg{.size_bytes = size, .line_bytes = line, .ways = ways};
  Cache dut(cfg);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    dut.access(rng.next_u32() & 0xffffff & ~3u, rng.chance(0.5));
    ASSERT_LE(dut.valid_lines(), cfg.num_lines());
  }
  // Stats must be internally consistent.
  const auto& s = dut.stats();
  EXPECT_EQ(s.accesses(), 5000u);
  EXPECT_LE(s.evictions, s.read_misses + s.write_misses);
}

TEST_P(CacheInvariants, AccessesWithinOneLineAfterFillAlwaysHit) {
  const auto [size, line, ways] = GetParam();
  CacheConfig cfg{.size_bytes = size, .line_bytes = line, .ways = ways};
  Cache dut(cfg);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Addr base = (rng.next_u32() & 0xfffff) / line * line;
    dut.access(base, false);
    for (u32 off = 0; off < line; off += 4) {
      ASSERT_TRUE(dut.access(base + off, false).hit) << base << "+" << off;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheInvariants,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{4096, 32, 2},
                      Geometry{2048, 64, 4}, Geometry{512, 16, 1},
                      Geometry{16384, 32, 1}));

}  // namespace
}  // namespace la::cache
