// The shipped example programs in progs/ assemble, run on the full node
// through the remote-control flow, and produce verifiably correct results.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"
#include "sim/liquid_system.hpp"

#ifndef LA_PROGS_DIR
#error "LA_PROGS_DIR must point at the progs/ directory"
#endif

namespace la::test {
namespace {

std::string slurp(const std::string& name) {
  std::ifstream in(std::string(LA_PROGS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << name;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct ProgRun {
  sim::LiquidSystem node;
  sasm::Image img;

  explicit ProgRun(const std::string& source, bool with_runtime = false,
               u64 max_steps = 50'000'000) {
    std::string src = source;
    if (with_runtime) src += sasm::rt::runtime_source();
    img = sasm::assemble_or_throw(src);
    node.run(100);
    ctrl::LiquidClient client(node);
    EXPECT_TRUE(client.run_program(img, max_steps));
  }

  u32 word(std::string_view sym, u32 off = 0) {
    return node.sram().backdoor_word(img.symbol(sym) + off);
  }
};

TEST(Programs, Fig7KernelMeasuresItself) {
  ProgRun r(slurp("fig7.s"));
  const u32 cycles = r.word("cycles");
  EXPECT_GT(cycles, 100000u);   // 31250 iterations, all missing at 1 KB
  EXPECT_LT(cycles, 2000000u);
}

TEST(Programs, QuicksortSortsAdversarialData) {
  const std::string src = slurp("quicksort.s");
  // Host-side expectation: the image's initial data words, sorted.
  const auto pre = sasm::assemble_or_throw(src + sasm::rt::runtime_source());
  std::vector<u32> expect;
  for (u32 i = 0; i < 64; ++i) {
    expect.push_back(pre.word_at(pre.symbol("data") + 4 * i));
  }
  std::sort(expect.begin(), expect.end());

  ProgRun r(src, /*with_runtime=*/true);
  EXPECT_EQ(r.word("done_flag"), 1u);
  for (u32 i = 0; i < 64; ++i) {
    EXPECT_EQ(r.word("data", 4 * i), expect[i]) << "index " << i;
  }
}

TEST(Programs, Crc32MatchesKnownVector) {
  ProgRun r(slurp("crc32.s"));
  // CRC-32 (IEEE) of the byte sequence 00 01 02 .. FF: the classic test
  // vector 0x29058C73.
  EXPECT_EQ(r.word("crc"), 0x29058C73u);
  EXPECT_GT(r.word("cycles"), 1000u);
}

TEST(Programs, MemtestPassesOnHealthySdram) {
  ProgRun r(slurp("memtest.s"));
  EXPECT_EQ(r.word("errors"), 0u);
  EXPECT_EQ(r.word("words_tested"), 3u * 4096u);
  // It really exercised the SDRAM path.
  EXPECT_GT(r.node.sdram_controller().stats().total_handshakes(), 10000u);
}

TEST(Programs, MemtestDetectsInjectedFault) {
  // Corrupt the SDRAM device mid-test by flipping a bit via the backdoor
  // after pass 1 writes: run manually instead of through Run.
  sim::LiquidSystem node;
  node.run(100);
  ctrl::LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(slurp("memtest.s"));
  ASSERT_TRUE(client.load_program(img));
  ASSERT_TRUE(client.start(img.entry));
  // A "stuck" SDRAM cell: keep forcing one 64-bit word to garbage while
  // the test runs.  Every verification pass that reads it from the device
  // (the 1 KB D-cache cannot keep the 16 KB window resident) must flag it.
  u64 slices = 0;
  while (node.controller().state() != net::LeonState::kDone &&
         slices++ < 1000) {
    node.sdram_controller().device().backdoor_write_word64(
        0x2000, 0xdead5a5adead5a5aull);
    client.pump(5000);
  }
  ASSERT_EQ(node.controller().state(), net::LeonState::kDone);
  const u32 errors = node.sram().backdoor_word(img.symbol("errors"));
  EXPECT_GT(errors, 0u);
}

// --- the packet/STREAM workload library ---------------------------------

/// Re-parameterize a kernel: rewrite its `.equ name, value` line.  The
/// workloads size their working sets through these constants so a sweep
/// can scale them against the cache geometry without editing the source.
std::string with_equ(std::string src, const std::string& name, u32 value) {
  const std::string key = ".equ " + name + ",";
  const size_t at = src.find(key);
  EXPECT_NE(at, std::string::npos) << name;
  const size_t eol = src.find('\n', at);
  src.replace(at, eol - at, key + " " + std::to_string(value));
  return src;
}

u32 byte_at(const sasm::Image& img, u32 addr) {
  return (img.word_at(addr & ~3u) >> (24 - 8 * (addr & 3))) & 0xffu;
}

/// Host-side RFC 1071: one's-complement sum of big-endian halfwords.
u32 ip_checksum(const sasm::Image& img, u32 addr, u32 nbytes) {
  u32 sum = 0;
  for (u32 i = 0; i < nbytes; i += 2) {
    sum += (byte_at(img, addr + i) << 8) | byte_at(img, addr + i + 1);
  }
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  return ~sum & 0xffffu;
}

void check_ipcksum(const std::string& src, u32 npkts, u32 pkt_bytes) {
  const auto pre = sasm::assemble_or_throw(src);
  ProgRun r(src);
  EXPECT_EQ(r.word("done_flag"), 1u);
  EXPECT_GT(r.word("cycles"), 0u);
  for (u32 p = 0; p < npkts; ++p) {
    EXPECT_EQ(r.word("results", 4 * p),
              ip_checksum(pre, pre.symbol("data") + p * pkt_bytes,
                          pkt_bytes))
        << "packet " << p;
  }
}

TEST(Programs, IpChecksumMatchesHostComputation) {
  check_ipcksum(slurp("ipcksum.s"), 4, 64);
}

TEST(Programs, IpChecksumSweepsPacketSize) {
  // The .equ parameterization: same buffer reinterpreted as 4 x 32 B.
  check_ipcksum(with_equ(slurp("ipcksum.s"), "PKT_BYTES", 32), 4, 32);
}

TEST(Programs, LpmLookupMatchesHostComputation) {
  const std::string src = slurp("lpm.s");
  const u32 nroutes = 6, nqueries = 8;
  const auto pre = sasm::assemble_or_throw(src);

  ProgRun r(src);
  EXPECT_EQ(r.word("done_flag"), 1u);
  EXPECT_GT(r.word("cycles"), 0u);
  for (u32 q = 0; q < nqueries; ++q) {
    const u32 addr = pre.word_at(pre.symbol("queries") + 4 * q);
    u32 want = 0;  // default route id when nothing matches
    for (u32 e = 0; e < nroutes; ++e) {
      const u32 base = pre.symbol("table") + 12 * e;
      if ((addr & pre.word_at(base + 4)) == pre.word_at(base)) {
        want = pre.word_at(base + 8);  // sorted: first match is longest
        break;
      }
    }
    EXPECT_EQ(r.word("results", 4 * q), want) << "query " << q;
  }
}

TEST(Programs, ClassifyMatchesHostComputation) {
  const std::string src = slurp("classify.s");
  const u32 nrules = 4, npkts = 6;
  const auto pre = sasm::assemble_or_throw(src);

  ProgRun r(src);
  EXPECT_EQ(r.word("done_flag"), 1u);
  for (u32 p = 0; p < npkts; ++p) {
    const u32 srca = pre.word_at(pre.symbol("packets") + 8 * p);
    const u32 dsta = pre.word_at(pre.symbol("packets") + 8 * p + 4);
    u32 want = 0;
    for (u32 e = 0; e < nrules; ++e) {
      const u32 base = pre.symbol("rules") + 20 * e;
      if ((srca & pre.word_at(base)) == pre.word_at(base + 4) &&
          (dsta & pre.word_at(base + 8)) == pre.word_at(base + 12)) {
        want = pre.word_at(base + 16);
        break;
      }
    }
    EXPECT_EQ(r.word("results", 4 * p), want) << "packet " << p;
  }
}

/// Host model of stream.s: a[i]=7+3i, then copy/scale/add/triad, then
/// the mod-2^32 sum of a[].
u32 stream_expected_sum(u32 words) {
  u32 sum = 0;
  for (u32 i = 0; i < words; ++i) {
    const u32 a = 7 + 3 * i;
    const u32 b = 3 * a;        // scale
    const u32 c = a + b;        // add (copy is overwritten)
    sum += b + 3 * c;           // triad -> a[i]
  }
  return sum;
}

TEST(Programs, StreamKernelsMatchHostComputation) {
  ProgRun r(slurp("stream.s"));
  EXPECT_EQ(r.word("done_flag"), 1u);
  EXPECT_EQ(r.word("sum_a"), stream_expected_sum(256));
  EXPECT_GT(r.word("cycles"), 0u);
}

TEST(Programs, StreamSweepsWorkingSetSize) {
  // The cache-geometry sweep axis: working set = 3*STREAM_WORDS*4 bytes.
  // Results stay exact at every size, and cycles grow with the set.
  u32 prev_cycles = 0;
  for (const u32 words : {64u, 512u}) {
    ProgRun r(with_equ(slurp("stream.s"), "STREAM_WORDS", words));
    EXPECT_EQ(r.word("done_flag"), 1u) << words;
    EXPECT_EQ(r.word("sum_a"), stream_expected_sum(words)) << words;
    EXPECT_GT(r.word("cycles"), prev_cycles) << words;
    prev_cycles = r.word("cycles");
  }
}

}  // namespace
}  // namespace la::test
