// The shipped example programs in progs/ assemble, run on the full node
// through the remote-control flow, and produce verifiably correct results.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"
#include "sim/liquid_system.hpp"

#ifndef LA_PROGS_DIR
#error "LA_PROGS_DIR must point at the progs/ directory"
#endif

namespace la::test {
namespace {

std::string slurp(const std::string& name) {
  std::ifstream in(std::string(LA_PROGS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << name;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct ProgRun {
  sim::LiquidSystem node;
  sasm::Image img;

  explicit ProgRun(const std::string& source, bool with_runtime = false,
               u64 max_steps = 50'000'000) {
    std::string src = source;
    if (with_runtime) src += sasm::rt::runtime_source();
    img = sasm::assemble_or_throw(src);
    node.run(100);
    ctrl::LiquidClient client(node);
    EXPECT_TRUE(client.run_program(img, max_steps));
  }

  u32 word(std::string_view sym, u32 off = 0) {
    return node.sram().backdoor_word(img.symbol(sym) + off);
  }
};

TEST(Programs, Fig7KernelMeasuresItself) {
  ProgRun r(slurp("fig7.s"));
  const u32 cycles = r.word("cycles");
  EXPECT_GT(cycles, 100000u);   // 31250 iterations, all missing at 1 KB
  EXPECT_LT(cycles, 2000000u);
}

TEST(Programs, QuicksortSortsAdversarialData) {
  const std::string src = slurp("quicksort.s");
  // Host-side expectation: the image's initial data words, sorted.
  const auto pre = sasm::assemble_or_throw(src + sasm::rt::runtime_source());
  std::vector<u32> expect;
  for (u32 i = 0; i < 64; ++i) {
    expect.push_back(pre.word_at(pre.symbol("data") + 4 * i));
  }
  std::sort(expect.begin(), expect.end());

  ProgRun r(src, /*with_runtime=*/true);
  EXPECT_EQ(r.word("done_flag"), 1u);
  for (u32 i = 0; i < 64; ++i) {
    EXPECT_EQ(r.word("data", 4 * i), expect[i]) << "index " << i;
  }
}

TEST(Programs, Crc32MatchesKnownVector) {
  ProgRun r(slurp("crc32.s"));
  // CRC-32 (IEEE) of the byte sequence 00 01 02 .. FF: the classic test
  // vector 0x29058C73.
  EXPECT_EQ(r.word("crc"), 0x29058C73u);
  EXPECT_GT(r.word("cycles"), 1000u);
}

TEST(Programs, MemtestPassesOnHealthySdram) {
  ProgRun r(slurp("memtest.s"));
  EXPECT_EQ(r.word("errors"), 0u);
  EXPECT_EQ(r.word("words_tested"), 3u * 4096u);
  // It really exercised the SDRAM path.
  EXPECT_GT(r.node.sdram_controller().stats().total_handshakes(), 10000u);
}

TEST(Programs, MemtestDetectsInjectedFault) {
  // Corrupt the SDRAM device mid-test by flipping a bit via the backdoor
  // after pass 1 writes: run manually instead of through Run.
  sim::LiquidSystem node;
  node.run(100);
  ctrl::LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(slurp("memtest.s"));
  ASSERT_TRUE(client.load_program(img));
  ASSERT_TRUE(client.start(img.entry));
  // A "stuck" SDRAM cell: keep forcing one 64-bit word to garbage while
  // the test runs.  Every verification pass that reads it from the device
  // (the 1 KB D-cache cannot keep the 16 KB window resident) must flag it.
  u64 slices = 0;
  while (node.controller().state() != net::LeonState::kDone &&
         slices++ < 1000) {
    node.sdram_controller().device().backdoor_write_word64(
        0x2000, 0xdead5a5adead5a5aull);
    client.pump(5000);
  }
  ASSERT_EQ(node.controller().state(), net::LeonState::kDone);
  const u32 errors = node.sram().backdoor_word(img.symbol("errors"));
  EXPECT_GT(errors, 0u);
}

}  // namespace
}  // namespace la::test
