// Randomized scheduler invariants, checked two ways: on the pure
// FarmScheduler core with a simulated fleet (fast, thousands of jobs) and
// on the real LiquidFarm (threads, nodes, the works).
//
//   * per-owner FIFO: one owner's jobs dispatch and complete in
//     submission order, under either policy, any fleet width;
//   * plan() previews: for a single node with a pre-submitted batch, the
//     preview IS the execution order.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "farm/farm.hpp"
#include "farm/workload.hpp"

namespace la::farm {
namespace {

/// Drive the pure scheduler with `nodes` simulated nodes completing in
/// random order; fill `dispatched` with dispatch order per owner.
void simulate(u64 seed, FarmPolicy policy, std::size_t nodes,
              std::map<std::string, std::vector<u64>>* dispatched) {
  Rng rng(seed);
  SchedulerConfig cfg;
  cfg.policy = policy;
  cfg.queue_capacity = 0;  // this test wants depth, not backpressure
  FarmScheduler s(cfg);

  WorkloadConfig wc;
  wc.seed = seed ^ 0x9e3779b97f4a7c15ull;
  wc.owners = 5;
  WorkloadGenerator gen(wc);
  const u64 total = 400;
  for (u64 i = 0; i < total; ++i) ASSERT_TRUE(s.enqueue(gen.next().job));

  struct Node {
    std::string key = liquid::ArchConfig{}.key();
    std::optional<FarmJob> running;
  };
  std::vector<Node> fleet(nodes);
  u64 done = 0;
  while (done < total) {
    bool progressed = false;
    // Idle nodes pick.
    for (Node& n : fleet) {
      if (n.running.has_value()) continue;
      if (auto j = s.pick(n.key)) {
        (*dispatched)[j->owner].push_back(j->id);
        n.key = j->config.key();
        n.running = std::move(j);
        progressed = true;
      }
    }
    // One random busy node completes.
    std::vector<std::size_t> busy;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (fleet[i].running.has_value()) busy.push_back(i);
    }
    if (!busy.empty()) {
      Node& n = fleet[busy[rng.below(static_cast<u32>(busy.size()))]];
      s.complete(n.running->owner);
      n.running.reset();
      ++done;
      progressed = true;
    }
    ASSERT_TRUE(progressed) << "scheduler wedged with " << done << " done";
  }
}

TEST(OwnerFifoProperty, HoldsAcrossSeedsPoliciesAndWidths) {
  for (const FarmPolicy policy : {FarmPolicy::kAffinity, FarmPolicy::kFifo}) {
    for (const std::size_t nodes : {1u, 3u, 8u}) {
      for (u64 seed = 1; seed <= 5; ++seed) {
        std::map<std::string, std::vector<u64>> dispatched;
        simulate(seed, policy, nodes, &dispatched);
        for (const auto& [owner, ids] : dispatched) {
          for (std::size_t i = 1; i < ids.size(); ++i) {
            ASSERT_LT(ids[i - 1], ids[i])
                << owner << " reordered (seed " << seed << ", "
                << nodes << " nodes)";
          }
        }
      }
    }
  }
}

TEST(OwnerFifoProperty, HoldsOnTheRealFarm) {
  FarmConfig fc;
  fc.nodes = 4;
  LiquidFarm f(fc);
  WorkloadConfig wc;
  wc.seed = 77;
  wc.owners = 4;  // few owners, deep per-owner chains
  WorkloadGenerator gen(wc);
  for (int i = 0; i < 60; ++i) ASSERT_TRUE(f.submit(gen.next().job));
  f.drain();
  std::map<std::string, u64> last;
  while (auto out = f.try_pop_result()) {
    u64& prev = last[out->owner];
    ASSERT_GT(out->id, prev) << out->owner << " results out of order";
    prev = out->id;
  }
}

TEST(PlanProperty, SingleNodePreviewMatchesExecutionOrder) {
  for (u64 seed = 1; seed <= 3; ++seed) {
    FarmConfig fc;
    fc.nodes = 1;
    fc.autostart = false;  // park the worker while the batch queues up
    LiquidFarm f(fc);

    WorkloadConfig wc;
    wc.seed = seed * 131;
    WorkloadGenerator gen(wc);
    for (int i = 0; i < 40; ++i) ASSERT_TRUE(f.submit(gen.next().job));

    const std::vector<u64> planned = f.plan(0);
    ASSERT_EQ(planned.size(), 40u);

    f.start();
    f.drain();
    std::vector<u64> executed;
    while (auto out = f.try_pop_result()) executed.push_back(out->id);
    EXPECT_EQ(planned, executed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace la::farm
