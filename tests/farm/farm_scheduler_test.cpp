// FarmScheduler unit tests: admission control, affinity routing, per-owner
// FIFO, anti-starvation aging, and plan() previews — all on the pure
// single-threaded core, no threads involved.
#include "farm/scheduler.hpp"

#include <gtest/gtest.h>

namespace la::farm {
namespace {

liquid::ArchConfig dcache_cfg(u32 bytes) {
  liquid::ArchConfig c;
  c.dcache_bytes = bytes;
  return c;
}

FarmJob job(const std::string& owner, u32 dcache_bytes = 1024) {
  FarmJob j;
  j.owner = owner;
  j.config = dcache_cfg(dcache_bytes);
  return j;
}

const std::string kBase = liquid::ArchConfig{}.key();  // 1 KB D-cache

TEST(Enqueue, AssignsIncreasingIds) {
  FarmScheduler s;
  const Result<u64> a = s.enqueue(job("alice"));
  const Result<u64> b = s.enqueue(job("bob"));
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_LT(*a, *b);
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_EQ(s.stats().submitted, 2u);
}

TEST(Enqueue, RejectsInvalidConfig) {
  FarmScheduler s;
  FarmJob j = job("alice");
  j.config.dcache_bytes = 999;  // not a power of two
  const Result<u64> r = s.enqueue(std::move(j));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kInvalidConfig);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.stats().rejected, 1u);
}

TEST(Enqueue, SaturatesAtCapacityAndRecovers) {
  SchedulerConfig cfg;
  cfg.queue_capacity = 2;
  FarmScheduler s(cfg);
  ASSERT_TRUE(s.enqueue(job("a")));
  ASSERT_TRUE(s.enqueue(job("b")));
  const Result<u64> r = s.enqueue(job("c"));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kSaturated);
  ASSERT_TRUE(s.pick(kBase).has_value());  // frees a slot
  EXPECT_TRUE(s.enqueue(job("c")));
}

TEST(Enqueue, SaturationCarriesRetryAfterHint) {
  SchedulerConfig cfg;
  cfg.queue_capacity = 2;
  FarmScheduler s(cfg);
  ASSERT_TRUE(s.enqueue(job("a")));
  ASSERT_TRUE(s.enqueue(job("b")));
  const Result<u64> r = s.enqueue(job("c"));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kSaturated);
  // The refusal tells the client when to come back — never zero, and it
  // grows with the backlog.
  EXPECT_GT(r.error().retry_after_hint_ms, 0u);
}

TEST(Enqueue, PerOwnerCapRejectsTheGreedyOwnerOnly) {
  SchedulerConfig cfg;
  cfg.per_owner_cap = 2;
  FarmScheduler s(cfg);
  ASSERT_TRUE(s.enqueue(job("greedy")));
  ASSERT_TRUE(s.enqueue(job("greedy")));
  const Result<u64> r = s.enqueue(job("greedy"));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kOwnerSaturated);
  EXPECT_GT(r.error().retry_after_hint_ms, 0u);
  // Other owners are untouched by one tenant's pileup.
  EXPECT_TRUE(s.enqueue(job("polite")));
}

TEST(Enqueue, PerOwnerCapCountsUntilCompletionNotUntilPick) {
  SchedulerConfig cfg;
  cfg.per_owner_cap = 1;
  FarmScheduler s(cfg);
  ASSERT_TRUE(s.enqueue(job("a")));
  // Picking the job starts it running; the owner's slot is still held.
  ASSERT_TRUE(s.pick(kBase).has_value());
  const Result<u64> r = s.enqueue(job("a"));
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kOwnerSaturated);
  // Completion frees the slot.
  s.complete("a");
  EXPECT_TRUE(s.enqueue(job("a")));
}

TEST(Enqueue, ZeroPerOwnerCapMeansUnlimited) {
  FarmScheduler s;  // default per_owner_cap = 0
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(s.enqueue(job("a")));
  EXPECT_EQ(s.pending(), 100u);
}

TEST(Pick, FifoTakesOldestRunnable) {
  SchedulerConfig cfg;
  cfg.policy = FarmPolicy::kFifo;
  FarmScheduler s(cfg);
  const u64 a = *s.enqueue(job("a", 4096));
  const u64 b = *s.enqueue(job("b", 1024));
  // b matches the node's key, but FIFO ignores affinity entirely.
  const auto picked = s.pick(kBase);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, a);
  EXPECT_EQ(s.pick(kBase)->id, b);
}

TEST(Pick, AffinityPrefersMatchingConfigInWindow) {
  FarmScheduler s;
  ASSERT_TRUE(s.enqueue(job("a", 4096)));
  const u64 b = *s.enqueue(job("b", 1024));
  const auto picked = s.pick(kBase);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, b);  // jumped the non-matching job
  EXPECT_EQ(s.stats().affinity_hits, 1u);
}

TEST(Pick, OwnerSerialized) {
  FarmScheduler s;
  const u64 first = *s.enqueue(job("alice", 1024));
  ASSERT_TRUE(s.enqueue(job("alice", 1024)));
  ASSERT_EQ(s.pick(kBase)->id, first);
  // alice has a job in flight: her second job is not runnable, and no
  // other owner is queued.
  EXPECT_FALSE(s.pick(kBase).has_value());
  s.complete("alice");
  EXPECT_TRUE(s.pick(kBase).has_value());
}

TEST(Pick, AffinityNeverReordersWithinAnOwner) {
  FarmScheduler s;
  // alice's older job does NOT match the node; her younger one does.  The
  // younger job must not jump its sibling, no matter how good the match.
  const u64 older = *s.enqueue(job("alice", 4096));
  ASSERT_TRUE(s.enqueue(job("alice", 1024)));
  const u64 other = *s.enqueue(job("bob", 1024));
  const auto picked = s.pick(kBase);
  ASSERT_TRUE(picked.has_value());
  // bob's matching job may jump ahead, but never alice's younger one.
  EXPECT_EQ(picked->id, other);
  const auto next = s.pick(kBase);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->id, older);
}

TEST(Pick, AgedJobGoesNextDespiteAffinity) {
  SchedulerConfig cfg;
  cfg.max_skips = 2;
  FarmScheduler s(cfg);
  const u64 cold = *s.enqueue(job("cold", 4096));
  // Two matching picks skip the cold job twice...
  ASSERT_TRUE(s.enqueue(job("h1", 1024)));
  ASSERT_TRUE(s.enqueue(job("h2", 1024)));
  ASSERT_TRUE(s.enqueue(job("h3", 1024)));
  EXPECT_NE(s.pick(kBase)->id, cold);
  EXPECT_NE(s.pick(kBase)->id, cold);
  // ...so the third pick must take it, even though another match waits.
  const auto forced = s.pick(kBase);
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->id, cold);
  EXPECT_EQ(s.stats().aged_picks, 1u);
}

TEST(Pick, MatchBeyondWindowIsNotTaken) {
  SchedulerConfig cfg;
  cfg.affinity_window = 2;
  FarmScheduler s(cfg);
  const u64 oldest = *s.enqueue(job("a", 4096));
  ASSERT_TRUE(s.enqueue(job("b", 8192)));
  ASSERT_TRUE(s.enqueue(job("c", 1024)));  // matches, 2 runnable jobs ahead
  const auto picked = s.pick(kBase);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(picked->id, oldest);
}

TEST(Requeue, RetryIsNextAndOwnerFreed) {
  FarmScheduler s;
  const u64 failed = *s.enqueue(job("alice", 1024));
  ASSERT_TRUE(s.enqueue(job("bob", 1024)));
  auto picked = s.pick(kBase);
  ASSERT_TRUE(picked.has_value());
  ASSERT_EQ(picked->id, failed);
  EXPECT_EQ(s.in_flight(), 1u);
  picked->attempts = 1;
  picked->node_history.push_back(0);
  s.requeue(std::move(*picked));
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_EQ(s.stats().requeues, 1u);
  // Front of the queue again and alice no longer busy: the retry goes
  // next, ahead of bob, scars intact.
  const auto retry = s.pick(kBase);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->id, failed);
  EXPECT_EQ(retry->attempts, 1u);
  ASSERT_EQ(retry->node_history.size(), 1u);
}

TEST(Requeue, RetryAvoidsTheFailingNodeWhenOthersExist) {
  FarmScheduler s;
  const u64 failed = *s.enqueue(job("alice", 1024));
  auto picked = s.pick(kBase, 0, true);
  ASSERT_TRUE(picked.has_value());
  picked->attempts = 1;
  picked->node_history.push_back(0);
  s.requeue(std::move(*picked));
  // Node 0 with healthy siblings: the job it failed is invisible...
  EXPECT_FALSE(s.pick(kBase, 0, true).has_value());
  // ...and its owner's younger jobs stay blocked behind it (FIFO).
  ASSERT_TRUE(s.enqueue(job("alice", 1024)));
  EXPECT_FALSE(s.pick(kBase, 0, true).has_value());
  // Node 1 takes it — that's the migration.
  const auto moved = s.pick(kBase, 1, true);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->id, failed);
}

TEST(Requeue, LastHealthyNodeRetriesItsOwnFailure) {
  FarmScheduler s;
  const u64 failed = *s.enqueue(job("alice", 1024));
  auto picked = s.pick(kBase, 0, false);
  ASSERT_TRUE(picked.has_value());
  picked->attempts = 1;
  picked->node_history.push_back(0);
  s.requeue(std::move(*picked));
  // No other healthy node: avoidance yields, liveness wins.
  const auto retry = s.pick(kBase, 0, false);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->id, failed);
}

TEST(Plan, PreviewsWithoutMutating) {
  FarmScheduler s;
  ASSERT_TRUE(s.enqueue(job("a", 4096)));
  ASSERT_TRUE(s.enqueue(job("b", 1024)));
  ASSERT_TRUE(s.enqueue(job("a", 1024)));
  const std::vector<u64> order = s.plan(kBase);
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(s.pending(), 3u);  // untouched
  EXPECT_EQ(s.stats().picks, 0u);
  // And the preview is exactly what serial picks produce.
  std::vector<u64> executed;
  std::string key = kBase;
  while (auto j = s.pick(key)) {
    executed.push_back(j->id);
    key = j->config.key();
    s.complete(j->owner);
  }
  EXPECT_EQ(order, executed);
}

TEST(Plan, SkipsOwnersAlreadyInFlight) {
  FarmScheduler s;
  const u64 first = *s.enqueue(job("alice", 1024));
  ASSERT_TRUE(s.enqueue(job("alice", 1024)));
  ASSERT_TRUE(s.enqueue(job("bob", 4096)));
  ASSERT_EQ(s.pick(kBase)->id, first);
  // alice is busy: a plan from here can only start with bob.
  const std::vector<u64> order = s.plan(kBase);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.size(), 1u);  // alice's job needs a complete() first
}

}  // namespace
}  // namespace la::farm
