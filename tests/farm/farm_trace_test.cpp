// Fleet-wide causal tracing through the farm: every submitted job gets a
// trace identity, every phase lands in the shared span log, the Chrome
// export keeps one lane per node, and per-phase latencies fold into the
// fleet report.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "farm/farm.hpp"
#include "farm/workload.hpp"

namespace la::farm {
namespace {

TEST(FarmTrace, EveryJobCarriesADistinctTraceThroughItsPhases) {
  FarmConfig fc;
  fc.nodes = 2;
  fc.tracing = true;
  LiquidFarm f(fc);

  WorkloadConfig wc;
  wc.seed = 21;
  WorkloadGenerator gen(wc);
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(f.submit(gen.next().job));
  f.drain();

  std::set<u64> traces;
  while (auto out = f.try_pop_result()) {
    ASSERT_TRUE(out->result.ok) << out->result.error;
    EXPECT_NE(out->trace_id, 0u);
    traces.insert(out->trace_id);
  }
  EXPECT_EQ(traces.size(), 12u);  // one trace per job, no sharing

  // Each trace's spans cover the job's life: the wait in the scheduler,
  // the run itself, and the root "job" span — all under one trace_id.
  std::map<u64, std::set<std::string>> phases;
  for (const auto& s : f.span_log().spans()) {
    ASSERT_NE(s.trace_id, 0u);
    phases[s.trace_id].insert(s.name);
  }
  EXPECT_EQ(phases.size(), 12u);
  for (const auto& [id, names] : phases) {
    EXPECT_EQ(names.count("queue_wait"), 1u) << "trace " << id;
    EXPECT_EQ(names.count("run"), 1u) << "trace " << id;
    EXPECT_EQ(names.count("job"), 1u) << "trace " << id;
  }
}

TEST(FarmTrace, ReportFoldsPerPhaseLatencyHistograms) {
  FarmConfig fc;
  fc.nodes = 2;
  fc.tracing = true;
  LiquidFarm f(fc);

  WorkloadConfig wc;
  wc.seed = 33;
  WorkloadGenerator gen(wc);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.submit(gen.next().job));
  f.drain();
  const FarmReport rep = f.report();

  ASSERT_EQ(rep.fleet.histograms.count("farm.phase.job_us"), 1u);
  EXPECT_EQ(rep.fleet.histograms.at("farm.phase.job_us").count, 10u);
  ASSERT_EQ(rep.fleet.histograms.count("farm.phase.queue_wait_us"), 1u);
  // Percentile gauges ride along and are ordered.
  const double p50 = rep.fleet.value_or("farm.phase.job.p50_us");
  const double p95 = rep.fleet.value_or("farm.phase.job.p95_us");
  const double p99 = rep.fleet.value_or("farm.phase.job.p99_us");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(FarmTrace, EightNodeChromeExportHasOneLanePerNode) {
  FarmConfig fc;
  fc.nodes = 8;
  fc.tracing = true;
  LiquidFarm f(fc);

  WorkloadConfig wc;
  wc.seed = 44;
  wc.configs = 16;  // enough images that all eight nodes see work
  WorkloadGenerator gen(wc);
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(f.submit(gen.next().job));
  f.drain();

  const std::string j = f.span_log().to_chrome_json();
  for (std::size_t pid = 1; pid <= 8; ++pid) {
    const std::string lane = "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                             std::to_string(pid);
    EXPECT_NE(j.find(lane), std::string::npos) << "missing lane pid " << pid;
  }
  EXPECT_NE(j.find("\"node 0\""), std::string::npos);
  EXPECT_NE(j.find("\"node 7\""), std::string::npos);
}

TEST(FarmTrace, TracingOffMintsNothing) {
  FarmConfig fc;
  fc.nodes = 1;
  LiquidFarm f(fc);
  WorkloadGenerator gen;
  ASSERT_TRUE(f.submit(gen.next().job));
  f.drain();
  const auto out = f.try_pop_result();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->trace_id, 0u);
  EXPECT_EQ(f.span_log().size(), 0u);
}

}  // namespace
}  // namespace la::farm
