// LiquidFarm integration tests: real nodes, real worker threads, the
// shared bitfile cache, and the fleet report.
#include "farm/farm.hpp"

#include <gtest/gtest.h>

#include <map>

#include "farm/workload.hpp"

namespace la::farm {
namespace {

TEST(Farm, RunsASeededBatchExactlyOnceWithCorrectResults) {
  FarmConfig fc;
  fc.nodes = 2;
  LiquidFarm f(fc);

  WorkloadConfig wc;
  wc.seed = 42;
  WorkloadGenerator gen(wc);

  std::map<u64, u32> expected;
  for (int i = 0; i < 24; ++i) {
    GeneratedJob g = gen.next();
    const Result<u64> id = f.submit(g.job);
    ASSERT_TRUE(id) << id.error().to_string();
    expected[*id] = g.expected;
  }
  f.drain();

  std::map<u64, int> completions;
  while (auto out = f.try_pop_result()) {
    ++completions[out->id];
    ASSERT_TRUE(out->result.ok) << out->result.error;
    ASSERT_FALSE(out->result.readback.empty());
    EXPECT_EQ(out->result.readback[0], expected.at(out->id));
    EXPECT_LT(out->node, 2u);
  }
  EXPECT_EQ(completions.size(), expected.size());
  for (const auto& [id, n] : completions) EXPECT_EQ(n, 1) << "job " << id;
}

TEST(Farm, ReportAggregatesTheFleet) {
  FarmConfig fc;
  fc.nodes = 3;
  LiquidFarm f(fc);

  WorkloadConfig wc;
  wc.seed = 5;
  WorkloadGenerator gen(wc);
  for (int i = 0; i < 18; ++i) {
    GeneratedJob g = gen.next();
    ASSERT_TRUE(f.submit(g.job));
  }
  f.drain();
  FarmReport rep = f.report();

  EXPECT_EQ(rep.jobs, 18u);
  EXPECT_EQ(rep.failures, 0u);
  ASSERT_EQ(rep.nodes.size(), 3u);
  u64 node_jobs = 0;
  double max_busy = 0.0, sum_busy = 0.0;
  for (const auto& n : rep.nodes) {
    node_jobs += n.jobs;
    max_busy = std::max(max_busy, n.busy_seconds);
    sum_busy += n.busy_seconds;
  }
  EXPECT_EQ(node_jobs, 18u);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, max_busy);
  EXPECT_DOUBLE_EQ(rep.total_busy_seconds, sum_busy);
  EXPECT_GT(rep.jobs_per_second, 0.0);
  EXPECT_GT(rep.p50_wall_seconds, 0.0);
  EXPECT_LE(rep.p50_wall_seconds, rep.p95_wall_seconds);
  EXPECT_LE(rep.p95_wall_seconds, rep.p99_wall_seconds);

  // The merged snapshot carries the farm.* family and the per-node
  // pipeline counters folded together (18 jobs' worth of instructions).
  EXPECT_EQ(rep.fleet.value_u64("farm.jobs"), 18u);
  EXPECT_EQ(rep.fleet.value_u64("farm.nodes"), 3u);
  EXPECT_TRUE(rep.fleet.has("reconfig_cache.size"));
  EXPECT_GT(rep.fleet.value_or("cpu.instructions", 0.0), 0.0);
  EXPECT_FALSE(rep.text().empty());
}

TEST(Farm, PregenerateMakesEveryJobABitfileHit) {
  FarmConfig fc;
  fc.nodes = 2;
  LiquidFarm f(fc);

  WorkloadConfig wc;
  wc.seed = 9;
  WorkloadGenerator gen(wc);
  liquid::ConfigSpace space;
  space.dcache_sizes.clear();
  space.mul_latencies.clear();
  for (const liquid::ArchConfig& c : gen.catalog()) {
    space.dcache_sizes.push_back(c.dcache_bytes);
    space.mul_latencies.push_back(c.mul_latency);
  }
  EXPECT_GT(f.pregenerate(space), 0.0);  // synthesis hours, offline

  for (int i = 0; i < 12; ++i) ASSERT_TRUE(f.submit(gen.next().job));
  f.drain();
  const FarmReport rep = f.report();
  EXPECT_EQ(rep.bitfile_hits, 12u);  // nothing synthesized online
}

TEST(Farm, SaturationRejectsWithTypedError) {
  FarmConfig fc;
  fc.nodes = 1;
  fc.autostart = false;  // workers parked: the queue can only fill
  fc.scheduler.queue_capacity = 2;
  LiquidFarm f(fc);

  WorkloadGenerator gen;
  ASSERT_TRUE(f.submit(gen.next().job));
  ASSERT_TRUE(f.submit(gen.next().job));
  const Result<u64> r = f.submit(gen.next().job);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kSaturated);

  f.drain();  // drain() releases the gate and finishes the two admitted
  const FarmReport rep = f.report();
  EXPECT_EQ(rep.jobs, 2u);
  EXPECT_EQ(rep.rejected, 1u);
}

TEST(Farm, SubmitAfterShutdownIsRefused) {
  LiquidFarm f(FarmConfig{.nodes = 1});
  f.shutdown();
  WorkloadGenerator gen;
  const Result<u64> r = f.submit(gen.next().job);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, FarmErrorKind::kShuttingDown);
}

}  // namespace
}  // namespace la::farm
