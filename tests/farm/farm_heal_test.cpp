// Self-healing farm tests: drain-on-fault (a wedged node's job is
// requeued and retried elsewhere while the node is quarantined and
// RESTART-probed back to health), retry exhaustion (a deterministically
// failing job is delivered as a failure after max_job_retries), and
// warm-start pools (a repeated (architecture, program) pair restores a
// post-LOAD snapshot instead of re-running the chunked network load).
#include "farm/farm.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "fault/injector.hpp"
#include "farm/workload.hpp"
#include "sasm/assembler.hpp"

namespace la::farm {
namespace {

TEST(FarmHeal, WedgedNodeDrainsRetriesAndRecovers) {
  FarmConfig fc;
  fc.nodes = 2;
  fc.autostart = false;  // wire the fault before any worker touches a node
  fc.node_template.watchdog_budget = 20'000;
  fc.max_job_retries = 2;
  LiquidFarm f(fc);

  // Wedge node 0 permanently (until reset) early in its first job; only
  // the watchdog + drain-on-fault machinery can save that job.
  fault::FaultPlan plan;
  plan.events.push_back({{fault::TriggerKind::kCycle, 3'000},
                         {fault::FaultSite::kCpuWedge, 0, 1, 1, 0}});
  fault::FaultInjector inj(f.node_for_setup(0), plan);

  WorkloadConfig wc;
  wc.seed = 77;
  wc.owners = 4;
  WorkloadGenerator gen(wc);
  std::map<u64, u32> expected;
  std::map<u64, std::string> owners;
  for (int i = 0; i < 16; ++i) {
    GeneratedJob g = gen.next();
    const std::string owner = g.job.owner;
    const Result<u64> id = f.submit(std::move(g.job));
    ASSERT_TRUE(id) << id.error().to_string();
    expected[*id] = g.expected;
    owners[*id] = owner;
  }
  f.start();
  f.drain();

  std::map<u64, int> completions;
  std::map<std::string, u64> last_id_per_owner;
  u64 extra_attempts = 0;
  while (auto out = f.try_pop_result()) {
    ++completions[out->id];
    ASSERT_TRUE(out->result.ok)
        << "job " << out->id << ": " << out->result.error;
    ASSERT_FALSE(out->result.readback.empty());
    EXPECT_EQ(out->result.readback[0], expected.at(out->id))
        << "job " << out->id << " returned a wrong result after healing";
    // The audit trail: one node per execution, last entry = final node.
    ASSERT_EQ(out->node_history.size(), out->attempts);
    EXPECT_EQ(out->node_history.back(), out->node);
    extra_attempts += out->attempts - 1;
    // Per-owner FIFO survives requeueing: results of one owner are
    // delivered in submission (= id) order.
    const std::string& owner = owners.at(out->id);
    auto [it, fresh] = last_id_per_owner.try_emplace(owner, out->id);
    if (!fresh) {
      EXPECT_LT(it->second, out->id) << "owner " << owner << " reordered";
      it->second = out->id;
    }
  }
  EXPECT_EQ(completions.size(), expected.size());
  for (const auto& [id, n] : completions) {
    EXPECT_EQ(n, 1) << "job " << id << " delivered " << n << " times";
  }

  const FarmReport rep = f.report();
  EXPECT_GE(rep.retries, 1u) << "the wedge never caused a retry";
  EXPECT_EQ(rep.retries, extra_attempts);
  EXPECT_GE(rep.migrations, 1u)
      << "the retried job should have drained to the healthy node";
  EXPECT_GE(rep.nodes.at(0).quarantines, 1u);
  for (const auto& n : rep.nodes) {
    EXPECT_EQ(n.health, NodeHealth::kHealthy) << "node " << n.index;
  }
  EXPECT_EQ(rep.fleet.value_u64("farm.retries"), rep.retries);
  EXPECT_EQ(rep.fleet.value_u64("farm.migrations"), rep.migrations);
}

TEST(FarmHeal, RetriesExhaustedDeliverTheFailureAndTheNodeHeals) {
  FarmConfig fc;
  fc.nodes = 1;
  fc.max_job_retries = 1;
  fc.node_template.watchdog_budget = 15'000;
  LiquidFarm f(fc);

  // A program that spins forever never kicks the watchdog: every attempt
  // trips it deterministically — node fault, retry, same story, exhausted.
  const sasm::Image spin = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
  loop:
      ba loop
      nop
  )");
  FarmJob bad;
  bad.owner = "victim";
  bad.config = liquid::ArchConfig::paper_baseline();
  bad.program = spin;
  const Result<u64> bad_id = f.submit(std::move(bad));
  ASSERT_TRUE(bad_id);
  f.drain();

  auto out = f.try_pop_result();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->id, *bad_id);
  EXPECT_FALSE(out->result.ok);
  EXPECT_TRUE(out->result.node_fault);
  EXPECT_EQ(out->attempts, 2u);  // initial + max_job_retries
  EXPECT_EQ(out->node_history, (std::vector<std::size_t>{0, 0}));

  // The node healed behind the failure: an honest job runs fine.
  WorkloadGenerator gen(WorkloadConfig{});
  GeneratedJob g = gen.next();
  const u32 want = g.expected;
  ASSERT_TRUE(f.submit(std::move(g.job)));
  f.drain();
  auto good = f.try_pop_result();
  ASSERT_TRUE(good.has_value());
  ASSERT_TRUE(good->result.ok) << good->result.error;
  EXPECT_EQ(good->attempts, 1u);
  EXPECT_EQ(good->result.readback[0], want);

  const FarmReport rep = f.report();
  EXPECT_EQ(rep.retries, 1u);
  EXPECT_EQ(rep.failures, 2u);  // both executions of the bad job
  EXPECT_GE(rep.nodes.at(0).quarantines, 2u);
  EXPECT_EQ(rep.nodes.at(0).health, NodeHealth::kHealthy);
}

TEST(FarmHeal, RepeatedJobWarmStartsFromThePool) {
  FarmConfig fc;
  fc.nodes = 1;
  LiquidFarm f(fc);

  // The same job twice: identical (architecture, program) pair, so the
  // second execution is guaranteed a program-pool hit.
  WorkloadGenerator gen(WorkloadConfig{});
  const GeneratedJob g1 = gen.next();
  ASSERT_TRUE(f.submit(g1.job));
  ASSERT_TRUE(f.submit(g1.job));
  f.drain();

  auto first = f.try_pop_result();
  auto second = f.try_pop_result();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(first->result.ok) << first->result.error;
  ASSERT_TRUE(second->result.ok) << second->result.error;
  // Same program, same architecture: the second execution restores the
  // post-LOAD snapshot the first one donated — and computes the same
  // answer.
  EXPECT_FALSE(first->result.warm_start);
  EXPECT_TRUE(second->result.warm_start);
  EXPECT_EQ(first->result.readback, second->result.readback);
  EXPECT_EQ(first->result.readback[0], g1.expected);

  const FarmReport rep = f.report();
  EXPECT_GE(rep.warm_starts, 1u);
  EXPECT_EQ(rep.fleet.value_u64("farm.warm_starts"), rep.warm_starts);
}

TEST(FarmHeal, WarmStartOffRunsEveryLoad) {
  FarmConfig fc;
  fc.nodes = 1;
  fc.warm_start = false;
  LiquidFarm f(fc);

  WorkloadGenerator gen(WorkloadConfig{});
  const GeneratedJob g = gen.next();
  ASSERT_TRUE(f.submit(g.job));
  ASSERT_TRUE(f.submit(g.job));
  f.drain();
  const FarmReport rep = f.report();
  EXPECT_EQ(rep.warm_starts, 0u);
  while (auto out = f.try_pop_result()) {
    EXPECT_TRUE(out->result.ok);
    EXPECT_FALSE(out->result.warm_start);
  }
}

}  // namespace
}  // namespace la::farm
