// Farm stress: 8 worker threads plus 2 submitter threads hammering one
// farm with 600 jobs, then an exactly-once audit.  This is the test the
// CI sanitize job runs under TSan (-DLA_SANITIZE=thread): any lock
// missing from the farm's single-mutex discipline shows up here as a
// data-race report, and any scheduler accounting bug as a lost or
// duplicated job.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "farm/farm.hpp"
#include "farm/workload.hpp"

namespace la::farm {
namespace {

TEST(FarmStress, EveryJobCompletesExactlyOnceAcross8Nodes) {
  constexpr std::size_t kNodes = 8;
  constexpr u64 kJobsPerSubmitter = 300;
  constexpr int kSubmitters = 2;

  FarmConfig fc;
  fc.nodes = kNodes;
  fc.scheduler.queue_capacity = 64;  // small queue: backpressure for real
  LiquidFarm f(fc);

  std::mutex mu;
  std::map<u64, u32> expected;  // id -> result word (guarded by mu)
  std::atomic<u64> submitted{0};

  // Concurrent submitters with distinct seeds; each retries through
  // saturation by absorbing a completed job first, so submission and
  // result consumption interleave from multiple threads at once.
  std::map<u64, int> completions;
  std::map<u64, u32> readback;
  auto absorb = [&](const FarmJobOutcome& out) {
    const std::lock_guard<std::mutex> lk(mu);
    ++completions[out.id];
    readback[out.id] =
        out.result.ok && !out.result.readback.empty()
            ? out.result.readback[0]
            : ~u32{0};
  };
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      WorkloadConfig wc;
      wc.seed = 1000 + static_cast<u64>(t);
      wc.owners = 12;
      WorkloadGenerator gen(wc);
      for (u64 i = 0; i < kJobsPerSubmitter; ++i) {
        GeneratedJob g = gen.next();
        for (;;) {
          const Result<u64> id = f.submit(g.job);
          if (id) {
            {
              const std::lock_guard<std::mutex> lk(mu);
              expected[*id] = g.expected;
            }
            submitted.fetch_add(1);
            break;
          }
          ASSERT_EQ(id.error().kind, FarmErrorKind::kSaturated);
          if (auto out = f.pop_result()) absorb(*out);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  f.drain();
  while (auto out = f.try_pop_result()) absorb(*out);

  const u64 total = kJobsPerSubmitter * kSubmitters;
  ASSERT_EQ(submitted.load(), total);
  EXPECT_EQ(completions.size(), total) << "lost jobs";
  for (const auto& [id, n] : completions) {
    ASSERT_EQ(n, 1) << "job " << id << " completed " << n << " times";
    ASSERT_EQ(readback.at(id), expected.at(id)) << "job " << id;
  }

  const FarmReport rep = f.report();
  EXPECT_EQ(rep.jobs, total);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.fleet.value_u64("farm.jobs"), total);
}

}  // namespace
}  // namespace la::farm
