! SDRAM memory test: three walking patterns over a 16 KB window behind the
! FPX SDRAM controller/adapter (address-in-address, complement, checker).
! Result: `errors` (0 on pass), `words_tested`.
    .org 0x40000100

BASE = 0x60000000
WORDS = 4096

_start:
    mov 0, %g6             ! error count
    ! --- pass 1: a[i] = address ---
    set BASE, %o0
    set WORDS, %o1
w1: st %o0, [%o0]
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne w1
    nop
    set BASE, %o0
    set WORDS, %o1
r1: ld [%o0], %o2
    cmp %o2, %o0
    be r1ok
    nop
    add %g6, 1, %g6
r1ok:
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne r1
    nop
    ! --- pass 2: a[i] = ~address ---
    set BASE, %o0
    set WORDS, %o1
w2: not %o0, %o3
    st %o3, [%o0]
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne w2
    nop
    set BASE, %o0
    set WORDS, %o1
r2: ld [%o0], %o2
    not %o0, %o3
    cmp %o2, %o3
    be r2ok
    nop
    add %g6, 1, %g6
r2ok:
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne r2
    nop
    ! --- pass 3: checkerboard ---
    set 0xa5a55a5a, %g5
    set BASE, %o0
    set WORDS, %o1
w3: st %g5, [%o0]
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne w3
    nop
    set BASE, %o0
    set WORDS, %o1
r3: ld [%o0], %o2
    cmp %o2, %g5
    be r3ok
    nop
    add %g6, 1, %g6
r3ok:
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne r3
    nop
    ! --- report ---
    set errors, %g1
    st %g6, [%g1]
    set WORDS * 3, %g2
    set words_tested, %g3
    st %g2, [%g3]
    jmp 0x40
    nop
    .align 4
errors:
    .skip 4
words_tested:
    .skip 4
