! RFC 1071 Internet checksum over NPKTS back-to-back packets of
! PKT_BYTES bytes each — the classic packet-ingress kernel: sequential
! halfword loads, an add-with-fold reduction, one result store per
! packet.  Parameterized via .equ so cache-geometry sweeps can scale the
! working set (PKT_BYTES must stay even and NPKTS*PKT_BYTES <= 256).
!
! Readback: `results` (NPKTS one's-complement sums), `cycles`,
! `done_flag`.
    .equ NPKTS, 4
    .equ PKT_BYTES, 64
    .org 0x40000100
_start:
    set 0x80000500, %g1
    mov 1, %g2
    st %g2, [%g1]          ! start the cycle counter
    set data, %o0          ! packet cursor
    set results, %l0       ! result cursor
    set NPKTS, %l1         ! packets remaining
    set 0xffff, %g3        ! halfword mask
pktloop:
    mov 0, %o2             ! sum
    set PKT_BYTES, %o1
hwloop:
    lduh [%o0], %o3
    add %o2, %o3, %o2
    add %o0, 2, %o0
    subcc %o1, 2, %o1
    bne hwloop
    nop
    srl %o2, 16, %o3       ! fold the carries back in (twice is enough
    and %o2, %g3, %o2      ! for a <= 64 KB packet)
    add %o2, %o3, %o2
    srl %o2, 16, %o3
    and %o2, %g3, %o2
    add %o2, %o3, %o2
    not %o2                ! final inversion
    and %o2, %g3, %o2
    st %o2, [%l0]
    add %l0, 4, %l0
    subcc %l1, 1, %l1
    bne pktloop
    nop
    st %g0, [%g1]          ! stop the counter
    ld [%g1 + 4], %o4
    set cycles, %g4
    st %o4, [%g4]
    set done_flag, %g4
    mov 1, %g2
    st %g2, [%g4]
    jmp 0x40
    nop
    .align 4
cycles:
    .skip 4
done_flag:
    .skip 4
results:
    .skip NPKTS * 4
    .align 4
data:                      ! 256 bytes of header-ish traffic
    .word 0x45000054, 0x1c468000, 0x40067ac3, 0x0a010203
    .word 0xc0a80101, 0x00500c38, 0x9f1a0d21, 0x00000000
    .word 0x50180200, 0x91fc0000, 0x48454c4c, 0x4f2c2057
    .word 0x4f524c44, 0x21212121, 0xdeadbeef, 0xcafebabe
    .word 0x45000034, 0xb1e24000, 0x3a11c8d4, 0x0a7f0001
    .word 0xe0000001, 0x14e914e9, 0x002041aa, 0x00000000
    .word 0x61626364, 0x65666768, 0x696a6b6c, 0x6d6e6f70
    .word 0x71727374, 0x75767778, 0x797a3031, 0x32333435
    .word 0x45c00028, 0x00004000, 0xff0160ed, 0xc0a80001
    .word 0xc0a800fe, 0x08007bff, 0x00010001, 0x55aa55aa
    .word 0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff
    .word 0x13579bdf, 0x2468ace0, 0xfdb97531, 0x0eca8642
    .word 0x46000040, 0x12345678, 0x06069999, 0x0a010204
    .word 0x0a010205, 0x1b581b58, 0x00180000, 0xf0f0f0f0
    .word 0x0f0f0f0f, 0xa5a5a5a5, 0x5a5a5a5a, 0x3c3c3c3c
    .word 0xc3c3c3c3, 0x7e7e7e7e, 0x81818181, 0xffff0001
