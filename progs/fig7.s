! The paper's Fig 7 kernel, exactly as the evaluation runs it:
!   for (i = 0; i < 1000000; i = i + 32) { address = i % 1024; x = count[address]; }
! The hardware cycle counter brackets the loop; the measurement lands in
! `cycles` for readback ("lsim --sweep --read cycles progs/fig7.s").
    .org 0x40000100
_start:
    set 0x80000500, %g1    ! cycle counter device
    mov 1, %g2
    st %g2, [%g1]          ! start counting
    set count, %o0
    mov 0, %o1             ! i
    set 1000000, %o2
loop:
    and %o1, 1023, %o3     ! address = i % 1024
    sll %o3, 2, %o3        ! int indexing
    ld [%o0 + %o3], %o4    ! x = count[address]
    add %o1, 32, %o1
    cmp %o1, %o2
    bl loop
    nop
    st %g0, [%g1]          ! stop counting
    ld [%g1 + 4], %o5
    set cycles, %g3
    st %o5, [%g3]
    jmp 0x40               ! back to the boot ROM polling loop
    nop
    .align 4
cycles:
    .skip 4
    .align 32
count:
    .skip 4096
