! Recursive quicksort (Lomuto partition) over 64 unsigned words.
! Exercises the full call/window machinery: assemble together with the
! runtime library (lsim --runtime progs/quicksort.s), which provides
! rt_init and the window overflow/underflow handlers.
!
! Readback: `data` (64 sorted words) and `done_flag` (1 when finished).
    .org 0x40000100
_start:
    call rt_init
    nop
    set data, %o0          ! lo = &data[0]
    set data + 252, %o1    ! hi = &data[63]
    call qsort
    nop
    set done_flag, %g1
    mov 1, %g2
    st %g2, [%g1]
    jmp 0x40
    nop

! void qsort(word* lo, word* hi)  — inclusive word addresses
qsort:
    save %sp, -96, %sp
    cmp %i0, %i1
    bgeu qdone             ! lo >= hi: nothing to sort
    nop
    ld [%i1], %l0          ! pivot = *hi
    mov %i0, %l1           ! i (store slot)
    mov %i0, %l2           ! j (scan)
ploop:
    cmp %l2, %i1
    bgeu pdone
    nop
    ld [%l2], %l3
    cmp %l3, %l0
    bgu pnext              ! keep scanning when a[j] > pivot (unsigned)
    nop
    ld [%l1], %l4          ! swap a[i] <-> a[j]
    st %l3, [%l1]
    st %l4, [%l2]
    add %l1, 4, %l1
pnext:
    add %l2, 4, %l2
    ba ploop
    nop
pdone:
    ld [%l1], %l4          ! swap a[i] <-> *hi (pivot into place)
    ld [%i1], %l5
    st %l5, [%l1]
    st %l4, [%i1]
    cmp %l1, %i0           ! left part: [lo, i-1]
    bleu skipleft
    nop
    mov %i0, %o0
    sub %l1, 4, %o1
    call qsort
    nop
skipleft:
    add %l1, 4, %o0        ! right part: [i+1, hi]
    mov %i1, %o1
    call qsort
    nop
qdone:
    ret
    restore

    .align 4
done_flag:
    .word 0
    .align 4
data:                      ! 64 words, adversarially unsorted
    .word 0xdeadbeef, 17, 0xffffffff, 3, 92, 0x80000000, 41, 7
    .word 1000000, 0, 55, 55, 55, 2, 999, 123456
    .word 31, 30, 29, 28, 27, 26, 25, 24
    .word 1, 2, 3, 4, 5, 6, 7, 8
    .word 0xcafebabe, 0x12345678, 0x0badf00d, 77, 77, 13, 42, 9
    .word 501, 502, 500, 499, 498, 0x7fffffff, 11, 64
    .word 1024, 512, 256, 128, 4096, 2048, 8192, 16384
    .word 6, 66, 666, 6666, 66666, 666666, 6666666, 66666666
