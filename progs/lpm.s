! Longest-prefix-match route lookup: for each query address, scan a
! routing table sorted by descending prefix length and take the first
! entry whose (addr & mask) == prefix — the inner loop of a software
! router's forwarding path (pointer-chasing loads + compare/branch).
! Table entries are 3 words: prefix, mask, nexthop.  Unmatched queries
! fall through to nexthop 0.
!
! Readback: `results` (NQUERIES nexthop ids), `cycles`, `done_flag`.
    .equ NROUTES, 6
    .equ NQUERIES, 8
    .org 0x40000100
_start:
    set 0x80000500, %g1
    mov 1, %g2
    st %g2, [%g1]          ! start the cycle counter
    set queries, %l0
    set results, %l1
    set NQUERIES, %l2
qloop:
    ld [%l0], %o0          ! the address to route
    set table, %o1
    set NROUTES, %o2
    mov 0, %o4             ! nexthop = default 0
rloop:
    ld [%o1], %o3          ! prefix
    ld [%o1 + 4], %o5      ! mask
    and %o0, %o5, %g3
    cmp %g3, %o3
    bne rnext
    nop
    ld [%o1 + 8], %o4      ! longest match (table is sorted): done
    ba rdone
    nop
rnext:
    add %o1, 12, %o1
    subcc %o2, 1, %o2
    bne rloop
    nop
rdone:
    st %o4, [%l1]
    add %l1, 4, %l1
    add %l0, 4, %l0
    subcc %l2, 1, %l2
    bne qloop
    nop
    st %g0, [%g1]          ! stop the counter
    ld [%g1 + 4], %o4
    set cycles, %g4
    st %o4, [%g4]
    set done_flag, %g4
    mov 1, %g2
    st %g2, [%g4]
    jmp 0x40
    nop
    .align 4
cycles:
    .skip 4
done_flag:
    .skip 4
results:
    .skip NQUERIES * 4
    .align 4
table:                     ! prefix, mask, nexthop — longest prefix first
    .word 0x0a010200, 0xffffff00, 3    ! 10.1.2.0/24
    .word 0xc0a80100, 0xffffff00, 4    ! 192.168.1.0/24
    .word 0x0a010000, 0xffff0000, 5    ! 10.1.0.0/16
    .word 0xc0a80000, 0xffff0000, 6    ! 192.168.0.0/16
    .word 0x0a000000, 0xff000000, 7    ! 10.0.0.0/8
    .word 0x00000000, 0x00000000, 1    ! 0.0.0.0/0 catch-all
queries:
    .word 0x0a010203           ! -> 3  (10.1.2.3, /24)
    .word 0x0a01ff01           ! -> 5  (10.1.255.1, /16)
    .word 0x0a7f0001           ! -> 7  (10.127.0.1, /8)
    .word 0xc0a80105           ! -> 4  (192.168.1.5, /24)
    .word 0xc0a8ff01           ! -> 6  (192.168.255.1, /16)
    .word 0x08080808           ! -> 1  (8.8.8.8, default)
    .word 0x0a000001           ! -> 7  (10.0.0.1, /8)
    .word 0xc0a80101           ! -> 4  (192.168.1.1, /24)
