! Bitwise CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a
! 256-byte table.  A dense shift/branch kernel — the opposite personality
! from the Fig 7 memory walker.  Result word: `crc`.
    .org 0x40000100
_start:
    set 0x80000500, %g1
    mov 1, %g2
    st %g2, [%g1]          ! start the cycle counter
    set data, %o0
    set 256, %o1           ! length in bytes
    set 0xffffffff, %o2    ! crc
    set 0xedb88320, %o3    ! polynomial
byteloop:
    ldub [%o0], %o4
    xor %o2, %o4, %o2
    mov 8, %o5
bitloop:
    and %o2, 1, %g3
    srl %o2, 1, %o2
    cmp %g3, 0
    be nosub
    nop
    xor %o2, %o3, %o2
nosub:
    subcc %o5, 1, %o5
    bne bitloop
    nop
    add %o0, 1, %o0
    subcc %o1, 1, %o1
    bne byteloop
    nop
    not %o2                ! final inversion
    st %g0, [%g1]          ! stop the counter
    ld [%g1 + 4], %o5
    set cycles, %g4
    st %o5, [%g4]
    set crc, %g5
    st %o2, [%g5]
    jmp 0x40
    nop
    .align 4
crc:
    .skip 4
cycles:
    .skip 4
    .align 4
data:                      ! 256 bytes: 0, 1, 2, ..., 255
    .word 0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e0f
    .word 0x10111213, 0x14151617, 0x18191a1b, 0x1c1d1e1f
    .word 0x20212223, 0x24252627, 0x28292a2b, 0x2c2d2e2f
    .word 0x30313233, 0x34353637, 0x38393a3b, 0x3c3d3e3f
    .word 0x40414243, 0x44454647, 0x48494a4b, 0x4c4d4e4f
    .word 0x50515253, 0x54555657, 0x58595a5b, 0x5c5d5e5f
    .word 0x60616263, 0x64656667, 0x68696a6b, 0x6c6d6e6f
    .word 0x70717273, 0x74757677, 0x78797a7b, 0x7c7d7e7f
    .word 0x80818283, 0x84858687, 0x88898a8b, 0x8c8d8e8f
    .word 0x90919293, 0x94959697, 0x98999a9b, 0x9c9d9e9f
    .word 0xa0a1a2a3, 0xa4a5a6a7, 0xa8a9aaab, 0xacadaeaf
    .word 0xb0b1b2b3, 0xb4b5b6b7, 0xb8b9babb, 0xbcbdbebf
    .word 0xc0c1c2c3, 0xc4c5c6c7, 0xc8c9cacb, 0xcccdcecf
    .word 0xd0d1d2d3, 0xd4d5d6d7, 0xd8d9dadb, 0xdcdddedf
    .word 0xe0e1e2e3, 0xe4e5e6e7, 0xe8e9eaeb, 0xecedeeef
    .word 0xf0f1f2f3, 0xf4f5f6f7, 0xf8f9fafb, 0xfcfdfeff
