! STREAM-style memory kernels over three STREAM_WORDS-word arrays:
!   copy   c[i] = a[i]
!   scale  b[i] = 3*a[i]          (shift-add: works with has_mul off)
!   add    c[i] = a[i] + b[i]
!   triad  a[i] = b[i] + 3*c[i]
! The canonical bandwidth/cache-geometry sweep kernel: STREAM_WORDS is
! an .equ so a sweep can size the working set (3 arrays) against the
! D-cache.  a[] is initialized in-program (a[i] = 7 + 3i), so the image
! stays small at any size.
!
! Readback: `sum_a` (mod-2^32 sum of a[] after triad), `cycles` (the
! four kernels only, init excluded), `done_flag`.
    .equ STREAM_WORDS, 256
    .org 0x40000100
_start:
    set a, %o0             ! init: a[i] = 7 + 3i
    set STREAM_WORDS, %o1
    mov 7, %o2
initloop:
    st %o2, [%o0]
    add %o2, 3, %o2
    add %o0, 4, %o0
    subcc %o1, 1, %o1
    bne initloop
    nop

    set 0x80000500, %g1
    mov 1, %g2
    st %g2, [%g1]          ! start the cycle counter

    set a, %o0             ! copy: c[i] = a[i]
    set c, %o1
    set STREAM_WORDS, %o2
copyloop:
    ld [%o0], %o3
    st %o3, [%o1]
    add %o0, 4, %o0
    add %o1, 4, %o1
    subcc %o2, 1, %o2
    bne copyloop
    nop

    set a, %o0             ! scale: b[i] = 3*a[i]
    set b, %o1
    set STREAM_WORDS, %o2
scaleloop:
    ld [%o0], %o3
    sll %o3, 1, %o4
    add %o4, %o3, %o3
    st %o3, [%o1]
    add %o0, 4, %o0
    add %o1, 4, %o1
    subcc %o2, 1, %o2
    bne scaleloop
    nop

    set a, %o0             ! add: c[i] = a[i] + b[i]
    set b, %o1
    set c, %o5
    set STREAM_WORDS, %o2
addloop:
    ld [%o0], %o3
    ld [%o1], %o4
    add %o3, %o4, %o3
    st %o3, [%o5]
    add %o0, 4, %o0
    add %o1, 4, %o1
    add %o5, 4, %o5
    subcc %o2, 1, %o2
    bne addloop
    nop

    set b, %o0             ! triad: a[i] = b[i] + 3*c[i]
    set c, %o1
    set a, %o5
    set STREAM_WORDS, %o2
triadloop:
    ld [%o1], %o3
    sll %o3, 1, %o4
    add %o4, %o3, %o3
    ld [%o0], %o4
    add %o3, %o4, %o3
    st %o3, [%o5]
    add %o0, 4, %o0
    add %o1, 4, %o1
    add %o5, 4, %o5
    subcc %o2, 1, %o2
    bne triadloop
    nop

    st %g0, [%g1]          ! stop the counter
    ld [%g1 + 4], %o4
    set cycles, %g4
    st %o4, [%g4]

    set a, %o0             ! sum_a = sum(a[i]) mod 2^32
    set STREAM_WORDS, %o2
    mov 0, %o3
sumloop:
    ld [%o0], %o4
    add %o3, %o4, %o3
    add %o0, 4, %o0
    subcc %o2, 1, %o2
    bne sumloop
    nop
    set sum_a, %g4
    st %o3, [%g4]
    set done_flag, %g4
    mov 1, %g2
    st %g2, [%g4]
    jmp 0x40
    nop
    .align 4
cycles:
    .skip 4
done_flag:
    .skip 4
sum_a:
    .skip 4
    .align 4
a:
    .skip STREAM_WORDS * 4
b:
    .skip STREAM_WORDS * 4
c:
    .skip STREAM_WORDS * 4
