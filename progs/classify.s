! Packet-header classification: each packet record is (src, dst) and
! each rule is (src_mask, src_val, dst_mask, dst_val, rule_id).  The
! first rule (priority order) where both masked fields match wins; no
! match falls through to rule 0 — a miniature firewall/ACL fast path.
!
! Readback: `results` (NPKTS rule ids), `cycles`, `done_flag`.
    .equ NRULES, 4
    .equ NPKTS, 6
    .org 0x40000100
_start:
    set 0x80000500, %g1
    mov 1, %g2
    st %g2, [%g1]          ! start the cycle counter
    set packets, %l0
    set results, %l1
    set NPKTS, %l2
ploop:
    ld [%l0], %o0          ! src
    ld [%l0 + 4], %o1      ! dst
    set rules, %o2
    set NRULES, %o3
    mov 0, %o4             ! rule id = default 0
rloop:
    ld [%o2], %o5          ! src_mask
    and %o0, %o5, %g3
    ld [%o2 + 4], %o5      ! src_val
    cmp %g3, %o5
    bne rnext
    nop
    ld [%o2 + 8], %o5      ! dst_mask
    and %o1, %o5, %g3
    ld [%o2 + 12], %o5     ! dst_val
    cmp %g3, %o5
    bne rnext
    nop
    ld [%o2 + 16], %o4     ! first match wins
    ba rdone
    nop
rnext:
    add %o2, 20, %o2
    subcc %o3, 1, %o3
    bne rloop
    nop
rdone:
    st %o4, [%l1]
    add %l1, 4, %l1
    add %l0, 8, %l0
    subcc %l2, 1, %l2
    bne ploop
    nop
    st %g0, [%g1]          ! stop the counter
    ld [%g1 + 4], %o4
    set cycles, %g4
    st %o4, [%g4]
    set done_flag, %g4
    mov 1, %g2
    st %g2, [%g4]
    jmp 0x40
    nop
    .align 4
cycles:
    .skip 4
done_flag:
    .skip 4
results:
    .skip NPKTS * 4
    .align 4
rules:                     ! src_mask, src_val, dst_mask, dst_val, id
    .word 0xffffffff, 0x0a010203, 0xffffffff, 0xc0a80101, 10
    .word 0xffff0000, 0x0a010000, 0x00000000, 0x00000000, 20
    .word 0x00000000, 0x00000000, 0xffffff00, 0xe0000000, 30
    .word 0xff000000, 0xc0000000, 0xff000000, 0x0a000000, 40
packets:                   ! src, dst
    .word 0x0a010203, 0xc0a80101   ! exact rule        -> 10
    .word 0x0a010209, 0x08080808   ! src /16 rule      -> 20
    .word 0xdeadbeef, 0xe0000042   ! multicast dst     -> 30
    .word 0xc0ffee00, 0x0a000001   ! 192/8 -> 10/8     -> 40
    .word 0x08080808, 0x08040804   ! nothing           -> 0
    .word 0x0a01ffff, 0xe0000099   ! rules 2 and 3: 2  -> 20
