// Figure 8 reproduction: "Array access running time".
//
// The data cache size is varied from 1 KB to 16 KB (line size fixed at
// 32 B, I-cache fixed at 1 KB) while the Fig 7 kernel runs on the Liquid
// processor; a hardware state machine counts the clock cycles.  Each
// configuration is a separate FPGA image selected from the pre-generated
// space; the program is loaded and started over the (simulated) network
// exactly as on the real FPX.
#include <cstdio>

#include "bench_util.hpp"
#include "liquid/reconfig_server.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

int run(bench::BenchIo& io) {
  const auto img =
      sasm::assemble_or_throw(bench::fig7_kernel(bench::kPaperBound));

  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  liquid::ConfigSpace space;  // D-cache 1/2/4/8/16 KB, the paper's sweep
  cache.pregenerate(space, syn);

  std::printf("Figure 8: Array access running time\n");
  std::printf("(Fig 7 kernel, bound=%u; I-cache 1 KB, line 32 B)\n\n",
              bench::kPaperBound);
  std::printf("%-18s %-22s %s\n", "Data Cache Size", "Number of clock cycles",
              "D-cache misses");

  for (const liquid::ArchConfig& cfg : space.enumerate()) {
    sim::LiquidSystem node;
    io.attach_perf(node);
    node.run(100);
    liquid::ReconfigurationServer server(node, cache, syn);
    const liquid::JobResult job =
        server.run_job(cfg, img, img.symbol("cycles"), 1);
    if (!job.ok) {
      std::printf("%-18s FAILED: %s\n", cfg.key().c_str(),
                  job.error.c_str());
      return 1;
    }
    const u32 counted = job.readback.at(0);  // the hardware counter's value
    std::printf("%4uKB             %-22u %llu\n", cfg.dcache_bytes / 1024,
                counted,
                static_cast<unsigned long long>(
                    node.cpu().dcache().stats().read_misses));
    io.add_run(cfg.key(), node);
  }

  std::printf(
      "\nPaper's claim: no cache misses (excluding the initial loading of\n"
      "the cache) once the cache size reaches 4KB -> the cycle count must\n"
      "drop sharply at 4KB and stay flat for 8/16KB.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("fig8_cache_sweep", argc, argv);
  if (io.bad_args()) return 2;
  const int rc = run(io);
  if (!io.finish()) return 1;
  return rc;
}
