// Ablation A6 (extension): the write-through store buffer.
//
// LEON's write-through cache pairs with a store buffer that hides the bus
// write behind subsequent instructions.  Without it every store stalls
// for the full AHB write (SRAM) or the RMW handshake pair (SDRAM) — a
// microarchitectural knob the liquid space can trade against its (small)
// area cost.
#include <cstdio>

#include "bench_util.hpp"
#include "ctrl/client.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

std::string store_kernel(const char* base) {
  return std::string(R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]
      set )") + base + R"(, %o0
      set 4096, %o5
      mov 0, %o1
  loop:
      st %o1, [%o0 + %o1]
      add %o1, 4, %o1
      cmp %o1, %o5
      bl loop
      nop
      st %g0, [%g1]
      ld [%g1 + 4], %o4
      set cycles, %g3
      st %o4, [%g3]
      jmp 0x40
      nop
      .align 4
  cycles: .skip 4
  )";
}

u32 measure(bench::BenchIo& io, const std::string& label,
            const char* base, unsigned depth) {
  sim::SystemConfig scfg;
  scfg.pipeline.write_buffer_depth = depth;
  sim::LiquidSystem node(scfg);
  io.attach_perf(node);
  node.run(100);
  ctrl::LiquidClient client(node);
  const auto img = sasm::assemble_or_throw(store_kernel(base));
  if (!client.run_program(img)) return 0;
  const auto r = client.read_memory(img.symbol("cycles"), 1);
  io.add_run(label, node);
  return r ? (*r)[0] : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("ablate_write_buffer", argc, argv);
  if (io.bad_args()) return 2;
  std::printf("Ablation A6: write buffer on a store-dense kernel "
              "(1024 word stores)\n\n");
  std::printf("%-10s %16s %16s\n", "target", "buffered cycles",
              "unbuffered cycles");
  const struct {
    const char* name;
    const char* base;
  } targets[] = {{"SRAM", "0x40020000"}, {"SDRAM", "0x60000000"}};
  for (const auto& t : targets) {
    const u32 buffered = measure(io, std::string(t.name) + "/buffered",
                                 t.base, 1);
    const u32 unbuffered =
        measure(io, std::string(t.name) + "/unbuffered", t.base, 0);
    std::printf("%-10s %16u %16u   (%.2fx)\n", t.name, buffered, unbuffered,
                buffered ? static_cast<double>(unbuffered) / buffered : 0.0);
  }
  std::printf(
      "\nThe buffer hides the write-through traffic as long as the next\n"
      "store arrives after the previous one drained; the SDRAM RMW pair\n"
      "drains slower, so back-to-back stores stall even with the buffer.\n");
  return io.finish() ? 0 : 1;
}
