// Figure 9 reproduction: the Fig 8 data as a curve ("Average running time
// under different cache sizes"), emitted as a plottable series plus an
// ASCII rendering.  The paper averages multiple runs; the simulator is
// deterministic, but we still run each point three times and average, to
// mirror the methodology.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "liquid/reconfig_server.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

int run(bench::BenchIo& io) {
  const auto img =
      sasm::assemble_or_throw(bench::fig7_kernel(bench::kPaperBound));

  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  liquid::ConfigSpace space;
  cache.pregenerate(space, syn);

  struct Point {
    u32 kb;
    double cycles;
  };
  std::vector<Point> series;

  for (const liquid::ArchConfig& cfg : space.enumerate()) {
    double sum = 0;
    const int kRuns = 3;
    for (int r = 0; r < kRuns; ++r) {
      sim::LiquidSystem node;
      io.attach_perf(node);
      node.run(100);
      liquid::ReconfigurationServer server(node, cache, syn);
      const liquid::JobResult job =
          server.run_job(cfg, img, img.symbol("cycles"), 1);
      if (!job.ok) {
        std::printf("FAILED: %s\n", job.error.c_str());
        return 1;
      }
      sum += job.readback.at(0);
      io.add_run(cfg.key() + " run" + std::to_string(r), node);
    }
    series.push_back({cfg.dcache_bytes / 1024, sum / kRuns});
  }

  std::printf("Figure 9: Average running time under different cache sizes\n");
  std::printf("\n# dcache_kb  avg_cycles   (plottable series)\n");
  for (const Point& p : series) {
    std::printf("%10u  %11.0f\n", p.kb, p.cycles);
  }

  // ASCII curve, normalized to the worst point.
  const double worst =
      std::max_element(series.begin(), series.end(),
                       [](const Point& a, const Point& b) {
                         return a.cycles < b.cycles;
                       })
          ->cycles;
  std::printf("\n");
  for (const Point& p : series) {
    const int bars = static_cast<int>(60.0 * p.cycles / worst + 0.5);
    std::printf("%4uKB |", p.kb);
    for (int i = 0; i < bars; ++i) std::printf("#");
    std::printf(" %.0f\n", p.cycles);
  }

  const double cliff = series[1].cycles / series[2].cycles;  // 2KB vs 4KB
  const double flat = series[2].cycles / series.back().cycles;
  std::printf(
      "\nShape check: 2KB/4KB ratio = %.2fx (expect >> 1, the cliff);\n"
      "             4KB/16KB ratio = %.3f (expect ~1.0, the flat tail).\n",
      cliff, flat);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("fig9_runtime_curve", argc, argv);
  if (io.bad_args()) return 2;
  const int rc = run(io);
  if (!io.finish()) return 1;
  return rc;
}
