// Figure 10 reproduction: "Liquid Processor System Statistics" — device
// utilization of the shipped configuration after place and route on the
// Xilinx Virtex XCV2000E, from the synthesis model, plus the per-component
// breakdown and the utilization trend across the Fig 8 sweep (the data the
// reconfiguration cache reasons about).
#include <cstdio>

#include "bench_util.hpp"
#include "liquid/synthesis.hpp"

namespace {

using namespace la;

int run() {
  const liquid::SynthesisModel syn;
  const liquid::Device& dev = syn.device();
  const liquid::ArchConfig baseline = liquid::ArchConfig::paper_baseline();
  const liquid::Utilization u = syn.estimate(baseline);

  std::printf("Figure 10: Liquid Processor System Statistics (%s)\n\n",
              dev.name.c_str());
  std::printf("%s", liquid::format_utilization(u, dev).c_str());

  std::printf("\nPaper's row: 7900 of 19200 slices (41%%), 54%% of the\n");
  std::printf("BlockRAMs, 309 external IOBs, synthesized at 30 MHz.\n");

  std::printf("\nPer-component breakdown (model):\n");
  std::printf("  %-24s %7s %7s\n", "component", "slices", "BRAMs");
  for (const auto& c : u.breakdown) {
    std::printf("  %-24s %7u %7u\n", c.name.c_str(), c.slices, c.brams);
  }

  std::printf("\nUtilization across the Fig 8 D-cache sweep:\n");
  std::printf("  %-8s %8s %8s %8s %8s  %s\n", "dcache", "slices", "slice%",
              "BRAMs", "BRAM%", "fmax");
  liquid::ConfigSpace space;
  for (const auto& cfg : space.enumerate()) {
    const auto uu = syn.estimate(cfg);
    std::printf("  %4uKB   %8u %7.1f%% %8u %7.1f%%  %.0f MHz%s\n",
                cfg.dcache_bytes / 1024, uu.slices, uu.slice_pct(dev),
                uu.brams, uu.bram_pct(dev), uu.fmax_mhz,
                uu.fits ? "" : "  DOES NOT FIT");
    std::printf("           (synthesis: %.0f s)\n",
                syn.synthesis_seconds(cfg));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // No LiquidSystem runs here (pure synthesis-model figures), but the
  // shared egress flags are still accepted so harnesses can pass them
  // uniformly; the metrics document just carries zero runs.
  bench::BenchIo io("fig10_utilization", argc, argv);
  if (io.bad_args()) return 2;
  const int rc = run();
  if (!io.finish()) return 1;
  return rc;
}
