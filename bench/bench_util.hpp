// Shared pieces for the reproduction benches: the paper's Fig 7 kernel and
// helpers for driving measured runs through the full remote-control flow.
#pragma once

#include <string>

#include "common/types.hpp"

namespace la::bench {

/// The Fig 7 kernel, faithfully translated:
///
///   _start() { for (i = 0; i < bound; i = i + 32) {
///                  address = i % 1024; x = count[address]; } }
///
/// `count` is a 4 KB int array, so the byte offset is address*4: 32
/// accesses, 128 bytes apart — 1 KB of distinct lines spread over 4 KB.
/// The program starts/stops the hardware cycle counter around the loop
/// (the paper's measurement state machine), stores the reading, and jumps
/// back to the boot ROM's polling loop.
inline std::string fig7_kernel(u32 bound) {
  return R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1    ! cycle counter
      mov 1, %g2
      st %g2, [%g1]          ! start counting
      set count, %o0
      mov 0, %o1             ! i
      set )" + std::to_string(bound) + R"(, %o2
  loop:
      and %o1, 1023, %o3     ! address = i % 1024
      sll %o3, 2, %o3        ! int indexing: byte offset = address * 4
      ld [%o0 + %o3], %o4    ! x = count[address]
      add %o1, 32, %o1       ! i = i + 32
      cmp %o1, %o2
      bl loop
      nop
      st %g0, [%g1]          ! stop counting
      ld [%g1 + 4], %o5      ! read the measurement
      set cycles, %g3
      st %o5, [%g3]
      jmp 0x40               ! return to the polling loop
      nop
      .align 4
  cycles:
      .skip 4
      .align 32
  count:
      .skip 4096
  )";
}

/// The loop bound the paper's Fig 7 shows truncated ("i < ___0000"); one
/// million gives 31250 iterations, large enough that the initial cache
/// loading the paper excludes is noise.
inline constexpr u32 kPaperBound = 1000000;

}  // namespace la::bench
