// Shared pieces for the reproduction benches: the paper's Fig 7 kernel,
// helpers for driving measured runs through the full remote-control flow,
// and the machine-readable egress every bench exposes (--metrics-json,
// --perf-trace) so a reproduced table always ships with the registry
// snapshots it was printed from.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "sim/liquid_system.hpp"

namespace la::bench {

/// The Fig 7 kernel, faithfully translated:
///
///   _start() { for (i = 0; i < bound; i = i + 32) {
///                  address = i % 1024; x = count[address]; } }
///
/// `count` is a 4 KB int array, so the byte offset is address*4: 32
/// accesses, 128 bytes apart — 1 KB of distinct lines spread over 4 KB.
/// The program starts/stops the hardware cycle counter around the loop
/// (the paper's measurement state machine), stores the reading, and jumps
/// back to the boot ROM's polling loop.
inline std::string fig7_kernel(u32 bound) {
  return R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1    ! cycle counter
      mov 1, %g2
      st %g2, [%g1]          ! start counting
      set count, %o0
      mov 0, %o1             ! i
      set )" + std::to_string(bound) + R"(, %o2
  loop:
      and %o1, 1023, %o3     ! address = i % 1024
      sll %o3, 2, %o3        ! int indexing: byte offset = address * 4
      ld [%o0 + %o3], %o4    ! x = count[address]
      add %o1, 32, %o1       ! i = i + 32
      cmp %o1, %o2
      bl loop
      nop
      st %g0, [%g1]          ! stop counting
      ld [%g1 + 4], %o5      ! read the measurement
      set cycles, %g3
      st %o5, [%g3]
      jmp 0x40               ! return to the polling loop
      nop
      .align 4
  cycles:
      .skip 4
      .align 32
  count:
      .skip 4096
  )";
}

/// The loop bound the paper's Fig 7 shows truncated ("i < ___0000"); one
/// million gives 31250 iterations, large enough that the initial cache
/// loading the paper excludes is noise.
inline constexpr u32 kPaperBound = 1000000;

/// Observability egress shared by every fig/ablation bench:
///
///   <bench> [--metrics-json FILE] [--perf-trace FILE]
///
/// `--metrics-json` collects one metrics-registry snapshot per measured
/// run (one table row) and writes them as one JSON document.
/// `--perf-trace` records cycle-stamped spans on each attached node and
/// writes a combined Chrome trace_event file (each run on its own track).
/// Construct at the top of main, attach_perf() each node before driving
/// it, add_run() after each measurement, finish() before returning.
class BenchIo {
 public:
  BenchIo(std::string bench_name, int argc, char** argv)
      : name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--metrics-json" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (a == "--perf-trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
      } else {
        std::fprintf(stderr,
                     "%s: unknown argument '%s' (supported: "
                     "--metrics-json FILE, --perf-trace FILE)\n",
                     name_.c_str(), a.c_str());
        bad_args_ = true;
      }
    }
  }

  /// Programmatic form for callers with their own CLI (lsim): the paths
  /// arrive already parsed; empty disables that output.
  BenchIo(std::string bench_name, std::string metrics_path,
          std::string trace_path)
      : name_(std::move(bench_name)),
        metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)) {}

  bool bad_args() const { return bad_args_; }
  bool metrics_enabled() const { return !metrics_path_.empty(); }
  bool perf_enabled() const { return !trace_path_.empty(); }

  /// Enable the node's perf tracer when --perf-trace was given.
  void attach_perf(sim::LiquidSystem& node) const {
    if (perf_enabled()) node.enable_perf_trace();
  }

  /// Record one measured run from an already-built snapshot — for rollups
  /// that aren't a single node's registry (the farm's fleet merge).
  void add_run(const std::string& label, metrics::Snapshot snap) {
    if (metrics_enabled()) runs_.emplace_back(label, std::move(snap));
  }

  /// Record one measured run: snapshot the node's registry (and collect
  /// its perf-trace events) under `label`.
  void add_run(const std::string& label, sim::LiquidSystem& node) {
    if (metrics_enabled()) {
      runs_.emplace_back(label, node.metrics_snapshot());
    }
    if (perf_enabled() && node.perf_tracer() != nullptr) {
      node.perf_tracer()->close_open_spans();
      traces_.emplace_back(label, node.perf_tracer()->events());
    }
  }

  /// Write the requested files; false (with a message) on I/O failure.
  bool finish() {
    bool ok = true;
    if (metrics_enabled()) ok &= write_metrics();
    if (perf_enabled()) ok &= write_trace();
    return ok;
  }

 private:
  bool write_file(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", name_.c_str(),
                   path.c_str());
      return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
  }

  bool write_metrics() {
    std::string out = "{\n  \"benchmark\":";
    metrics::append_json_string(out, name_);
    out += ",\n  \"runs\":[";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      out += i ? ",\n    {\"label\":" : "\n    {\"label\":";
      metrics::append_json_string(out, runs_[i].first);
      out += ",\"snapshot\":";
      out += runs_[i].second.to_json(0);
      out += '}';
    }
    out += "\n  ]\n}\n";
    return write_file(metrics_path_, out);
  }

  bool write_trace() {
    // Each run renders as its own track (tid) on a shared timeline; the
    // per-node clocks all start at 0, so tracks align at their origins.
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t run = 0; run < traces_.size(); ++run) {
      const int tid = static_cast<int>(run) + 1;
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"args\":{\"name\":";
      metrics::append_json_string(out, traces_[run].first);
      out += "}}";
      for (const auto& e : traces_[run].second) {
        out += ",\n{\"name\":";
        metrics::append_json_string(out, e.name);
        out += ",\"cat\":\"liquid\",\"ph\":\"";
        out += e.phase;
        out += "\",\"ts\":";
        metrics::append_json_number(out, static_cast<double>(e.ts));
        out += ",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        if (e.phase == 'C') {
          out += ",\"args\":{\"value\":";
          metrics::append_json_number(out, e.value);
          out += '}';
        } else if (e.phase == 'i') {
          out += ",\"s\":\"t\"";
        }
        out += '}';
      }
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return write_file(trace_path_, out);
  }

  std::string name_;
  std::string metrics_path_;
  std::string trace_path_;
  bool bad_args_ = false;
  std::vector<std::pair<std::string, metrics::Snapshot>> runs_;
  std::vector<std::pair<std::string, std::vector<sim::PerfTracer::Event>>>
      traces_;
};

}  // namespace la::bench
