// Ablation A3 (Section 1): what the reconfiguration cache buys.
//
// "Each such instance requires ~1 hour to synthesize, and the results are
// captured in the reconfiguration cache.  At runtime, an application can
// switch between these pre-generated modules to improve performance."
//
// We run the adaptation loop on the Fig 7 kernel twice: once with a cold
// cache (every image costs a synthesis run) and once after the offline
// pre-generation pass (switching costs only the bitstream download), and
// report the wall-clock difference and the break-even point.
#include <cstdio>

#include "bench_util.hpp"
#include "liquid/adaptation.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

double run_loop(bench::BenchIo& io, const char* run_tag,
                liquid::ReconfigurationCache& cache, const char* label) {
  const auto img =
      sasm::assemble_or_throw(bench::fig7_kernel(bench::kPaperBound));
  liquid::SynthesisModel syn;
  sim::LiquidSystem node;
  io.attach_perf(node);
  node.run(100);
  liquid::ReconfigurationServer server(node, cache, syn);
  liquid::AdaptationEngine engine(server, liquid::ConfigSpace{});

  const auto out = engine.adapt(img, img.symbol("cycles"), 1, 4);
  double overhead = 0.0;
  std::printf("%s\n", label);
  std::printf("  %-10s %-28s %12s %10s %12s\n", "round", "config", "cycles",
              "img hit", "overhead(s)");
  for (std::size_t i = 0; i < out.steps.size(); ++i) {
    const auto& s = out.steps[i];
    overhead += s.overhead_seconds;
    std::printf("  %-10zu %-28s %12llu %10s %12.1f\n", i,
                s.config.key().c_str(),
                static_cast<unsigned long long>(s.cycles),
                s.cache_hit ? "yes" : "NO", s.overhead_seconds);
  }
  std::printf("  speedup first->last: %.2fx; total overhead %.1f s\n\n",
              out.speedup(), overhead);
  io.add_run(run_tag, node);
  return overhead;
}

}  // namespace

int main(int argc, char** argv) {
  la::bench::BenchIo io("ablate_reconfig_cache", argc, argv);
  if (io.bad_args()) return 2;
  std::printf("Ablation A3: reconfiguration cache amortization\n\n");
  la::liquid::SynthesisModel syn;

  la::liquid::ReconfigurationCache cold;
  const double cold_overhead =
      run_loop(io, "cold", cold, "cold cache (no pre-generation):");

  la::liquid::ReconfigurationCache warm;
  const double pregen = warm.pregenerate(la::liquid::ConfigSpace{}, syn);
  std::printf("offline pre-generation of the 5-point space: %.1f s (%.2f h)\n\n",
              pregen, pregen / 3600.0);
  const double warm_overhead =
      run_loop(io, "warm", warm, "warm cache (pre-generated):");

  std::printf("runtime overhead: cold %.1f s vs warm %.1f s\n", cold_overhead,
              warm_overhead);
  if (warm_overhead > 0) {
    std::printf(
        "the pre-generation pass pays for itself after ~%.0f adaptation\n"
        "episodes that would otherwise synthesize on the critical path.\n",
        pregen / std::max(1.0, cold_overhead - warm_overhead) + 1);
  }
  return io.finish() ? 0 : 1;
}
