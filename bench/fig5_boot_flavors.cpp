// Figure 5 demonstration: original vs modified LEON boot code.
//
// The original LEON boot waits for a UART event before doing anything —
// useless for a network-controlled platform.  The paper's modification
// polls a main-memory mailbox instead, which is what lets leon_ctrl start
// programs remotely.  This bench boots both flavours, attempts the same
// remote program start on each, and shows what each ROM actually executes.
#include <cstdio>

#include "bench_util.hpp"
#include "ctrl/client.hpp"
#include "isa/disasm.hpp"
#include "mem/boot_rom.hpp"
#include "mem/memory_map.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

sasm::Image hello_program() {
  return sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set result, %g1
      set 0x600d, %g2
      st %g2, [%g1]
      jmp 0x40
      nop
      .align 4
  result: .skip 4
  )");
}

void listing(const char* title, const std::string& source) {
  std::printf("%s\n", title);
  const auto img = sasm::assemble_or_throw(source);
  for (Addr a = img.base; a + 4 <= img.end() && a < img.base + 0x80;
       a += 4) {
    const u32 w = img.word_at(a);
    if (w == 0) continue;  // skip the .org padding
    std::printf("  %08x: %s\n", a, isa::disassemble_word(w, a).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("fig5_boot_flavors", argc, argv);
  if (io.bad_args()) return 2;
  std::printf("Figure 5: original vs modified LEON boot code\n\n");

  listing("original boot (waits for a UART event):",
          mem::original_boot_source(
              mem::map::kRomBase,
              mem::map::kApbBase + mem::map::kUartOffset + 4));
  listing("modified boot (polls the SRAM mailbox, Fig 5 right):",
          mem::modified_boot_source(mem::map::kRomBase,
                                    mem::map::kProgAddrMailbox));

  const auto img = hello_program();

  for (const bool original : {true, false}) {
    sim::SystemConfig cfg;
    cfg.use_original_boot = original;
    sim::LiquidSystem node(cfg);
    io.attach_perf(node);
    node.run(200);
    ctrl::LiquidClient client(node);

    const bool loaded = static_cast<bool>(client.load_program(img));
    const bool started = static_cast<bool>(client.start(img.entry));
    // Give it plenty of time either way.
    client.pump(50000);
    const bool done = node.controller().state() == net::LeonState::kDone;
    const u32 result =
        done ? node.sram().backdoor_word(img.symbol("result")) : 0;

    std::printf("%-10s boot: load=%s start-cmd=%s program-ran=%s",
                original ? "original" : "modified", loaded ? "ok" : "FAIL",
                started ? "acked" : "FAIL", done ? "YES" : "no");
    if (done) std::printf(" (result=0x%x)", result);
    std::printf("  cpu pc=0x%08x\n", node.cpu().state().pc);
    io.add_run(original ? "original-boot" : "modified-boot", node);
  }

  std::printf(
      "\nBoth ROMs accept the load (leon_ctrl owns memory either way) and\n"
      "ack the start command, but only the modified ROM's polling loop\n"
      "ever dispatches the program — the original is still parked waiting\n"
      "for a UART character that will never come.  That gap is what\n"
      "Section 3.1's boot modification closes.\n");
  return io.finish() ? 0 : 1;
}
