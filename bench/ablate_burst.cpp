// Ablation A1 (Section 3.2): the adapter's always-burst-4 read policy.
//
// "To gain a good deal of performance, the controller was designed to
// always use a short burst when reading ... a significant amount of time
// is gained by avoiding additional handshakes for 4-word bursts."
//
// Two views:
//   1. bus-level: identical AHB read streams against the adapter with the
//      short-burst policy on and off — handshake counts and cycles;
//   2. system-level: a cache-line-fill-heavy kernel running from SDRAM.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "bus/ahb.hpp"
#include "ctrl/client.hpp"
#include "mem/ahb_sdram_adapter.hpp"
#include "mem/sdram.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

struct BusProbe {
  explicit BusProbe(mem::AdapterConfig cfg) {
    dev = std::make_unique<mem::SdramDevice>(1 << 20);
    ctrl = std::make_unique<mem::FpxSdramController>(*dev);
    adapter = std::make_unique<mem::AhbSdramAdapter>(*ctrl, 0x60000000,
                                                     1 << 20, &clock, cfg);
    bus.attach(0x60000000, 1 << 20, adapter.get());
  }

  Cycles run_reads(unsigned bursts, unsigned beats) {
    Cycles total = 0;
    std::vector<u32> buf(beats);
    for (unsigned i = 0; i < bursts; ++i) {
      bus::AhbTransfer t;
      t.addr = 0x60000000 + i * beats * 4;
      t.beats = beats;
      t.burst = beats == 4 ? bus::HBurst::kIncr4 : bus::HBurst::kIncr8;
      t.data = buf.data();
      total += bus.transfer(bus::Master::kCpuData, t);
      clock += 1000;  // quiesce between transfers
    }
    return total;
  }

  Cycles clock = 0;
  std::unique_ptr<mem::SdramDevice> dev;
  std::unique_ptr<mem::FpxSdramController> ctrl;
  std::unique_ptr<mem::AhbSdramAdapter> adapter;
  bus::AhbBus bus;
};

void bus_level() {
  std::printf("-- bus level: 1024 x 4-beat (INCR4) reads --\n");
  std::printf("%-22s %10s %12s %14s\n", "policy", "cycles", "handshakes",
              "wasted 64b words");
  for (const bool short_burst : {true, false}) {
    mem::AdapterConfig cfg;
    cfg.always_short_burst = short_burst;
    BusProbe p(cfg);
    const Cycles c = p.run_reads(1024, 4);
    std::printf("%-22s %10llu %12llu %14llu\n",
                short_burst ? "burst-4 (paper)" : "single-word (ablated)",
                static_cast<unsigned long long>(c),
                static_cast<unsigned long long>(
                    p.adapter->stats().read_handshakes),
                static_cast<unsigned long long>(
                    p.adapter->stats().wasted_words64));
  }
}

void system_level(bench::BenchIo& io) {
  // Strided walk over a 64 KB SDRAM array with a 1 KB D-cache: every load
  // misses, so run time is dominated by 32-byte line fills (8 beats = two
  // short-burst handshakes each, or four single-word ones when ablated).
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]
      set 0x60000000, %o0
      set 65536, %o5
      mov 0, %o1
  loop:
      ld [%o0 + %o1], %o2
      add %o1, 32, %o1
      cmp %o1, %o5
      bl loop
      nop
      st %g0, [%g1]
      ld [%g1 + 4], %o4
      set cycles, %g3
      st %o4, [%g3]
      jmp 0x40
      nop
      .align 4
  cycles: .skip 4
  )");

  std::printf("\n-- system level: 2048 line fills from SDRAM --\n");
  std::printf("%-22s %10s %12s\n", "policy", "cycles", "handshakes");
  for (const bool short_burst : {true, false}) {
    sim::SystemConfig scfg;
    scfg.adapter.always_short_burst = short_burst;
    scfg.sdram_size = 1 << 20;
    sim::LiquidSystem node(scfg);
    io.attach_perf(node);
    node.run(100);
    ctrl::LiquidClient client(node);
    if (!client.run_program(img)) {
      std::printf("run failed\n");
      return;
    }
    const auto counted = client.read_memory(img.symbol("cycles"), 1);
    std::printf("%-22s %10u %12llu\n",
                short_burst ? "burst-4 (paper)" : "single-word (ablated)",
                counted ? (*counted)[0] : 0,
                static_cast<unsigned long long>(
                    node.sdram_controller().stats().total_handshakes()));
    io.add_run(short_burst ? "burst-4" : "single-word", node);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("ablate_burst", argc, argv);
  if (io.bad_args()) return 2;
  std::printf("Ablation A1: 4-word read bursts vs single-word handshakes\n\n");
  bus_level();
  system_level(io);
  return io.finish() ? 0 : 1;
}
