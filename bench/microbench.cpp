// Simulator throughput microbenchmarks (google-benchmark): how fast the
// models themselves run on the host — useful when sizing experiments.
#include <benchmark/benchmark.h>

#include "bus/ahb.hpp"
#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "ctrl/client.hpp"
#include "isa/decode.hpp"
#include "isa/decode_cache.hpp"
#include "mem/sram.hpp"
#include "net/packet.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

const char* kLoop = R"(
    .org 0x100
_start:
    set 1000000000, %g1
loop:
    subcc %g1, 1, %g1
    xor %g2, %g1, %g2
    add %g3, %g2, %g3
    bne loop
    nop
done: ba done
    nop
)";

void BM_Decode(benchmark::State& state) {
  Rng rng(1);
  std::vector<u32> words(4096);
  for (auto& w : words) w = rng.next_u32();
  // Warm every input once before the timed loop so first-touch effects
  // (page faults, branch-predictor training) land outside the measurement
  // regardless of which words the RNG happens to produce.
  for (u32 w : words) benchmark::DoNotOptimize(isa::decode(w));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(words[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Decode);

void BM_DecodeCached(benchmark::State& state) {
  // Same inputs as BM_Decode, through the word-keyed predecode cache the
  // CPU models use on their hot fetch paths.  4096 words into 2048 slots
  // keeps a realistic (non-zero) miss rate.
  Rng rng(1);
  std::vector<u32> words(4096);
  for (auto& w : words) w = rng.next_u32();
  isa::DecodeCache cache;
  for (u32 w : words) benchmark::DoNotOptimize(cache.lookup(w));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(words[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeCached);

void BM_IntegerUnitStep(benchmark::State& state) {
  const auto img = sasm::assemble_or_throw(kLoop);
  cpu::FlatMemory mem(1 << 16);
  mem.load(img.base, img.data);
  cpu::IntegerUnit iu(cpu::CpuConfig{}, mem);
  iu.reset(img.entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(iu.step());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("instructions/sec");
}
BENCHMARK(BM_IntegerUnitStep);

bool everything_cacheable(Addr) { return true; }

void BM_PipelineStep(benchmark::State& state) {
  const auto img = sasm::assemble_or_throw(kLoop);
  mem::Sram sram(0, 1 << 16);
  sram.backdoor_write(img.base, img.data);
  bus::AhbBus bus;
  bus.attach(0, 1 << 16, &sram);
  Cycles clock = 0;
  cpu::LeonPipeline pipe(cpu::PipelineConfig{}, bus, &clock,
                         &everything_cacheable);
  pipe.reset(img.entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.step());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("instructions/sec");
}
BENCHMARK(BM_PipelineStep);

// ---- host-MIPS benchmarks ------------------------------------------------
// The per-step benchmarks above measure one `step()` call including the
// StepResult materialization the caller pays; the `_MIPS` variants drive
// the models the way experiments do — through `run()` — which is where the
// batched hot loops live.  Each reports host instructions/sec as a rate
// counter (`instr_per_sec`).

void report_mips(benchmark::State& state, u64 instructions) {
  state.SetItemsProcessed(static_cast<i64>(instructions));
  state.counters["instr_per_sec"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

constexpr u64 kRunChunk = 64 * 1024;

void BM_IntegerUnit_MIPS(benchmark::State& state) {
  const auto img = sasm::assemble_or_throw(kLoop);
  cpu::FlatMemory mem(1 << 16);
  mem.load(img.base, img.data);
  cpu::IntegerUnit iu(cpu::CpuConfig{}, mem);
  iu.reset(img.entry);
  u64 instructions = 0;
  for (auto _ : state) {
    instructions += iu.run(kRunChunk);
  }
  report_mips(state, instructions);
}
BENCHMARK(BM_IntegerUnit_MIPS);

void BM_LeonPipeline_MIPS(benchmark::State& state) {
  const auto img = sasm::assemble_or_throw(kLoop);
  mem::Sram sram(0, 1 << 16);
  sram.backdoor_write(img.base, img.data);
  bus::AhbBus bus;
  bus.attach(0, 1 << 16, &sram);
  Cycles clock = 0;
  cpu::LeonPipeline pipe(cpu::PipelineConfig{}, bus, &clock,
                         &everything_cacheable);
  pipe.reset(img.entry);
  u64 instructions = 0;
  for (auto _ : state) {
    instructions += pipe.run(kRunChunk);
  }
  report_mips(state, instructions);
}
BENCHMARK(BM_LeonPipeline_MIPS);

// The compute loop for the full-system measurement lives in SDRAM like a
// real remotely-loaded program and never completes, so every measured step
// is user code (not the ROM polling loop).
const char* kSystemLoop = R"(
    .org 0x40000100
_start:
    set 2000000000, %g1
loop:
    subcc %g1, 1, %g1
    xor %g2, %g1, %g2
    add %g3, %g2, %g3
    bne loop
    nop
done: ba done
    nop
)";

void BM_LiquidSystem_MIPS(benchmark::State& state) {
  sim::LiquidSystem sys;
  sys.run(200);  // boot into the polling loop
  ctrl::LiquidClient client(sys);
  const auto img = sasm::assemble_or_throw(kSystemLoop);
  if (!client.load_program(img) || !client.start(img.entry)) {
    state.SkipWithError("remote program start failed");
    return;
  }
  u64 instructions = 0;
  for (auto _ : state) {
    sys.run(kRunChunk);
    instructions += kRunChunk;
  }
  report_mips(state, instructions);
}
BENCHMARK(BM_LiquidSystem_MIPS);

void BM_CacheAccess(benchmark::State& state) {
  cache::Cache c(cache::CacheConfig{.size_bytes = 4096,
                                    .line_bytes = 32,
                                    .ways = static_cast<u32>(state.range(0))});
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.access(rng.next_u32() & 0xffff, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(4);

void BM_AhbSingleRead(benchmark::State& state) {
  mem::Sram sram(0, 1 << 16);
  bus::AhbBus bus;
  bus.attach(0, 1 << 16, &sram);
  u32 v = 0;
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.read32(bus::Master::kCpuData, a, v));
    a = (a + 4) & 0xfffc;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AhbSingleRead);

void BM_UdpPacketRoundTrip(benchmark::State& state) {
  net::UdpDatagram d;
  d.src_ip = net::make_ip(10, 0, 0, 1);
  d.dst_ip = net::make_ip(10, 0, 0, 2);
  d.src_port = 1;
  d.dst_port = 2;
  d.payload.assign(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    const Bytes pkt = net::build_udp_packet(d);
    benchmark::DoNotOptimize(net::parse_udp_packet(pkt));
  }
  state.SetBytesProcessed(state.iterations() *
                          (static_cast<i64>(d.payload.size()) + 28));
}
BENCHMARK(BM_UdpPacketRoundTrip)->Arg(64)->Arg(1024);

void BM_Assembler(benchmark::State& state) {
  std::string src = ".org 0x100\n_start:\n";
  for (int i = 0; i < 200; ++i) {
    src += "    add %g1, " + std::to_string(i & 1023) + ", %g2\n";
    src += "l" + std::to_string(i) + ": st %g2, [%g1 + 8]\n";
  }
  sasm::Assembler as;
  for (auto _ : state) {
    benchmark::DoNotOptimize(as.assemble(src));
  }
  state.SetItemsProcessed(state.iterations() * 400);
  state.SetLabel("statements/sec");
}
BENCHMARK(BM_Assembler);

}  // namespace

BENCHMARK_MAIN();
