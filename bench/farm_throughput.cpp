// Fleet throughput: what affinity routing and fleet width buy.
//
// Three measured runs over the identical seeded workload:
//   * 8 nodes, affinity routing (the farm as shipped)
//   * 8 nodes, FIFO (oldest-runnable-first — the scheduling baseline)
//   * 1 node, affinity (the paper's single-server deployment)
// reported in simulated wall-clock: jobs/sec over the fleet makespan,
// fleet reconfiguration counts, and the reconfigurations affinity avoided
// versus FIFO at equal width.  Writes every fleet snapshot to
// BENCH_farm.json (override with --metrics-json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "farm/farm.hpp"
#include "farm/workload.hpp"

namespace {

using namespace la;

struct RunResult {
  std::string label;
  farm::FarmReport report;
};

/// Drive `jobs` seeded jobs through a fresh farm and report on it.  The
/// generator is re-seeded per run, so every configuration sees the exact
/// same job stream.
RunResult run_farm(const std::string& label, std::size_t nodes,
                   farm::FarmPolicy policy, u64 jobs, u64 seed) {
  farm::FarmConfig fc;
  fc.nodes = nodes;
  fc.scheduler.policy = policy;
  farm::LiquidFarm f(fc);

  farm::WorkloadConfig wc;
  wc.seed = seed;
  wc.owners = 24;  // keep an 8-wide fleet fed despite per-owner FIFO
  farm::WorkloadGenerator gen(wc);

  liquid::ConfigSpace space;
  space.dcache_sizes.clear();
  space.mul_latencies.clear();
  for (const liquid::ArchConfig& c : gen.catalog()) {
    space.dcache_sizes.push_back(c.dcache_bytes);
    space.mul_latencies.push_back(c.mul_latency);
  }
  f.pregenerate(space);  // measure scheduling, not synthesis hours

  for (u64 i = 0; i < jobs; ++i) {
    farm::GeneratedJob g = gen.next();
    for (;;) {
      if (f.submit(g.job)) break;
      f.pop_result();  // saturated: absorb a completion, then retry
    }
  }
  f.drain();
  return {label, f.report()};
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = "BENCH_farm.json";
  u64 jobs = 600;
  u64 seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--metrics-json" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      jobs = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "farm_throughput: unknown argument '%s' (supported: "
                   "--metrics-json FILE, --jobs N, --seed S)\n",
                   a.c_str());
      return 2;
    }
  }
  bench::BenchIo io("farm_throughput", metrics_path, "");

  std::vector<RunResult> runs;
  runs.push_back(
      run_farm("affinity-8", 8, farm::FarmPolicy::kAffinity, jobs, seed));
  runs.push_back(
      run_farm("fifo-8", 8, farm::FarmPolicy::kFifo, jobs, seed));
  runs.push_back(
      run_farm("affinity-1", 1, farm::FarmPolicy::kAffinity, jobs, seed));

  std::printf("farm throughput, %llu jobs, seed %llu (simulated time)\n",
              static_cast<unsigned long long>(jobs),
              static_cast<unsigned long long>(seed));
  std::printf("%-12s %8s %12s %10s %10s %10s\n", "run", "nodes", "jobs/sec",
              "makespan", "reconfigs", "p95 wall");
  for (RunResult& r : runs) {
    std::printf("%-12s %8zu %12.2f %9.2fs %10llu %9.4fs\n", r.label.c_str(),
                r.report.nodes.size(), r.report.jobs_per_second,
                r.report.makespan_seconds,
                static_cast<unsigned long long>(r.report.reconfigurations),
                r.report.p95_wall_seconds);
    io.add_run(r.label, std::move(r.report.fleet));
  }

  const farm::FarmReport& aff = runs[0].report;
  const farm::FarmReport& fifo = runs[1].report;
  const farm::FarmReport& solo = runs[2].report;
  const long long avoided =
      static_cast<long long>(fifo.reconfigurations) -
      static_cast<long long>(aff.reconfigurations);
  std::printf("\naffinity avoided %lld reconfigurations vs FIFO (%llu -> "
              "%llu)\n",
              avoided,
              static_cast<unsigned long long>(fifo.reconfigurations),
              static_cast<unsigned long long>(aff.reconfigurations));
  if (solo.jobs_per_second > 0.0) {
    std::printf("fleet speedup over one node: %.2fx\n",
                aff.jobs_per_second / solo.jobs_per_second);
  }
  return io.finish() ? 0 : 1;
}
