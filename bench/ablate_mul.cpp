// Ablation A5 (extension): the multiplier axis of the liquid space.
//
// Section 1 lists "specialized hardware to accelerate frequently used
// instructions" among the reconfiguration options.  LEON's multiplier
// comes in 1/2/4/5-cycle variants (and can be omitted entirely, trapping
// to software).  Faster multipliers burn slices AND lower the achievable
// clock — so the right choice depends on the workload's multiply density,
// and the figure of merit is wall-clock time = cycles / fmax, not cycles.
//
// Workload: 64-element integer dot product, 100 passes (multiply-dense).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "liquid/reconfig_server.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"

namespace {

using namespace la;

std::string dot_product(bool hw_mul) {
  std::string s = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]          ! start the counter
      mov 100, %g6           ! passes
  outer:
      set va, %l0
      set vb, %l1
      mov 64, %l2
      mov 0, %l3             ! accumulator
  inner:
      ld [%l0], %o0
      ld [%l1], %o1
  )";
  if (hw_mul) {
    s += "    umul %o0, %o1, %o0\n";
  } else {
    s += "    call rt_umul         ! no hardware multiplier in this image\n";
    s += "    nop\n";
  }
  s += R"(
      add %l3, %o0, %l3
      add %l0, 4, %l0
      add %l1, 4, %l1
      subcc %l2, 1, %l2
      bne inner
      nop
      subcc %g6, 1, %g6
      bne outer
      nop
      st %g0, [%g1]          ! stop the counter
      ld [%g1 + 4], %o5
      set cycles, %g3
      st %o5, [%g3]
      set result, %g4
      st %l3, [%g4]
      jmp 0x40
      nop
      .align 4
  cycles:  .skip 4
  result:  .skip 4
      .align 4
  va:
  )";
  for (int i = 0; i < 64; ++i) s += "    .word " + std::to_string(i + 3) + "\n";
  s += "  vb:\n";
  for (int i = 0; i < 64; ++i) s += "    .word " + std::to_string(2 * i + 1) + "\n";
  return s + sasm::rt::runtime_source();
}

int run(bench::BenchIo& io) {
  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;

  std::printf("Ablation A5: multiplier variants on a multiply-dense kernel\n\n");
  std::printf("%-22s %10s %8s %12s %8s\n", "variant", "cycles", "fmax",
              "wall time", "slices");

  u32 reference = 0;
  struct Variant {
    const char* name;
    bool has_mul;
    Cycles latency;
  };
  const Variant variants[] = {
      {"no multiplier (sw)", false, 5},
      {"iterative 5-cycle", true, 5},
      {"4-cycle", true, 4},
      {"2-cycle", true, 2},
      {"single-cycle", true, 1},
  };
  for (const Variant& v : variants) {
    liquid::ArchConfig cfg;
    cfg.has_mul = v.has_mul;
    cfg.mul_latency = v.latency;
    const auto img = sasm::assemble_or_throw(dot_product(v.has_mul));

    sim::LiquidSystem node;
    io.attach_perf(node);
    node.run(100);
    liquid::ReconfigurationServer server(node, cache, syn);
    const auto job = server.run_job(cfg, img, img.symbol("cycles"), 2);
    if (!job.ok) {
      std::printf("%-22s FAILED: %s\n", v.name, job.error.c_str());
      return 1;
    }
    const u32 cycles = job.readback.at(0);
    const u32 result = job.readback.at(1);
    if (reference == 0) reference = result;
    const auto u = syn.estimate(cfg);
    const double us = cycles / u.fmax_mhz;  // MHz -> microseconds
    std::printf("%-22s %10u %5.0fMHz %9.1f us %8u%s\n", v.name, cycles,
                u.fmax_mhz, us, u.slices,
                result == reference ? "" : "  WRONG RESULT");
    io.add_run(v.name, node);
  }

  std::printf(
      "\nThe figure of merit is wall time: the single-cycle multiplier\n"
      "wins on cycles but drags the whole processor's clock from 30 to\n"
      "26 MHz, losing the race to the 2-cycle variant — the sweet spot\n"
      "sits in the middle, and the software-multiply row shows the ~7.5x\n"
      "price of omitting the unit on a multiply-dense kernel.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("ablate_mul", argc, argv);
  if (io.bad_args()) return 2;
  const int rc = run(io);
  if (!io.finish()) return 1;
  return rc;
}
