// Ablation A4 (extension): cache geometry interactions on the Fig 7
// kernel — associativity and line size alongside the paper's size axis.
//
// The kernel's 128-byte stride makes it a conflict-miss story — and a
// cautionary one: because the stride is a power of two, adding ways while
// holding capacity halves the set count and the same lines still collide,
// so associativity buys nothing here; only capacity (4 KB) does.  Line
// size never changes the miss count (one word per line is touched) but
// directly scales the cost of each fill.
#include <cstdio>

#include "bench_util.hpp"
#include "liquid/reconfig_server.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

int run(bench::BenchIo& io) {
  const auto img = sasm::assemble_or_throw(bench::fig7_kernel(200000));

  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;

  liquid::ConfigSpace space;
  space.dcache_sizes = {1024, 2048, 4096, 8192};
  space.line_sizes = {16, 32, 64};
  space.way_counts = {1, 2};
  cache.pregenerate(space, syn);

  std::printf("Ablation A4: geometry sweep on the Fig 7 kernel (bound=200000)\n\n");
  std::printf("%-8s %-6s %-6s %12s %12s %10s\n", "size", "line", "ways",
              "cycles", "d-misses", "fmax");

  for (const auto& cfg : space.enumerate()) {
    sim::LiquidSystem node;
    io.attach_perf(node);
    node.run(100);
    liquid::ReconfigurationServer server(node, cache, syn);
    const auto job = server.run_job(cfg, img, img.symbol("cycles"), 1);
    if (!job.ok) {
      std::printf("%uKB/%u/%u FAILED: %s\n", cfg.dcache_bytes / 1024,
                  cfg.dcache_line, cfg.dcache_ways, job.error.c_str());
      continue;
    }
    const auto u = syn.estimate(cfg);
    std::printf("%4uKB   %4uB  %4u  %12u %12llu %7.1fMHz\n",
                cfg.dcache_bytes / 1024, cfg.dcache_line, cfg.dcache_ways,
                job.readback.at(0),
                static_cast<unsigned long long>(
                    node.cpu().dcache().stats().read_misses),
                u.fmax_mhz);
    io.add_run(cfg.key(), node);
  }

  std::printf(
      "\nExpected shape: the 128B power-of-two stride defeats associativity\n"
      "(doubling ways halves the set count, so the same lines still\n"
      "collide) — only capacity fixes it, at 4KB for every geometry.\n"
      "Line size never changes the miss count (one word touched per line)\n"
      "but scales the fill cost: 16B lines are cheapest below 4KB, and\n"
      "64B lines waste the most fill bandwidth.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("ablate_geometry", argc, argv);
  if (io.bad_args()) return 2;
  const int rc = run(io);
  if (!io.finish()) return 1;
  return rc;
}
