// Ablation A2 (Section 3.2): the read-modify-write penalty on stores.
//
// "Since 64 bits must be written at a time, the controller must first read
// the entire contents of the memory address, modify the appropriate 32
// bits, and then rewrite the data.  This requires two separate handshakes
// for each write request, significantly impairing performance."
//
// Bus level: 64-bit-covering write bursts with RMW (paper) vs a combining
// adapter that writes full doublewords directly (what the paper's future
// work would enable once burst lengths are known up front).
// System level: a store-heavy kernel into SDRAM under a write-through
// cache (every store is a 32-bit AHB write -> RMW pair) vs a write-back
// cache (stores coalesce into full-line burst evictions, where the
// combining adapter can skip the reads entirely).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "bus/ahb.hpp"
#include "ctrl/client.hpp"
#include "mem/ahb_sdram_adapter.hpp"
#include "mem/sdram.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

void bus_level() {
  std::printf("-- bus level: 512 x 8-beat (one line) write bursts --\n");
  std::printf("%-24s %10s %14s %14s\n", "adapter", "cycles",
              "write handshakes", "rmw reads");
  for (const bool rmw : {true, false}) {
    mem::AdapterConfig cfg;
    cfg.rmw_writes = rmw;
    Cycles clock = 0;
    mem::SdramDevice dev(1 << 20);
    mem::FpxSdramController ctrl(dev);
    mem::AhbSdramAdapter adapter(ctrl, 0x60000000, 1 << 20, &clock, cfg);
    bus::AhbBus bus;
    bus.attach(0x60000000, 1 << 20, &adapter);

    Cycles total = 0;
    u32 buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (unsigned i = 0; i < 512; ++i) {
      bus::AhbTransfer t;
      t.addr = 0x60000000 + i * 32;
      t.write = true;
      t.beats = 8;
      t.burst = bus::HBurst::kIncr8;
      t.data = buf;
      total += bus.transfer(bus::Master::kCpuData, t);
      clock += 1000;
    }
    std::printf("%-24s %10llu %14llu %14llu\n",
                rmw ? "read-modify-write (paper)" : "combining (ablated)",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(
                    adapter.stats().write_handshakes),
                static_cast<unsigned long long>(adapter.stats().rmw_reads));
  }
}

void system_level(bench::BenchIo& io) {
  const auto img = sasm::assemble_or_throw(R"(
      .org 0x40000100
  _start:
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]
      set 0x60000000, %o0
      set 32768, %o5
      mov 0, %o1
  loop:
      st %o1, [%o0 + %o1]
      add %o1, 4, %o1
      cmp %o1, %o5
      bl loop
      nop
      st %g0, [%g1]
      ld [%g1 + 4], %o4
      set cycles, %g3
      st %o4, [%g3]
      set 0x00600000, %g4    ! under a write-back cache the results live in
      sta %g4, [%g0] 2       ! the cache: flush so the user path sees them
      jmp 0x40
      nop
      .align 4
  cycles: .skip 4
  )");

  std::printf("\n-- system level: 8192 word stores into SDRAM --\n");
  std::printf("%-14s %-24s %10s %14s\n", "dcache", "adapter", "cycles",
              "handshakes");
  for (const bool write_back : {false, true}) {
    for (const bool rmw : {true, false}) {
      sim::SystemConfig scfg;
      scfg.adapter.rmw_writes = rmw;
      scfg.sdram_size = 1 << 20;
      if (write_back) {
        scfg.pipeline.dcache.write_policy =
            cache::WritePolicy::kWriteBackAllocate;
        scfg.pipeline.dcache.size_bytes = 4096;
      }
      sim::LiquidSystem node(scfg);
      io.attach_perf(node);
      node.run(100);
      ctrl::LiquidClient client(node);
      if (!client.run_program(img)) {
        std::printf("run failed\n");
        return;
      }
      const auto counted = client.read_memory(img.symbol("cycles"), 1);
      std::printf("%-14s %-24s %10u %14llu\n",
                  write_back ? "write-back 4KB" : "write-through",
                  rmw ? "read-modify-write" : "combining",
                  counted ? (*counted)[0] : 0,
                  static_cast<unsigned long long>(
                      node.sdram_controller().stats().total_handshakes()));
      io.add_run(std::string(write_back ? "write-back" : "write-through") +
                     "/" + (rmw ? "rmw" : "combining"),
                 node);
    }
  }
  std::printf(
      "\nNote: with the write-through cache every store is a lone 32-bit\n"
      "write, so combining cannot trigger — the RMW pair is unavoidable,\n"
      "exactly the paper's complaint.  Write-back evictions emit full-line\n"
      "bursts, which a combining adapter turns into read-free writes.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("ablate_rmw", argc, argv);
  if (io.bad_args()) return 2;
  std::printf("Ablation A2: read-modify-write stores vs combining writes\n\n");
  bus_level();
  system_level(io);
  return io.finish() ? 0 : 1;
}
