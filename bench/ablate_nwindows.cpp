// Ablation A7 (extension): the register-window count.
//
// SPARC implementations choose NWINDOWS between 2 and 32; LEON ships with
// 8.  Fewer windows save BlockRAM but make deep call trees spill/fill
// through window traps — a pure liquid-architecture trade.  Workload:
// recursive fib(14) with real stack frames, using the runtime library's
// canonical overflow/underflow handlers (minimum 4 windows).
#include <cstdio>

#include "bench_util.hpp"
#include "ctrl/client.hpp"
#include "liquid/synthesis.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

std::string fib_program(unsigned nwindows) {
  const std::string prog = R"(
      .org 0x40000100
  _start:
      call rt_init
      nop
      set 0x80000500, %g1
      mov 1, %g2
      st %g2, [%g1]          ! start the cycle counter
      mov 14, %o0
      call fib
      nop
      st %g0, [%g1]          ! stop
      ld [%g1 + 4], %o4
      set cycles, %g3
      st %o4, [%g3]
      set result, %g4
      st %o0, [%g4]
      jmp 0x40
      nop

  fib:
      save %sp, -96, %sp
      cmp %i0, 2
      bl fib_base
      nop
      sub %i0, 1, %o0
      call fib
      nop
      mov %o0, %l0
      sub %i0, 2, %o0
      call fib
      nop
      add %l0, %o0, %i0
  fib_base:
      ret
      restore

      .align 4
  cycles: .skip 4
  result: .skip 4
  )";
  sasm::rt::RuntimeOptions opt;
  opt.nwindows = nwindows;
  return prog + sasm::rt::runtime_source(opt);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io("ablate_nwindows", argc, argv);
  if (io.bad_args()) return 2;
  std::printf("Ablation A7: register windows on recursive fib(14)\n\n");
  std::printf("%-10s %12s %10s %10s %10s\n", "nwindows", "cycles",
              "traps", "BRAMs", "fib(14)");

  liquid::SynthesisModel syn;
  for (const unsigned nw : {4u, 6u, 8u, 16u, 32u}) {
    sim::SystemConfig scfg;
    scfg.pipeline.cpu.nwindows = nw;
    sim::LiquidSystem node(scfg);
    io.attach_perf(node);
    node.run(100);
    ctrl::LiquidClient client(node);
    const auto img = sasm::assemble_or_throw(fib_program(nw));
    if (!client.run_program(img, 50'000'000)) {
      std::printf("%-10u FAILED\n", nw);
      continue;
    }
    const auto mem = client.read_memory(img.symbol("cycles"), 2);
    liquid::ArchConfig cfg;
    cfg.nwindows = nw;
    const auto u = syn.estimate(cfg);
    std::printf("%-10u %12u %10llu %10u %10u\n", nw,
                mem ? (*mem)[0] : 0,
                static_cast<unsigned long long>(node.cpu().stats().traps),
                u.brams, mem ? (*mem)[1] : 0);
    io.add_run("nwindows=" + std::to_string(nw), node);
  }
  std::printf(
      "\nfib(14) = 377; its call depth is 13.  16+ windows hold the whole\n"
      "tree in registers (zero traps), LEON's 8 spill moderately, and 4\n"
      "windows spend most of their cycles inside the overflow/underflow\n"
      "handlers — all for a couple of BlockRAMs' difference.\n");
  return io.finish() ? 0 : 1;
}
