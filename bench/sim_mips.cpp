// Host-throughput trajectory bench: how many simulated instructions per
// wall-clock second each execution model sustains, with the host fast
// paths on (default configuration) and off (the per-step baseline).  The
// functional model gets a third row with the basic-block translation
// engine on top of the fast paths (its default configuration).
//
// Emits BENCH_sim.json (override with --out), one row per measurement:
//
//   {"model": "integer_unit", "fast_paths": true, "block_engine": true,
//    "host_mips": 310.7, "cycles_per_sec": 3.9e8,
//    "instructions": 310700000, "secs": 1.0}
//
// `host_mips` is millions of simulated instructions retired per host
// second; `cycles_per_sec` is simulated cycles per host second (the
// number that sizes a wall-clock experiment budget).  The schema is
// documented in docs/PERFORMANCE.md; CI uploads the file as the perf
// trajectory artifact.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bus/ahb.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "ctrl/client.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace {

using namespace la;

using Clock = std::chrono::steady_clock;

bool everything_cacheable(Addr) { return true; }

/// The measured workload: an ALU/branch loop long enough to never finish
/// inside a measurement budget, so every timed step is steady-state user
/// code.  The bare models run it at 0x100; the system copy lives in SDRAM
/// like a real remotely loaded program.
const char* kLoop = R"(
    .org 0x100
_start:
    set 2000000000, %g1
loop:
    subcc %g1, 1, %g1
    xor %g2, %g1, %g2
    add %g3, %g2, %g3
    bne loop
    nop
done: ba done
    nop
)";

const char* kSystemLoop = R"(
    .org 0x40000100
_start:
    set 2000000000, %g1
loop:
    subcc %g1, 1, %g1
    xor %g2, %g1, %g2
    add %g3, %g2, %g3
    bne loop
    nop
done: ba done
    nop
)";

constexpr u64 kChunk = 1 << 16;  // steps per timed slice

struct Row {
  std::string model;
  bool fast_paths = false;
  bool block_engine = false;  // integer_unit only; others have no such tier
  double host_mips = 0;
  double cycles_per_sec = 0;
  u64 instructions = 0;
  double secs = 0;
};

/// Drive `step_chunk` (which advances the model by kChunk steps and
/// returns retired-instruction and cycle deltas as running totals) until
/// `budget_secs` of wall time passed; convert to rates.
template <typename Body>
Row measure(const std::string& model, bool fast, bool block,
            double budget_secs, Body&& body) {
  Row row;
  row.model = model;
  row.fast_paths = fast;
  row.block_engine = block;
  const auto start = Clock::now();
  u64 instructions = 0;
  u64 cycles = 0;
  double elapsed = 0;
  do {
    body(instructions, cycles);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < budget_secs);
  row.instructions = instructions;
  row.secs = elapsed;
  row.host_mips = static_cast<double>(instructions) / elapsed / 1e6;
  row.cycles_per_sec = static_cast<double>(cycles) / elapsed;
  return row;
}

Row measure_integer_unit(bool fast, bool block, double secs) {
  const auto img = sasm::assemble_or_throw(kLoop);
  cpu::CpuConfig cfg;
  cfg.host_decode_cache = fast;
  cfg.host_block_engine = block;
  cpu::FlatMemory mem(1 << 16);
  mem.load(img.base, img.data);
  cpu::IntegerUnit iu(cfg, mem);
  iu.reset(img.entry);
  return measure("integer_unit", fast, block, secs,
                 [&](u64& instr, u64& cyc) {
    instr += iu.run(kChunk);
    cyc = iu.cycle_count();
  });
}

Row measure_leon_pipeline(bool fast, double secs) {
  const auto img = sasm::assemble_or_throw(kLoop);
  cpu::PipelineConfig cfg;
  cfg.host_fast_paths = fast;
  cfg.cpu.host_decode_cache = fast;
  cfg.cpu.host_block_engine = false;  // pipeline datapath; no block tier
  mem::Sram sram(0, 1 << 16);
  sram.backdoor_write(img.base, img.data);
  bus::AhbBus bus;
  bus.attach(0, 1 << 16, &sram);
  Cycles clock = 0;
  cpu::LeonPipeline pipe(cfg, bus, &clock, &everything_cacheable);
  pipe.reset(img.entry);
  return measure("leon_pipeline", fast, false, secs,
                 [&](u64& instr, u64& cyc) {
    pipe.run(kChunk);
    instr = pipe.stats().instructions;
    cyc = pipe.stats().cycles;
  });
}

Row measure_liquid_system(bool fast, double secs,
                          bool flight_recorder = false) {
  sim::SystemConfig cfg;
  cfg.fast_run_loop = fast;
  cfg.pipeline.host_fast_paths = fast;
  cfg.pipeline.cpu.host_decode_cache = fast;
  cfg.pipeline.cpu.host_block_engine = false;  // pipeline datapath
  cfg.flight_recorder = flight_recorder;
  sim::LiquidSystem sys(cfg);
  sys.run(200);  // boot into the ROM polling loop
  ctrl::LiquidClient client(sys);
  const auto img = sasm::assemble_or_throw(kSystemLoop);
  // The recorder-armed variant gets its own model name so the trajectory
  // file keeps one row per (model, fast_paths) pair.
  const std::string model =
      flight_recorder ? "liquid_system_flight" : "liquid_system";
  Row row;
  if (!client.load_program(img) || !client.start(img.entry)) {
    std::fprintf(stderr, "sim_mips: remote program start failed\n");
    row.model = model;
    row.fast_paths = fast;
    return row;
  }
  return measure(model, fast, false, secs, [&](u64& instr, u64& cyc) {
    sys.run(kChunk);
    instr = sys.cpu().stats().instructions;
    cyc = sys.cpu().stats().cycles;
  });
}

int usage() {
  std::fprintf(stderr,
               "usage: sim_mips [--out FILE] [--secs N]\n"
               "  --out FILE   output JSON path (default BENCH_sim.json)\n"
               "  --secs N     wall-clock budget per measurement, seconds\n"
               "               (default 1.0; eight measurements total)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sim.json";
  double secs = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--secs" && i + 1 < argc) {
      secs = std::atof(argv[++i]);
      if (secs <= 0) return usage();
    } else {
      return usage();
    }
  }

  std::vector<Row> rows;
  for (const bool fast : {false, true}) {
    rows.push_back(measure_integer_unit(fast, /*block=*/false, secs));
    rows.push_back(measure_leon_pipeline(fast, secs));
    rows.push_back(measure_liquid_system(fast, secs));
  }
  // The functional model's block translation tier (its default config:
  // fast paths + block engine), paired with the fast_paths-only row above
  // so BENCH_sim.json always records block-on vs block-off.
  rows.push_back(measure_integer_unit(true, /*block=*/true, secs));
  // Observability overhead row: the flight recorder armed (sampled retire
  // ring) on the fast path.  The recorder compiled in but *disabled* is
  // the plain liquid_system row above — its cost is one predictable
  // null-pointer branch per batched step.
  rows.push_back(measure_liquid_system(true, secs, /*flight_recorder=*/true));

  std::printf("%-16s %-6s %-6s %12s %16s\n", "model", "fast", "block",
              "host MIPS", "cycles/sec");
  for (const Row& r : rows) {
    std::printf("%-16s %-6s %-6s %12.2f %16.3e\n", r.model.c_str(),
                r.fast_paths ? "on" : "off", r.block_engine ? "on" : "off",
                r.host_mips, r.cycles_per_sec);
  }

  FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "sim_mips: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "  {\"model\": \"%s\", \"fast_paths\": %s, "
                 "\"block_engine\": %s, "
                 "\"host_mips\": %.3f, \"cycles_per_sec\": %.1f, "
                 "\"instructions\": %llu, \"secs\": %.3f}%s\n",
                 r.model.c_str(), r.fast_paths ? "true" : "false",
                 r.block_engine ? "true" : "false",
                 r.host_mips, r.cycles_per_sec,
                 static_cast<unsigned long long>(r.instructions), r.secs,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
